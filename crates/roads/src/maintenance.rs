//! Live hierarchy maintenance over the discrete-event simulator (§III-A,
//! "Hierarchy Maintenance").
//!
//! "Each parent and its child can exchange periodic heartbeat messages to
//! detect failures. When several heartbeat messages are lost, one can assume
//! the other end has failed. Each node also maintains a root path … When a
//! node leaves the hierarchy, it informs its parent and its children. A
//! child will try to rejoin the hierarchy starting from its grandparent …
//! Eventually it can start from the root again if needed. … The children of
//! the root can elect one of them as the new root, using some simple rules
//! such as the one with the smallest IP address."
//!
//! Every rule above is implemented as a message-driven protocol on
//! [`roads_netsim::Simulator`]; the tests kill servers (including the root)
//! mid-run and assert the tree re-converges to a valid hierarchy.

use crate::tree::{HierarchyTree, ServerId};
use roads_netsim::{Ctx, NodeId, Protocol, SimTime, Simulator, TimerTag, TrafficClass};
use roads_telemetry::EventKind;
use std::collections::BTreeMap;

/// Timer tags.
const TIMER_TICK: TimerTag = 1;

/// Wire size estimates (bytes) for maintenance messages.
const HEARTBEAT_BASE: usize = 24;
const PER_ID: usize = 4;

/// Maintenance protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintConfig {
    /// Heartbeat period (ms of virtual time).
    pub heartbeat_ms: u64,
    /// Missed heartbeats before declaring a peer dead.
    pub loss_threshold: u32,
    /// Maximum children accepted.
    pub max_children: usize,
}

impl Default for MaintConfig {
    fn default() -> Self {
        MaintConfig {
            heartbeat_ms: 1_000,
            loss_threshold: 3,
            max_children: 4,
        }
    }
}

/// Messages of the maintenance protocol.
#[derive(Debug, Clone)]
pub enum MaintMsg {
    /// Parent → child: liveness + piggybacked root path and the root's
    /// children list (for root-failure recovery).
    Heartbeat {
        /// Root path of the sender (root … sender).
        root_path: Vec<NodeId>,
        /// The root's current children (piggybacked down the tree).
        root_children: Vec<NodeId>,
        /// Update-round epoch, incremented by the root once per heartbeat
        /// tick and propagated down the tree. Summaries pushed in round
        /// `e` carry this stamp; the audit plane derives staleness age
        /// from the gap between a replica's stamp and the current epoch.
        epoch: u64,
    },
    /// Child → parent: liveness + branch info used by the join walk.
    HeartbeatReply {
        /// Height of the child's subtree.
        branch_depth: u32,
        /// Descendant count of the child.
        descendants: u32,
    },
    /// Join walk probe: "can you accept me, or where should I go?"
    /// `prober_root` is set when the prober is itself a (self-elected)
    /// root seeking to merge its hierarchy: the receiver accepts only if
    /// its own root has the smaller id (smaller-root tree absorbs).
    JoinProbe {
        /// The prober's root id, when the prober is a root.
        prober_root: Option<NodeId>,
    },
    /// Accept: the sender is now the prober's parent.
    JoinAccept {
        /// Root path of the new parent (root … parent).
        root_path: Vec<NodeId>,
    },
    /// Redirect: try this child instead (the least-depth branch).
    JoinRedirect {
        /// Next server to probe.
        next: NodeId,
    },
    /// Graceful departure notice (to parent and children).
    Leave,
}

fn msg_bytes(m: &MaintMsg) -> usize {
    match m {
        MaintMsg::Heartbeat {
            root_path,
            root_children,
            ..
        } => HEARTBEAT_BASE + 8 + PER_ID * (root_path.len() + root_children.len()),
        MaintMsg::HeartbeatReply { .. } => HEARTBEAT_BASE,
        MaintMsg::JoinProbe { .. } | MaintMsg::Leave => HEARTBEAT_BASE,
        MaintMsg::JoinAccept { root_path } => HEARTBEAT_BASE + PER_ID * root_path.len(),
        MaintMsg::JoinRedirect { .. } => HEARTBEAT_BASE + PER_ID,
    }
}

/// Per-child liveness and branch bookkeeping.
#[derive(Debug, Clone, Copy)]
struct ChildInfo {
    last_heard_ms: u64,
    branch_depth: u32,
    descendants: u32,
}

/// Membership state of one maintenance node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberState {
    /// Attached (or the root).
    Joined,
    /// Walking the join protocol, currently probing the contained server.
    Joining(NodeId),
    /// Crashed (injected by tests); ignores and sends nothing.
    Down,
}

/// One ROADS server running the maintenance protocol.
#[derive(Debug, Clone)]
pub struct MaintNode {
    cfg: MaintConfig,
    state: MemberState,
    parent: Option<NodeId>,
    children: BTreeMap<NodeId, ChildInfo>,
    /// Root path including self (root … self).
    root_path: Vec<NodeId>,
    /// Last time the parent was heard (ms).
    parent_heard_ms: u64,
    /// The root's children, piggybacked on heartbeats.
    root_children: Vec<NodeId>,
    /// Rejoin escalation: how many levels above the grandparent the next
    /// attempt starts.
    rejoin_level: usize,
    started: bool,
    /// While self-elected root: probation deadline (ms) during which we
    /// probe `merge_candidates` to detect a surviving hierarchy.
    probation_until_ms: u64,
    /// Former siblings to probe for hierarchy merging.
    merge_candidates: Vec<NodeId>,
    /// Update-round epoch: the root bumps it once per heartbeat tick and
    /// every descendant adopts the value piggybacked on its parent's
    /// heartbeat.
    epoch: u64,
}

impl MaintNode {
    /// A node that believes it is the root.
    pub fn new_root(cfg: MaintConfig, id: NodeId) -> Self {
        MaintNode {
            cfg,
            state: MemberState::Joined,
            parent: None,
            children: BTreeMap::new(),
            root_path: vec![id],
            parent_heard_ms: 0,
            root_children: Vec::new(),
            rejoin_level: 0,
            started: false,
            probation_until_ms: 0,
            merge_candidates: Vec::new(),
            epoch: 0,
        }
    }

    /// A node that will join through `entry` when started.
    pub fn new_joining(cfg: MaintConfig, entry: NodeId) -> Self {
        MaintNode {
            cfg,
            state: MemberState::Joining(entry),
            parent: None,
            children: BTreeMap::new(),
            root_path: Vec::new(),
            parent_heard_ms: 0,
            root_children: Vec::new(),
            rejoin_level: 0,
            started: false,
            probation_until_ms: 0,
            merge_candidates: Vec::new(),
            epoch: 0,
        }
    }

    /// Current parent.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Milliseconds since the parent was last heard (diagnostics).
    pub fn parent_heard_ms(&self) -> u64 {
        self.parent_heard_ms
    }

    /// Current children.
    pub fn children(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.children.keys().copied().collect();
        v.sort();
        v
    }

    /// Membership state.
    pub fn state(&self) -> &MemberState {
        &self.state
    }

    /// Current update-round epoch as seen by this node (the root's tick
    /// count, propagated down one heartbeat per level).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when this node currently believes it is the root.
    pub fn is_root(&self) -> bool {
        self.state == MemberState::Joined && self.parent.is_none()
    }

    /// Inject a crash: the node goes silent permanently.
    pub fn crash(&mut self) {
        self.state = MemberState::Down;
        self.parent = None;
        self.children.clear();
    }

    fn my_branch_depth(&self) -> u32 {
        self.children
            .values()
            .map(|c| c.branch_depth + 1)
            .max()
            .unwrap_or(0)
    }

    fn my_descendants(&self) -> u32 {
        self.children.values().map(|c| c.descendants + 1).sum()
    }

    /// The join walk's choice among children: least branch depth, then
    /// least descendants.
    fn best_child(&self) -> Option<NodeId> {
        self.children
            .iter()
            .min_by_key(|(id, c)| (c.branch_depth, c.descendants, **id))
            .map(|(id, _)| *id)
    }

    fn send(&self, ctx: &mut Ctx<'_, MaintMsg>, to: NodeId, msg: MaintMsg) {
        let bytes = msg_bytes(&msg);
        ctx.send(to, msg, bytes, TrafficClass::Maintenance);
    }

    fn heartbeat_children(&mut self, ctx: &mut Ctx<'_, MaintMsg>) {
        if self.is_root() {
            // One update round per heartbeat tick: the root owns the clock.
            self.epoch += 1;
        }
        let root_children = if self.is_root() {
            self.children()
        } else {
            self.root_children.clone()
        };
        let mut path = self.root_path.clone();
        if path.is_empty() {
            path = vec![ctx.self_id()];
        }
        for &c in self.children.keys().collect::<Vec<_>>() {
            self.send(
                ctx,
                c,
                MaintMsg::Heartbeat {
                    root_path: path.clone(),
                    root_children: root_children.clone(),
                    epoch: self.epoch,
                },
            );
        }
    }

    fn check_parent(&mut self, ctx: &mut Ctx<'_, MaintMsg>) {
        let Some(parent) = self.parent else { return };
        let now = ctx.now().as_micros() / 1000;
        let deadline = self.cfg.heartbeat_ms * self.cfg.loss_threshold as u64;
        if now.saturating_sub(self.parent_heard_ms) <= deadline {
            return;
        }
        // Parent presumed failed: rejoin starting from the grandparent,
        // escalating one level per retry, eventually the (new) root.
        self.parent = None;
        let me = ctx.self_id();
        // root_path = [root, …, grandparent, parent, me]
        let above_parent: Vec<NodeId> = self
            .root_path
            .iter()
            .copied()
            .filter(|&x| x != me && x != parent)
            .collect();
        let entry = if above_parent.is_empty() {
            // We were a root child: elect among the root's children.
            let mut cands: Vec<NodeId> = self
                .root_children
                .iter()
                .copied()
                .filter(|&c| c != parent)
                .collect();
            cands.sort();
            match cands.first() {
                Some(&new_root) if new_root == me => {
                    // I am the elected root. Enter probation: if the old
                    // root was only slow (false suspicion), probing our
                    // former siblings merges us back into its hierarchy.
                    self.become_root_on_probation(me, now);
                    return;
                }
                Some(&new_root) => new_root,
                None => {
                    // No known siblings: become root ourselves.
                    self.become_root_on_probation(me, now);
                    return;
                }
            }
        } else {
            // Grandparent first, then one level up per escalation.
            let idx = above_parent.len().saturating_sub(1 + self.rejoin_level);
            above_parent[idx]
        };
        self.rejoin_level += 1;
        self.state = MemberState::Joining(entry);
        self.send(ctx, entry, MaintMsg::JoinProbe { prober_root: None });
    }

    /// Become root after (possibly false) parent-failure suspicion:
    /// functional immediately, but on probation — we keep probing former
    /// siblings so a surviving hierarchy absorbs us.
    fn become_root_on_probation(&mut self, me: NodeId, now_ms: u64) {
        self.state = MemberState::Joined;
        self.root_path = vec![me];
        self.rejoin_level = 0;
        self.probation_until_ms =
            now_ms + 5 * self.cfg.heartbeat_ms * self.cfg.loss_threshold as u64;
        self.merge_candidates = self
            .root_children
            .iter()
            .copied()
            .filter(|&c| c != me)
            .collect();
    }

    fn expire_children(&mut self, now_ms: u64) {
        let deadline = self.cfg.heartbeat_ms * self.cfg.loss_threshold as u64;
        self.children
            .retain(|_, info| now_ms.saturating_sub(info.last_heard_ms) <= deadline);
    }
}

impl Protocol for MaintNode {
    type Msg = MaintMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, MaintMsg>, from: NodeId, msg: MaintMsg) {
        if self.state == MemberState::Down {
            return;
        }
        let now_ms = ctx.now().as_micros() / 1000;
        match msg {
            MaintMsg::Heartbeat {
                root_path,
                root_children,
                epoch,
            } => {
                if self.parent == Some(from) {
                    self.parent_heard_ms = now_ms;
                    let mut path = root_path;
                    path.push(ctx.self_id());
                    self.root_path = path;
                    self.root_children = root_children;
                    // Epochs only move forward; a heartbeat overtaken by a
                    // newer one in flight must not rewind the clock.
                    self.epoch = self.epoch.max(epoch);
                    self.send(
                        ctx,
                        from,
                        MaintMsg::HeartbeatReply {
                            branch_depth: self.my_branch_depth(),
                            descendants: self.my_descendants(),
                        },
                    );
                } else if self.is_root() {
                    // Split-brain merge: the sender still lists us as its
                    // child, so a competing hierarchy exists (we declared
                    // ourselves root after falsely suspecting a slow
                    // parent). Deterministic rule: the hierarchy whose root
                    // has the smaller id wins; we re-adopt the sender as
                    // parent, which heals the partition in one heartbeat.
                    let me = ctx.self_id();
                    if root_path.first().is_some_and(|&their_root| their_root < me) {
                        self.parent = Some(from);
                        self.parent_heard_ms = now_ms;
                        let mut path = root_path;
                        path.push(me);
                        self.root_path = path;
                        self.root_children = root_children;
                        self.epoch = self.epoch.max(epoch);
                        self.rejoin_level = 0;
                        self.send(
                            ctx,
                            from,
                            MaintMsg::HeartbeatReply {
                                branch_depth: self.my_branch_depth(),
                                descendants: self.my_descendants(),
                            },
                        );
                    } else {
                        // Our id wins: tell the sender to drop its stale
                        // child entry; its subtree will find us via its own
                        // recovery paths.
                        self.send(ctx, from, MaintMsg::Leave);
                    }
                } else if self.parent.is_some() {
                    // A stale parent still lists us; make it drop the entry
                    // so exactly one parent claims each node.
                    self.send(ctx, from, MaintMsg::Leave);
                }
            }
            MaintMsg::HeartbeatReply {
                branch_depth,
                descendants,
            } => {
                if let Some(info) = self.children.get_mut(&from) {
                    info.last_heard_ms = now_ms;
                    info.branch_depth = branch_depth;
                    info.descendants = descendants;
                }
            }
            MaintMsg::JoinProbe { prober_root } => {
                if self.state != MemberState::Joined {
                    // Not in a position to accept; point at our best child
                    // or just drop (the prober escalates by timeout).
                    return;
                }
                if let Some(their_root) = prober_root {
                    // Hierarchy merge: accept a whole competing tree only
                    // when OUR root has the smaller id (the deterministic
                    // tiebreak that prevents mutual adoption cycles).
                    let my_root = self.root_path.first().copied().unwrap_or(ctx.self_id());
                    if my_root >= their_root {
                        return;
                    }
                }
                // Loop avoidance: never accept someone already on our root
                // path.
                if self.root_path.contains(&from) {
                    if let Some(next) = self.best_child() {
                        self.send(ctx, from, MaintMsg::JoinRedirect { next });
                    }
                    return;
                }
                if self.children.len() < self.cfg.max_children {
                    self.children.insert(
                        from,
                        ChildInfo {
                            last_heard_ms: now_ms,
                            branch_depth: 0,
                            descendants: 0,
                        },
                    );
                    self.send(
                        ctx,
                        from,
                        MaintMsg::JoinAccept {
                            root_path: self.root_path.clone(),
                        },
                    );
                } else if let Some(next) = self.best_child() {
                    // Optimistically assume the prober lands in that
                    // branch, so back-to-back probes between heartbeat
                    // refreshes spread across children instead of funneling
                    // into one. The next real HeartbeatReply corrects it.
                    if let Some(info) = self.children.get_mut(&next) {
                        info.descendants += 1;
                        info.branch_depth = info.branch_depth.max(1);
                    }
                    self.send(ctx, from, MaintMsg::JoinRedirect { next });
                }
            }
            MaintMsg::JoinAccept { root_path } => {
                let on_probation = self.is_root() && now_ms < self.probation_until_ms;
                if matches!(self.state, MemberState::Joining(_)) || on_probation {
                    // A probation merge re-attaches this whole subtree
                    // under the surviving hierarchy.
                    self.children.remove(&from);
                    self.parent = Some(from);
                    self.parent_heard_ms = now_ms;
                    let mut path = root_path;
                    path.push(ctx.self_id());
                    self.root_path = path;
                    self.state = MemberState::Joined;
                    self.rejoin_level = 0;
                    self.probation_until_ms = 0;
                    self.merge_candidates.clear();
                    ctx.record(EventKind::ChurnJoin, from.0 as u64);
                }
            }
            MaintMsg::JoinRedirect { next } => {
                if matches!(self.state, MemberState::Joining(_)) && next != ctx.self_id() {
                    self.state = MemberState::Joining(next);
                    self.send(ctx, next, MaintMsg::JoinProbe { prober_root: None });
                }
            }
            MaintMsg::Leave => {
                ctx.record(EventKind::ChurnLeave, from.0 as u64);
                if self.parent == Some(from) {
                    // Parent left gracefully: rejoin immediately from the
                    // grandparent (last element of the path above parent).
                    self.parent = None;
                    let me = ctx.self_id();
                    let entry = self
                        .root_path
                        .iter()
                        .copied()
                        .rfind(|&x| x != me && x != from);
                    if let Some(e) = entry {
                        self.state = MemberState::Joining(e);
                        self.send(ctx, e, MaintMsg::JoinProbe { prober_root: None });
                    } else if let Some(&new_root) =
                        self.root_children.iter().filter(|&&c| c != from).min()
                    {
                        if new_root == me {
                            let now_ms = ctx.now().as_micros() / 1000;
                            self.become_root_on_probation(me, now_ms);
                        } else {
                            self.state = MemberState::Joining(new_root);
                            self.send(ctx, new_root, MaintMsg::JoinProbe { prober_root: None });
                        }
                    }
                } else {
                    self.children.remove(&from);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, MaintMsg>, tag: TimerTag) {
        if self.state == MemberState::Down {
            return;
        }
        if tag != TIMER_TICK {
            return;
        }
        let now_ms = ctx.now().as_micros() / 1000;
        if !self.started {
            self.started = true;
            self.parent_heard_ms = now_ms;
        }
        match self.state {
            MemberState::Joined => {
                self.heartbeat_children(ctx);
                self.expire_children(now_ms);
                self.check_parent(ctx);
                // Probation probing: a self-elected root looks for a
                // surviving hierarchy among its former siblings.
                if self.is_root() && now_ms < self.probation_until_ms {
                    let me = ctx.self_id();
                    for cand in self.merge_candidates.clone() {
                        if cand != me && !self.children.contains_key(&cand) {
                            self.send(
                                ctx,
                                cand,
                                MaintMsg::JoinProbe {
                                    prober_root: Some(me),
                                },
                            );
                        }
                    }
                }
            }
            MemberState::Joining(entry) => {
                // Re-probe (handles lost/ignored probes and dead entries by
                // escalating toward the root).
                let me = ctx.self_id();
                let fallback = self
                    .root_path
                    .first()
                    .copied()
                    .filter(|&r| r != me && r != entry)
                    .or_else(|| {
                        self.root_children
                            .iter()
                            .copied()
                            .filter(|&c| c != me && c != entry)
                            .min()
                    });
                if let Some(f) = fallback {
                    self.state = MemberState::Joining(f);
                    self.send(ctx, f, MaintMsg::JoinProbe { prober_root: None });
                } else {
                    self.send(ctx, entry, MaintMsg::JoinProbe { prober_root: None });
                }
            }
            MemberState::Down => {}
        }
        ctx.set_timer(SimTime::from_millis(self.cfg.heartbeat_ms), TIMER_TICK);
    }
}

/// Assemble a maintenance simulation: node 0 is the root, nodes 1..n join
/// through it; staggered start timers avoid thundering-herd ties.
pub fn build_simulation(
    n: usize,
    cfg: MaintConfig,
    delays: roads_netsim::DelaySpace,
) -> Simulator<MaintNode> {
    let nodes: Vec<MaintNode> = (0..n)
        .map(|i| {
            if i == 0 {
                MaintNode::new_root(cfg, NodeId(0))
            } else {
                MaintNode::new_joining(cfg, NodeId(0))
            }
        })
        .collect();
    let mut sim = Simulator::new(nodes, delays);
    for i in 0..n {
        // Stagger joins so the walk sees up-to-date branch info.
        sim.schedule_timer(
            SimTime::from_millis(10 * i as u64 + 1),
            NodeId(i as u32),
            TIMER_TICK,
        );
        if i > 0 {
            // Kick the join immediately as well.
            sim.inject(
                SimTime::from_millis(10 * i as u64),
                NodeId(i as u32),
                NodeId(0),
                MaintMsg::JoinProbe { prober_root: None },
                HEARTBEAT_BASE,
                TrafficClass::Maintenance,
            );
        }
    }
    sim
}

/// Extract the converged hierarchy from a maintenance simulation; fails if
/// parent/child views disagree or the structure is invalid.
pub fn extract_tree(sim: &Simulator<MaintNode>) -> Result<HierarchyTree, String> {
    let n = sim.len();
    let mut root = None;
    for (id, node) in sim.nodes() {
        if node.state() == &MemberState::Down {
            continue;
        }
        if node.is_root() {
            if let Some(r) = root {
                return Err(format!("two roots: {r} and {id}"));
            }
            root = Some(id);
        }
    }
    let root = root.ok_or("no root")?;
    let mut tree = HierarchyTree::new(n, ServerId(root.0));
    // Attach in BFS order from the root using the *parents'* child lists,
    // cross-checked against the children's parent pointers.
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(p) = queue.pop_front() {
        for c in sim.node(p).children() {
            let child = sim.node(c);
            if child.state() == &MemberState::Down {
                return Err(format!("{p} lists crashed child {c}"));
            }
            if child.parent() != Some(p) {
                return Err(format!(
                    "{p} lists child {c}, but {c}'s parent is {:?}",
                    child.parent()
                ));
            }
            tree.attach(ServerId(c.0), ServerId(p.0))
                .map_err(|e| e.to_string())?;
            queue.push_back(c);
        }
    }
    tree.validate()?;
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_netsim::DelaySpace;

    fn run_sim(n: usize, until_ms: u64) -> Simulator<MaintNode> {
        let cfg = MaintConfig::default();
        let mut sim = build_simulation(n, cfg, DelaySpace::paper(n, 5));
        sim.run_until(SimTime::from_millis(until_ms));
        sim
    }

    fn joined_count(sim: &Simulator<MaintNode>) -> usize {
        sim.nodes()
            .filter(|(_, n)| n.state() == &MemberState::Joined)
            .count()
    }

    #[test]
    fn all_nodes_join() {
        let sim = run_sim(20, 30_000);
        assert_eq!(joined_count(&sim), 20);
        let tree = extract_tree(&sim).unwrap();
        assert_eq!(tree.len(), 20);
        for s in tree.servers() {
            assert!(tree.children(s).len() <= 4);
        }
    }

    #[test]
    fn tree_reasonably_balanced() {
        let sim = run_sim(40, 60_000);
        let tree = extract_tree(&sim).unwrap();
        assert_eq!(tree.len(), 40);
        // 4-ary tree over 40 nodes: optimal 3 levels (1+4+16+19). The live
        // protocol joins against information that is up to one heartbeat
        // stale (and wide-area delays defer corrections), so allow two
        // extra levels — still far from the degenerate chains a random or
        // greedy-first policy produces (see fig_ablation_join).
        assert!(tree.levels() <= 5, "levels={}", tree.levels());
    }

    #[test]
    fn child_failure_removes_state_and_orphans_rejoin() {
        let mut sim = run_sim(20, 30_000);
        let tree = extract_tree(&sim).unwrap();
        // Kill an internal (non-root) node with children.
        let victim = tree
            .servers()
            .into_iter()
            .find(|&s| s != tree.root() && !tree.children(s).is_empty())
            .expect("an internal node exists");
        let victim_children = tree.children(victim).len();
        assert!(victim_children > 0);
        sim.node_mut(NodeId(victim.0)).crash();
        sim.run_until(SimTime::from_millis(90_000));
        let after = extract_tree(&sim).unwrap();
        assert_eq!(after.len(), 19, "everyone but the victim is joined");
        assert!(!after.contains(victim));
    }

    #[test]
    fn root_failure_triggers_election() {
        let mut sim = run_sim(20, 30_000);
        let before = extract_tree(&sim).unwrap();
        let old_root = before.root();
        sim.node_mut(NodeId(old_root.0)).crash();
        sim.run_until(SimTime::from_millis(120_000));
        let after = extract_tree(&sim).unwrap();
        assert_ne!(after.root(), old_root);
        assert_eq!(after.len(), 19);
        // Election rule: smallest id among the old root's children.
        let expected = before.children(old_root).iter().min().copied().unwrap();
        assert_eq!(after.root(), expected);
    }

    #[test]
    fn graceful_leave_reattaches_children() {
        let mut sim = run_sim(20, 30_000);
        let tree = extract_tree(&sim).unwrap();
        let victim = tree
            .servers()
            .into_iter()
            .find(|&s| s != tree.root() && !tree.children(s).is_empty())
            .expect("an internal node exists");
        // Graceful leave: notify parent and children, then go down.
        let parent = tree.parent(victim).unwrap();
        let children = tree.children(victim).to_vec();
        let now = sim.now();
        sim.inject(
            now,
            NodeId(victim.0),
            NodeId(parent.0),
            MaintMsg::Leave,
            HEARTBEAT_BASE,
            TrafficClass::Maintenance,
        );
        for c in &children {
            sim.inject(
                now,
                NodeId(victim.0),
                NodeId(c.0),
                MaintMsg::Leave,
                HEARTBEAT_BASE,
                TrafficClass::Maintenance,
            );
        }
        sim.node_mut(NodeId(victim.0)).crash();
        sim.run_until(SimTime::from_millis(90_000));
        let after = extract_tree(&sim).unwrap();
        assert_eq!(after.len(), 19);
    }

    #[test]
    fn protocol_survives_moderate_message_loss() {
        // Periodic heartbeats, re-probes and probation merges make the
        // protocol self-healing under loss. With 10% of messages silently
        // dropped, any individual snapshot may catch a node mid-recovery
        // (a parent just expired a child whose replies were lost), so the
        // property to assert is *healing*: after the lossy phase ends, the
        // federation must fully reconverge within a few heartbeats.
        let cfg = MaintConfig::default();
        let mut sim = build_simulation(20, cfg, DelaySpace::paper(20, 5));
        sim.set_message_loss(0.10, 1234);
        sim.run_until(SimTime::from_millis(120_000));
        assert!(sim.messages_dropped() > 0, "loss model must be active");
        // Even during loss the vast majority of the federation is joined.
        assert!(joined_count(&sim) >= 18, "joined: {}", joined_count(&sim));
        // Loss stops (or: no loss event happens to hit the recovering
        // node); convergence must complete.
        sim.set_message_loss(0.0, 0);
        sim.run_until(SimTime::from_millis(140_000));
        assert_eq!(joined_count(&sim), 20);
        let tree = extract_tree(&sim).unwrap();
        assert_eq!(tree.len(), 20);
    }

    #[test]
    fn epoch_propagates_down_the_tree() {
        let sim = run_sim(20, 30_000);
        let tree = extract_tree(&sim).unwrap();
        let root_epoch = sim.node(NodeId(tree.root().0)).epoch();
        // 30s of 1s heartbeats: the root has ticked ~30 rounds.
        assert!(root_epoch >= 20, "root epoch {root_epoch}");
        for (id, node) in sim.nodes() {
            if node.state() != &MemberState::Joined {
                continue;
            }
            let depth = tree.depth(ServerId(id.0)) as u64;
            // Each level adds one heartbeat of propagation lag; allow one
            // extra tick of in-flight slack.
            assert!(
                node.epoch() + depth + 1 >= root_epoch && node.epoch() <= root_epoch,
                "node {id} at depth {depth}: epoch {} vs root {root_epoch}",
                node.epoch()
            );
        }
    }

    #[test]
    fn maintenance_traffic_accounted() {
        let sim = run_sim(10, 20_000);
        assert!(sim.stats().bytes(TrafficClass::Maintenance) > 0);
        assert_eq!(sim.stats().bytes(TrafficClass::Query), 0);
    }
}
