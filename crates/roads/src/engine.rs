//! A converged ROADS network: servers, records, aggregated summaries.
//!
//! [`RoadsNetwork`] materializes the steady state the protocol converges to
//! after joins and aggregation rounds complete: every server holds its local
//! summary, its children's branch summaries, and the replication overlay is
//! fresh. Query execution ([`crate::queryexec`]) and update accounting
//! ([`crate::updates`]) both run against this view; the message-driven
//! version of the same state lives in [`crate::maintenance`].

use crate::config::RoadsConfig;
use crate::overlay::{replication_set, ReplicationSet};
use crate::store::{DeltaOutcome, RecordChange, RecordDelta, ShardedStore};
use crate::tree::{HierarchyTree, ServerId};
use roads_records::{Query, Record, Schema, WireSize};
use roads_summary::Summary;
use roads_telemetry::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Execution options for [`RoadsNetwork`] construction.
///
/// Every build stage — per-server local summaries, bottom-up branch
/// aggregation, replica-set materialization — is embarrassingly parallel
/// within itself: summaries of different servers are independent, servers
/// at the same tree depth aggregate disjoint child sets, and replica sets
/// only read the (immutable) hierarchy. `threads = 1` runs the stages
/// sequentially and is the default; any higher count fans each stage out
/// over a [`std::thread::scope`]. The result is **identical at every
/// thread count**: work is partitioned by server index and merge order
/// within a parent follows [`HierarchyTree::children`] order, independent
/// of the partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Worker threads per build stage (clamped to ≥ 1).
    pub threads: usize,
}

impl BuildOptions {
    /// The sequential build (`threads = 1`).
    pub fn sequential() -> Self {
        BuildOptions { threads: 1 }
    }

    /// One worker per available hardware thread.
    pub fn parallel() -> Self {
        BuildOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// An explicit thread count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        BuildOptions {
            threads: threads.max(1),
        }
    }
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Compute `f(i)` for every `i` in `0..n`, fanned out over `threads`
/// scoped workers, results in index order. `threads <= 1` runs inline.
/// Work is split into contiguous index chunks, so two invocations with
/// different thread counts call `f` on exactly the same inputs.
fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = ci * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|t| t.expect("every chunk fills its slots"))
        .collect()
}

/// Build-stage telemetry: per-stage wall-clock microseconds. Every stage
/// duration also lands in the combined `build.parallel_stage_us` histogram
/// so the flight recorder / registry snapshot can attribute build time
/// without knowing the stage names.
struct StageTimers<'a> {
    reg: &'a Registry,
}

impl StageTimers<'_> {
    fn time<T>(&self, stage: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        let us = t0.elapsed().as_micros() as f64;
        self.reg.histogram("build.parallel_stage_us").record(us);
        self.reg.histogram(stage).record(us);
        out
    }
}

fn maybe_time<T>(timers: &Option<StageTimers<'_>>, stage: &str, f: impl FnOnce() -> T) -> T {
    match timers {
        Some(t) => t.time(stage, f),
        None => f(),
    }
}

/// Result of evaluating a query at one server.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// The server's own attached records may match (search them locally).
    pub local_match: bool,
    /// Children whose branch summaries match (continue down the branch).
    pub child_targets: Vec<ServerId>,
    /// Replicated remote branches that match (overlay shortcuts; populated
    /// only when evaluating at a query's entry server).
    pub replica_targets: Vec<ServerId>,
    /// Ancestors worth probing for *locally attached* matches (populated
    /// only at the entry server). Sibling and ancestor-sibling branches
    /// cover the whole hierarchy except the ancestors' own attached
    /// records; the replicated ancestor summaries let the entry decide
    /// whether those are worth a local-only probe.
    pub ancestor_targets: Vec<ServerId>,
}

impl EvalResult {
    /// All redirect targets, children first (excludes local-only ancestor
    /// probes).
    pub fn all_targets(&self) -> Vec<ServerId> {
        let mut v = self.child_targets.clone();
        v.extend(&self.replica_targets);
        v
    }
}

/// The converged federation: hierarchy + per-server record stores +
/// aggregated summaries + replication overlay.
#[derive(Debug)]
pub struct RoadsNetwork {
    schema: Schema,
    config: RoadsConfig,
    tree: HierarchyTree,
    /// Mutable sharded record store of each server (the server is its
    /// owners' attachment point).
    stores: Vec<ShardedStore>,
    /// Summary of each server's locally attached records.
    local_summary: Vec<Summary>,
    /// Branch summary of each server: local + all descendant branches.
    branch_summary: Vec<Summary>,
    /// Replication set of each server (indices into `branch_summary`).
    replicas: Vec<ReplicationSet>,
    /// Diagnostic: total [`RoadsNetwork::search_local`] invocations. Lets
    /// tests pin "exactly one local search per contacted server" on the
    /// query path.
    search_calls: AtomicU64,
}

impl Clone for RoadsNetwork {
    fn clone(&self) -> Self {
        RoadsNetwork {
            schema: self.schema.clone(),
            config: self.config,
            tree: self.tree.clone(),
            stores: self.stores.clone(),
            local_summary: self.local_summary.clone(),
            branch_summary: self.branch_summary.clone(),
            replicas: self.replicas.clone(),
            search_calls: AtomicU64::new(self.search_calls.load(Ordering::Relaxed)),
        }
    }
}

impl RoadsNetwork {
    /// Build a converged network: form the hierarchy over
    /// `records_per_server.len()` servers (joining in id order), compute
    /// local summaries, aggregate bottom-up, and materialize the overlay.
    pub fn build(
        schema: Schema,
        config: RoadsConfig,
        records_per_server: Vec<Vec<Record>>,
    ) -> Self {
        Self::build_with(schema, config, records_per_server, BuildOptions::default())
    }

    /// [`RoadsNetwork::build`] with explicit [`BuildOptions`] (thread
    /// count). The hierarchy join walk itself is inherently sequential
    /// (each join depends on the balance state the previous one left);
    /// every later stage fans out per `opts`.
    pub fn build_with(
        schema: Schema,
        config: RoadsConfig,
        records_per_server: Vec<Vec<Record>>,
        opts: BuildOptions,
    ) -> Self {
        let n = records_per_server.len();
        assert!(n > 0, "a federation needs at least one server");
        let tree = HierarchyTree::build(n, config.max_children);
        Self::with_tree_opts(schema, config, tree, records_per_server, opts)
    }

    /// [`RoadsNetwork::build_with`] recording per-stage wall-clock
    /// durations into `reg` (`build.parallel_stage_us` plus one
    /// `build.<stage>_us` histogram per stage, and the `build.threads`
    /// gauge).
    pub fn build_instrumented(
        schema: Schema,
        config: RoadsConfig,
        records_per_server: Vec<Vec<Record>>,
        opts: BuildOptions,
        reg: &Registry,
    ) -> Self {
        let n = records_per_server.len();
        assert!(n > 0, "a federation needs at least one server");
        let tree = HierarchyTree::build(n, config.max_children);
        Self::build_inner(schema, config, tree, records_per_server, opts, Some(reg))
    }

    /// Build a federation where resource owners choose *attachment points*
    /// among `n_servers` servers (§III-A, Fig. 1: owner D exports its
    /// summaries to server 2, which is run by a different party B; owners
    /// C and E host their own servers).
    ///
    /// `attachments` maps each owner's record set to the server it exports
    /// to. Servers with no attachments participate purely as aggregation
    /// infrastructure ("server providers").
    pub fn with_attachments(
        schema: Schema,
        config: RoadsConfig,
        n_servers: usize,
        attachments: Vec<(ServerId, Vec<Record>)>,
    ) -> Self {
        let mut records: Vec<Vec<Record>> = vec![Vec::new(); n_servers];
        for (server, recs) in attachments {
            assert!(
                server.index() < n_servers,
                "attachment point {server} out of range"
            );
            records[server.index()].extend(recs);
        }
        RoadsNetwork::build(schema, config, records)
    }

    /// The paper's attachment-point selection: walk the same balance-aware
    /// join rule the servers use, starting from any entry server, and
    /// attach where capacity allows. Owners "follow a similar process as
    /// choosing parent server".
    pub fn choose_attachment(tree: &HierarchyTree, entry: ServerId, max_owners: usize) -> ServerId {
        tree.find_parent(entry, max_owners)
    }

    /// Distinct owners with records attached at `s`.
    pub fn owners_at(&self, s: ServerId) -> Vec<roads_records::OwnerId> {
        let mut owners: Vec<roads_records::OwnerId> = self.stores[s.index()]
            .snapshot()
            .iter()
            .map(|r| r.owner)
            .collect();
        owners.sort();
        owners.dedup();
        owners
    }

    /// Build over an existing hierarchy (e.g. one produced by the live
    /// maintenance protocol, or a custom topology).
    pub fn with_tree(
        schema: Schema,
        config: RoadsConfig,
        tree: HierarchyTree,
        records_per_server: Vec<Vec<Record>>,
    ) -> Self {
        Self::with_tree_opts(
            schema,
            config,
            tree,
            records_per_server,
            BuildOptions::default(),
        )
    }

    /// [`RoadsNetwork::with_tree`] with explicit [`BuildOptions`].
    pub fn with_tree_opts(
        schema: Schema,
        config: RoadsConfig,
        tree: HierarchyTree,
        records_per_server: Vec<Vec<Record>>,
        opts: BuildOptions,
    ) -> Self {
        Self::build_inner(schema, config, tree, records_per_server, opts, None)
    }

    fn build_inner(
        schema: Schema,
        config: RoadsConfig,
        tree: HierarchyTree,
        records_per_server: Vec<Vec<Record>>,
        opts: BuildOptions,
        reg: Option<&Registry>,
    ) -> Self {
        let n = records_per_server.len();
        assert_eq!(tree.capacity(), n, "one record set per server");
        let threads = opts.threads.max(1);
        let timers = reg.map(|reg| {
            reg.gauge("build.threads").set(threads as i64);
            StageTimers { reg }
        });

        // Stage 1: every server's store (sharded, with exact per-shard
        // summaries) and local summary are independent of the others'.
        // Record sets are moved into the workers through per-server
        // mutexes — each is taken exactly once, so there is no contention.
        let (stores, local_summary): (Vec<ShardedStore>, Vec<Summary>) =
            maybe_time(&timers, "build.local_summary_us", || {
                let sets: Vec<std::sync::Mutex<Vec<Record>>> = records_per_server
                    .into_iter()
                    .map(std::sync::Mutex::new)
                    .collect();
                let stores: Vec<ShardedStore> = par_map(n, threads, |i| {
                    let records = std::mem::take(&mut *sets[i].lock().expect("record handoff"));
                    ShardedStore::new(&schema, &config.summary, records)
                });
                let local = par_map(n, threads, |i| stores[i].local_summary());
                (stores, local)
            });

        // Stage 2: bottom-up aggregation, synchronized level by level.
        // Children of a depth-d server all sit at depth d+1, so once a
        // level is final every parent one level up aggregates a disjoint,
        // fully-computed child set — parents within a level are
        // independent. Merge order within a parent is its `children()`
        // order, so the result is identical at any thread count.
        let branch_summary = maybe_time(&timers, "build.aggregate_us", || {
            let mut by_depth: Vec<Vec<ServerId>> = Vec::new();
            for s in tree.servers() {
                let d = tree.depth(s);
                if by_depth.len() <= d {
                    by_depth.resize(d + 1, Vec::new());
                }
                by_depth[d].push(s);
            }
            let mut branch_summary = local_summary.clone();
            for level in by_depth.iter().rev() {
                let parents: Vec<ServerId> = level
                    .iter()
                    .copied()
                    .filter(|&s| !tree.children(s).is_empty())
                    .collect();
                if parents.is_empty() {
                    continue;
                }
                let merged: Vec<Summary> = par_map(parents.len(), threads, |i| {
                    let p = parents[i];
                    let mut acc = branch_summary[p.index()].clone();
                    for &c in tree.children(p) {
                        acc.merge(&branch_summary[c.index()])
                            .expect("uniform schema/config across the federation");
                    }
                    acc
                });
                for (&p, s) in parents.iter().zip(merged) {
                    branch_summary[p.index()] = s;
                }
            }
            branch_summary
        });

        // Stage 3: replica sets only read the immutable hierarchy.
        let replicas = maybe_time(&timers, "build.replica_us", || {
            par_map(n, threads, |i| replication_set(&tree, ServerId(i as u32)))
        });

        RoadsNetwork {
            schema,
            config,
            tree,
            stores,
            local_summary,
            branch_summary,
            replicas,
            search_calls: AtomicU64::new(0),
        }
    }

    /// The federation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared configuration.
    pub fn config(&self) -> &RoadsConfig {
        &self.config
    }

    /// The hierarchy.
    pub fn tree(&self) -> &HierarchyTree {
        &self.tree
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True when the federation has no servers.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Snapshot of the records attached at `s` (cloned out of the sharded
    /// store under per-shard read locks).
    pub fn records(&self, s: ServerId) -> Vec<Record> {
        self.stores[s.index()].snapshot()
    }

    /// The sharded record store of `s`.
    pub fn store(&self, s: ServerId) -> &ShardedStore {
        &self.stores[s.index()]
    }

    /// Summary of the records attached at `s`.
    pub fn local_summary(&self, s: ServerId) -> &Summary {
        &self.local_summary[s.index()]
    }

    /// Branch summary of `s` (local + descendants).
    pub fn branch_summary(&self, s: ServerId) -> &Summary {
        &self.branch_summary[s.index()]
    }

    /// Replication set of `s`.
    pub fn replica_set(&self, s: ServerId) -> &ReplicationSet {
        &self.replicas[s.index()]
    }

    /// Evaluate `query` at server `s`.
    ///
    /// `entry` selects whether replicated summaries participate: at the
    /// query's entry server the overlay provides shortcuts to remote
    /// branches; at servers reached by redirection only the local data and
    /// children are searched (their branch is their responsibility).
    pub fn evaluate(&self, s: ServerId, query: &Query, entry: bool) -> EvalResult {
        let local_match = self.local_summary[s.index()].may_match(query);
        let child_targets = self
            .tree
            .children(s)
            .iter()
            .copied()
            .filter(|c| self.branch_summary[c.index()].may_match(query))
            .collect();
        let (replica_targets, ancestor_targets) = if entry {
            let replicas = self.replicas[s.index()]
                .redirect_targets()
                .into_iter()
                .filter(|t| self.branch_summary[t.index()].may_match(query))
                .collect();
            // Ancestor *branch* summaries include this server's own branch,
            // so they over-approximate; the probe itself is a cheap
            // local-only lookup, and the filter still prunes ancestors
            // whose whole branch provably has no match.
            let ancestors = self.replicas[s.index()]
                .ancestors
                .iter()
                .copied()
                .filter(|a| self.branch_summary[a.index()].may_match(query))
                .collect();
            (replicas, ancestors)
        } else {
            (Vec::new(), Vec::new())
        };
        EvalResult {
            local_match,
            child_targets,
            replica_targets,
            ancestor_targets,
        }
    }

    /// Search `s`'s locally attached records exactly. Matches are cloned
    /// out under per-shard read locks, so searches run concurrently with
    /// delta application on other shards.
    pub fn search_local(&self, s: ServerId, query: &Query) -> Vec<Record> {
        self.search_calls.fetch_add(1, Ordering::Relaxed);
        self.stores[s.index()].search(query)
    }

    /// Total [`RoadsNetwork::search_local`] invocations so far (diagnostic;
    /// see the `search_calls` field).
    pub fn local_search_calls(&self) -> u64 {
        self.search_calls.load(Ordering::Relaxed)
    }

    /// Ground truth: every server whose local records contain a match.
    pub fn matching_servers(&self, query: &Query) -> Vec<ServerId> {
        (0..self.len() as u32)
            .map(ServerId)
            .filter(|&s| self.stores[s.index()].any_match(query))
            .collect()
    }

    /// Per-server storage in bytes: children's branch summaries + local
    /// summary + replicated summaries (Table I accounting).
    pub fn storage_bytes(&self, s: ServerId) -> usize {
        let children: usize = self
            .tree
            .children(s)
            .iter()
            .map(|c| self.branch_summary[c.index()].wire_size())
            .sum();
        let replicated: usize = self.replicas[s.index()]
            .all()
            .iter()
            .map(|t| self.branch_summary[t.index()].wire_size())
            .sum();
        children + replicated + self.local_summary[s.index()].wire_size()
    }

    /// Worst per-server storage across the federation.
    pub fn max_storage_bytes(&self) -> usize {
        (0..self.len() as u32)
            .map(|s| self.storage_bytes(ServerId(s)))
            .max()
            .unwrap_or(0)
    }

    /// Apply a [`RecordDelta`] and propagate it incrementally: mutate the
    /// touched stores, refresh the *dirty* servers' local summaries from
    /// their exact shard summaries, and recompute branch summaries only
    /// along the dirty ancestor closure — O(changed subtrees · depth)
    /// summary merges instead of the O(n) full re-aggregation a rebuild
    /// performs. The resulting summaries are identical to a from-scratch
    /// build over the post-delta record sets (shard summaries are exact
    /// under mutation, and counter merges commute).
    pub fn apply(&mut self, delta: &RecordDelta) -> DeltaOutcome {
        let n = self.len();
        // Route changes to their target stores, preserving arrival order.
        // Changes to one id always target one server (and one shard within
        // it), so per-server order is the only order that is observable.
        let mut per_server: Vec<Vec<&RecordChange>> = vec![Vec::new(); n];
        for (server, change) in delta.changes() {
            assert!(
                server.index() < n,
                "delta routed to unknown server {server}"
            );
            // Touch the payload while routing: payloads were allocated in
            // delta order, so this pass streams them into cache and the
            // scattered per-store batches below read warm lines.
            if let Some(r) = change.record() {
                std::hint::black_box(r.values().first().map(std::mem::discriminant));
            }
            per_server[server.index()].push(change);
        }

        let mut dirty_flags = vec![false; n];
        let mut applied = 0u64;
        let mut rejected = 0u64;
        let mut shard_rebuilds = 0u64;
        // Both sides of the churn feed the invalidation summary: the
        // payloads that entered the stores and the records the batches
        // displaced. `apply_batch` learns them into this summary in place
        // (summary learning commutes, so accumulation order is free).
        let mut delta_summary = Summary::empty(&self.schema, &self.config.summary);
        for (i, changes) in per_server.iter().enumerate() {
            if changes.is_empty() {
                continue;
            }
            let effect = self.stores[i].apply_batch(changes, &mut delta_summary);
            if effect.applied > 0 {
                dirty_flags[i] = true;
            }
            applied += effect.applied;
            rejected += effect.rejected;
            shard_rebuilds += effect.shard_rebuilds;
        }

        let dirty: Vec<ServerId> = dirty_flags
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| ServerId(i as u32))
            .collect();
        for &s in &dirty {
            self.local_summary[s.index()] = self.stores[s.index()].local_summary();
        }

        // Dirty ancestor closure: walking up stops at the first already-
        // marked ancestor, so the whole closure costs O(dirty · depth)
        // amortized even when dirty subtrees share ancestors.
        let mut branch_flags = vec![false; n];
        for &s in &dirty {
            let mut cur = s;
            while !branch_flags[cur.index()] {
                branch_flags[cur.index()] = true;
                match self.tree.parent(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        let mut dirty_branches: Vec<ServerId> = branch_flags
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| ServerId(i as u32))
            .collect();

        // Recompute deepest-first so every parent merges already-refreshed
        // children; merge order follows `children()` order, matching the
        // full build byte for byte.
        let mut by_depth = dirty_branches.clone();
        by_depth.sort_by_key(|&s| std::cmp::Reverse(self.tree.depth(s)));
        for &s in &by_depth {
            let mut acc = self.local_summary[s.index()].clone();
            for &c in self.tree.children(s) {
                acc.merge(&self.branch_summary[c.index()])
                    .expect("uniform schema/config across the federation");
            }
            self.branch_summary[s.index()] = acc;
        }
        dirty_branches.sort_unstable();

        DeltaOutcome {
            dirty,
            dirty_branches,
            applied,
            rejected,
            shard_rebuilds,
            delta_summary,
        }
    }

    /// Re-derive every summary from raw records: rebuild all shard
    /// summaries, refresh all local summaries, and re-aggregate every
    /// branch bottom-up. This is the non-incremental baseline
    /// ([`crate::updates::update_round_full`]) and also clears histogram
    /// saturation accumulated by heavy churn.
    pub fn refresh_all_summaries(&mut self) {
        for (i, store) in self.stores.iter().enumerate() {
            store.rebuild_summaries();
            self.local_summary[i] = store.local_summary();
        }
        let mut order = self.tree.servers();
        order.sort_by_key(|&s| std::cmp::Reverse(self.tree.depth(s)));
        for s in order {
            let mut acc = self.local_summary[s.index()].clone();
            for &c in self.tree.children(s) {
                acc.merge(&self.branch_summary[c.index()])
                    .expect("uniform schema/config across the federation");
            }
            self.branch_summary[s.index()] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{OwnerId, QueryBuilder, QueryId, RecordId, Value};
    use roads_summary::SummaryConfig;

    fn unit_record(schema: &Schema, id: u64, owner: u32, vals: &[f64]) -> Record {
        let _ = schema;
        Record::new_unchecked(
            RecordId(id),
            OwnerId(owner),
            vals.iter().map(|&v| Value::Float(v)).collect(),
        )
    }

    /// 7 servers, 2 attrs; server s holds one record at (s/10, 1 - s/10).
    fn small_network() -> RoadsNetwork {
        let schema = Schema::unit_numeric(2);
        let cfg = RoadsConfig {
            max_children: 2,
            summary: SummaryConfig::with_buckets(100),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..7)
            .map(|s| {
                vec![unit_record(
                    &schema,
                    s as u64,
                    s as u32,
                    &[s as f64 / 10.0, 1.0 - s as f64 / 10.0],
                )]
            })
            .collect();
        RoadsNetwork::build(schema, cfg, records)
    }

    #[test]
    fn branch_summaries_aggregate_counts() {
        let n = small_network();
        let root = n.tree().root();
        assert_eq!(n.branch_summary(root).record_count(), 7);
        for s in n.tree().servers() {
            let expected = 1 + n.tree().subtree(s).iter().filter(|&&c| c != s).count() as u64;
            assert_eq!(n.branch_summary(s).record_count(), expected);
        }
    }

    #[test]
    fn root_summary_matches_everything_any_leaf_holds() {
        let n = small_network();
        let schema = n.schema().clone();
        for s in 0..7u32 {
            let v = s as f64 / 10.0;
            let q = QueryBuilder::new(&schema, QueryId(s as u64))
                .range("x0", v - 0.01, v + 0.01)
                .build();
            assert!(
                n.branch_summary(n.tree().root()).may_match(&q),
                "root misses record of server {s}"
            );
        }
    }

    #[test]
    fn evaluation_prunes_non_matching_branches() {
        let n = small_network();
        let schema = n.schema().clone();
        // Only server 6 holds x0 = 0.6.
        let q = QueryBuilder::new(&schema, QueryId(9))
            .range("x0", 0.595, 0.605)
            .build();
        let ground_truth = n.matching_servers(&q);
        assert_eq!(ground_truth, vec![ServerId(6)]);

        // Walking the redirect structure from the root must reach server 6
        // and nothing outside summary-matching branches.
        let mut frontier = vec![n.tree().root()];
        let mut reached_matching = false;
        while let Some(s) = frontier.pop() {
            let ev = n.evaluate(s, &q, false);
            if ev.local_match && n.search_local(s, &q).len() == 1 {
                reached_matching = true;
            }
            frontier.extend(ev.child_targets);
        }
        assert!(reached_matching);
    }

    #[test]
    fn entry_evaluation_uses_overlay() {
        let n = small_network();
        let schema = n.schema().clone();
        // Start at a leaf; the match lives in a different branch.
        let leaf = *n.tree().leaves().iter().max().unwrap();
        let q = QueryBuilder::new(&schema, QueryId(1))
            .range("x0", 0.0, 0.01) // only server 0 (the root) holds 0.0
            .build();
        let ev = n.evaluate(leaf, &q, true);
        let gt = n.matching_servers(&q);
        assert_eq!(gt, vec![ServerId(0)]);
        // The match lives in the root's *local* records; from a leaf the
        // sibling/ancestor-sibling branches cannot reach it, so the entry
        // evaluation must nominate the root as a local-only ancestor probe.
        assert!(
            ev.ancestor_targets.contains(&ServerId(0)),
            "ancestor probe must cover matches attached at ancestors"
        );
    }

    #[test]
    fn without_entry_no_replica_targets() {
        let n = small_network();
        let schema = n.schema().clone();
        let q = QueryBuilder::new(&schema, QueryId(2))
            .range("x0", 0.0, 1.0)
            .build();
        let leaf = *n.tree().leaves().first().unwrap();
        let ev = n.evaluate(leaf, &q, false);
        assert!(ev.replica_targets.is_empty());
    }

    #[test]
    fn storage_counts_children_replicas_local() {
        let n = small_network();
        for s in n.tree().servers() {
            let bytes = n.storage_bytes(s);
            assert!(bytes > 0);
        }
        assert!(n.max_storage_bytes() > 0);
    }

    #[test]
    fn attachments_fig1_semantics() {
        // Fig. 1: owners C, E host their own servers; owner D attaches to
        // a server provided by another party; servers 1 and 2 are pure
        // "server providers" with no records of their own.
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 2,
            summary: SummaryConfig::with_buckets(50),
            ..RoadsConfig::paper_default()
        };
        let rec = |id: u64, owner: u32, v: f64| {
            Record::new_unchecked(RecordId(id), OwnerId(owner), vec![Value::Float(v)])
        };
        let net = RoadsNetwork::with_attachments(
            schema.clone(),
            cfg,
            5,
            vec![
                (ServerId(3), vec![rec(1, 100, 0.1)]), // owner C at its own server
                (ServerId(2), vec![rec(2, 101, 0.5)]), // owner D at B's server
                (ServerId(2), vec![rec(3, 102, 0.6)]), // owner E shares server 2
                (ServerId(4), vec![rec(4, 103, 0.9)]),
            ],
        );
        assert!(net.records(ServerId(0)).is_empty(), "pure server provider");
        assert!(net.records(ServerId(1)).is_empty());
        assert_eq!(net.owners_at(ServerId(2)), vec![OwnerId(101), OwnerId(102)]);
        assert_eq!(net.owners_at(ServerId(3)), vec![OwnerId(100)]);

        // Discovery still reaches every owner's records from any entry.
        let delays = roads_netsim::DelaySpace::paper(5, 4);
        let q = roads_records::QueryBuilder::new(&schema, roads_records::QueryId(1))
            .range("x0", 0.45, 0.65)
            .build();
        let out = crate::queryexec::execute_query(
            &net,
            &delays,
            &q,
            ServerId(0),
            crate::queryexec::SearchScope::full(),
        );
        assert_eq!(out.matching_records, 2, "owners D and E both found");
        assert_eq!(out.matching_servers, vec![ServerId(2)]);
    }

    #[test]
    fn choose_attachment_respects_capacity_walk() {
        let tree = crate::tree::HierarchyTree::build(10, 3);
        let a = RoadsNetwork::choose_attachment(&tree, tree.root(), 3);
        // Root is full (3 children): the walk descends.
        assert_ne!(a, tree.root());
        // An under-capacity entry accepts directly.
        let leaf = *tree.leaves().first().unwrap();
        assert_eq!(RoadsNetwork::choose_attachment(&tree, leaf, 3), leaf);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn attachment_out_of_range_panics() {
        let schema = Schema::unit_numeric(1);
        let _ = RoadsNetwork::with_attachments(
            schema,
            RoadsConfig::paper_default(),
            2,
            vec![(ServerId(5), Vec::new())],
        );
    }

    /// Everything a build computes, comparable across thread counts.
    fn fingerprint(n: &RoadsNetwork) -> Vec<(Summary, Summary, ReplicationSet, usize)> {
        n.tree()
            .servers()
            .iter()
            .map(|&s| {
                (
                    n.local_summary(s).clone(),
                    n.branch_summary(s).clone(),
                    n.replica_set(s).clone(),
                    n.storage_bytes(s),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        let schema = Schema::unit_numeric(3);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..23)
            .map(|s| {
                (0..4)
                    .map(|i| {
                        unit_record(
                            &schema,
                            (s * 4 + i) as u64,
                            s as u32,
                            &[
                                (s as f64) / 23.0,
                                (i as f64) / 4.0,
                                ((s + i) % 7) as f64 / 7.0,
                            ],
                        )
                    })
                    .collect()
            })
            .collect();
        let seq = RoadsNetwork::build_with(
            schema.clone(),
            cfg,
            records.clone(),
            BuildOptions::sequential(),
        );
        for threads in [2, 4, 64] {
            let par = RoadsNetwork::build_with(
                schema.clone(),
                cfg,
                records.clone(),
                BuildOptions::with_threads(threads),
            );
            assert_eq!(
                fingerprint(&seq),
                fingerprint(&par),
                "threads={threads} diverged from sequential build"
            );
        }
    }

    #[test]
    fn build_options_clamp_and_default() {
        assert_eq!(BuildOptions::default(), BuildOptions::sequential());
        assert_eq!(BuildOptions::with_threads(0).threads, 1);
        assert!(BuildOptions::parallel().threads >= 1);
    }

    #[test]
    fn instrumented_build_records_stage_histograms() {
        use roads_telemetry::Registry;
        let schema = Schema::unit_numeric(2);
        let cfg = RoadsConfig {
            max_children: 2,
            summary: SummaryConfig::with_buckets(50),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..9)
            .map(|s| vec![unit_record(&schema, s as u64, s as u32, &[0.1, 0.2])])
            .collect();
        let reg = Registry::new();
        let net = RoadsNetwork::build_instrumented(
            schema,
            cfg,
            records,
            BuildOptions::with_threads(3),
            &reg,
        );
        assert_eq!(net.len(), 9);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["build.threads"], 3);
        // Three stages, each also recorded in the combined histogram.
        assert_eq!(snap.histograms["build.parallel_stage_us"].count, 3);
        for stage in [
            "build.local_summary_us",
            "build.aggregate_us",
            "build.replica_us",
        ] {
            assert_eq!(snap.histograms[stage].count, 1, "{stage}");
        }
    }

    #[test]
    fn apply_delta_matches_rebuild_and_touches_only_dirty_closure() {
        let mut net = small_network();
        let schema = net.schema().clone();
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let mut delta = crate::store::RecordDelta::new();
        delta
            .insert(leaf, unit_record(&schema, 100, 50, &[0.42, 0.42]))
            .remove(ServerId(1), RecordId(1))
            .remove(ServerId(2), RecordId(999)); // absent → rejected
        let out = net.apply(&delta);
        assert_eq!(out.applied, 2);
        assert_eq!(out.rejected, 1);
        let mut expected_dirty = vec![ServerId(1), leaf];
        expected_dirty.sort();
        assert_eq!(out.dirty, expected_dirty);

        // The dirty branch closure is exactly the union of the dirty
        // servers' root paths.
        let mut closure: Vec<ServerId> = Vec::new();
        for &d in &out.dirty {
            let mut cur = d;
            loop {
                closure.push(cur);
                match net.tree().parent(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        closure.sort_unstable();
        closure.dedup();
        assert_eq!(out.dirty_branches, closure);

        // Every summary equals a from-scratch build over the final records.
        let records: Vec<Vec<Record>> = (0..net.len() as u32)
            .map(|s| net.records(ServerId(s)))
            .collect();
        let rebuilt = RoadsNetwork::build(schema.clone(), *net.config(), records);
        for s in net.tree().servers() {
            assert_eq!(net.local_summary(s), rebuilt.local_summary(s), "{s}");
            assert_eq!(net.branch_summary(s), rebuilt.branch_summary(s), "{s}");
        }

        // The delta summary covers the inserted *and* the removed values.
        let inserted = QueryBuilder::new(&schema, QueryId(70))
            .range("x0", 0.41, 0.43)
            .build();
        let removed = QueryBuilder::new(&schema, QueryId(71))
            .range("x0", 0.09, 0.11)
            .build();
        assert!(out.delta_summary.may_match(&inserted));
        assert!(out.delta_summary.may_match(&removed));
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let mut net = small_network();
        let before = net.branch_summary(net.tree().root()).clone();
        let out = net.apply(&crate::store::RecordDelta::new());
        assert!(out.dirty.is_empty());
        assert!(out.dirty_branches.is_empty());
        assert_eq!(out.applied, 0);
        assert_eq!(net.branch_summary(net.tree().root()), &before);
    }

    #[test]
    fn refresh_all_summaries_is_idempotent_on_converged_state() {
        let mut net = small_network();
        let before: Vec<Summary> = net
            .tree()
            .servers()
            .iter()
            .map(|&s| net.branch_summary(s).clone())
            .collect();
        net.refresh_all_summaries();
        for (s, b) in net.tree().servers().into_iter().zip(before) {
            assert_eq!(net.branch_summary(s), &b);
        }
    }

    #[test]
    fn search_local_exact() {
        let n = small_network();
        let schema = n.schema().clone();
        let q = QueryBuilder::new(&schema, QueryId(3))
            .range("x0", 0.28, 0.32)
            .build();
        assert_eq!(n.search_local(ServerId(3), &q).len(), 1);
        assert_eq!(n.search_local(ServerId(4), &q).len(), 0);
    }
}
