//! A converged ROADS network: servers, records, aggregated summaries.
//!
//! [`RoadsNetwork`] materializes the steady state the protocol converges to
//! after joins and aggregation rounds complete: every server holds its local
//! summary, its children's branch summaries, and the replication overlay is
//! fresh. Query execution ([`crate::queryexec`]) and update accounting
//! ([`crate::updates`]) both run against this view; the message-driven
//! version of the same state lives in [`crate::maintenance`].

use crate::config::RoadsConfig;
use crate::overlay::{replication_set, ReplicationSet};
use crate::tree::{HierarchyTree, ServerId};
use roads_records::{Query, Record, Schema, WireSize};
use roads_summary::Summary;

/// Result of evaluating a query at one server.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// The server's own attached records may match (search them locally).
    pub local_match: bool,
    /// Children whose branch summaries match (continue down the branch).
    pub child_targets: Vec<ServerId>,
    /// Replicated remote branches that match (overlay shortcuts; populated
    /// only when evaluating at a query's entry server).
    pub replica_targets: Vec<ServerId>,
    /// Ancestors worth probing for *locally attached* matches (populated
    /// only at the entry server). Sibling and ancestor-sibling branches
    /// cover the whole hierarchy except the ancestors' own attached
    /// records; the replicated ancestor summaries let the entry decide
    /// whether those are worth a local-only probe.
    pub ancestor_targets: Vec<ServerId>,
}

impl EvalResult {
    /// All redirect targets, children first (excludes local-only ancestor
    /// probes).
    pub fn all_targets(&self) -> Vec<ServerId> {
        let mut v = self.child_targets.clone();
        v.extend(&self.replica_targets);
        v
    }
}

/// The converged federation: hierarchy + per-server record stores +
/// aggregated summaries + replication overlay.
#[derive(Debug, Clone)]
pub struct RoadsNetwork {
    schema: Schema,
    config: RoadsConfig,
    tree: HierarchyTree,
    /// Records attached at each server (the server is its owners'
    /// attachment point).
    records: Vec<Vec<Record>>,
    /// Summary of each server's locally attached records.
    local_summary: Vec<Summary>,
    /// Branch summary of each server: local + all descendant branches.
    branch_summary: Vec<Summary>,
    /// Replication set of each server (indices into `branch_summary`).
    replicas: Vec<ReplicationSet>,
}

impl RoadsNetwork {
    /// Build a converged network: form the hierarchy over
    /// `records_per_server.len()` servers (joining in id order), compute
    /// local summaries, aggregate bottom-up, and materialize the overlay.
    pub fn build(
        schema: Schema,
        config: RoadsConfig,
        records_per_server: Vec<Vec<Record>>,
    ) -> Self {
        let n = records_per_server.len();
        assert!(n > 0, "a federation needs at least one server");
        let tree = HierarchyTree::build(n, config.max_children);
        Self::with_tree(schema, config, tree, records_per_server)
    }

    /// Build a federation where resource owners choose *attachment points*
    /// among `n_servers` servers (§III-A, Fig. 1: owner D exports its
    /// summaries to server 2, which is run by a different party B; owners
    /// C and E host their own servers).
    ///
    /// `attachments` maps each owner's record set to the server it exports
    /// to. Servers with no attachments participate purely as aggregation
    /// infrastructure ("server providers").
    pub fn with_attachments(
        schema: Schema,
        config: RoadsConfig,
        n_servers: usize,
        attachments: Vec<(ServerId, Vec<Record>)>,
    ) -> Self {
        let mut records: Vec<Vec<Record>> = vec![Vec::new(); n_servers];
        for (server, recs) in attachments {
            assert!(
                server.index() < n_servers,
                "attachment point {server} out of range"
            );
            records[server.index()].extend(recs);
        }
        RoadsNetwork::build(schema, config, records)
    }

    /// The paper's attachment-point selection: walk the same balance-aware
    /// join rule the servers use, starting from any entry server, and
    /// attach where capacity allows. Owners "follow a similar process as
    /// choosing parent server".
    pub fn choose_attachment(tree: &HierarchyTree, entry: ServerId, max_owners: usize) -> ServerId {
        tree.find_parent(entry, max_owners)
    }

    /// Distinct owners with records attached at `s`.
    pub fn owners_at(&self, s: ServerId) -> Vec<roads_records::OwnerId> {
        let mut owners: Vec<roads_records::OwnerId> =
            self.records[s.index()].iter().map(|r| r.owner).collect();
        owners.sort();
        owners.dedup();
        owners
    }

    /// Build over an existing hierarchy (e.g. one produced by the live
    /// maintenance protocol, or a custom topology).
    pub fn with_tree(
        schema: Schema,
        config: RoadsConfig,
        tree: HierarchyTree,
        records_per_server: Vec<Vec<Record>>,
    ) -> Self {
        let n = records_per_server.len();
        assert_eq!(tree.capacity(), n, "one record set per server");
        let local_summary: Vec<Summary> = records_per_server
            .iter()
            .map(|rs| Summary::from_records(&schema, &config.summary, rs))
            .collect();

        // Bottom-up aggregation: process servers deepest-first so children
        // are final before their parents aggregate them.
        let mut order: Vec<ServerId> = tree.servers();
        order.sort_by_key(|&s| std::cmp::Reverse(tree.depth(s)));
        let mut branch_summary = local_summary.clone();
        for &s in &order {
            if let Some(p) = tree.parent(s) {
                let child = branch_summary[s.index()].clone();
                branch_summary[p.index()]
                    .merge(&child)
                    .expect("uniform schema/config across the federation");
            }
        }

        let replicas = (0..n as u32)
            .map(|s| replication_set(&tree, ServerId(s)))
            .collect();

        RoadsNetwork {
            schema,
            config,
            tree,
            records: records_per_server,
            local_summary,
            branch_summary,
            replicas,
        }
    }

    /// The federation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared configuration.
    pub fn config(&self) -> &RoadsConfig {
        &self.config
    }

    /// The hierarchy.
    pub fn tree(&self) -> &HierarchyTree {
        &self.tree
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the federation has no servers.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records attached at `s`.
    pub fn records(&self, s: ServerId) -> &[Record] {
        &self.records[s.index()]
    }

    /// Summary of the records attached at `s`.
    pub fn local_summary(&self, s: ServerId) -> &Summary {
        &self.local_summary[s.index()]
    }

    /// Branch summary of `s` (local + descendants).
    pub fn branch_summary(&self, s: ServerId) -> &Summary {
        &self.branch_summary[s.index()]
    }

    /// Replication set of `s`.
    pub fn replica_set(&self, s: ServerId) -> &ReplicationSet {
        &self.replicas[s.index()]
    }

    /// Evaluate `query` at server `s`.
    ///
    /// `entry` selects whether replicated summaries participate: at the
    /// query's entry server the overlay provides shortcuts to remote
    /// branches; at servers reached by redirection only the local data and
    /// children are searched (their branch is their responsibility).
    pub fn evaluate(&self, s: ServerId, query: &Query, entry: bool) -> EvalResult {
        let local_match = self.local_summary[s.index()].may_match(query);
        let child_targets = self
            .tree
            .children(s)
            .iter()
            .copied()
            .filter(|c| self.branch_summary[c.index()].may_match(query))
            .collect();
        let (replica_targets, ancestor_targets) = if entry {
            let replicas = self.replicas[s.index()]
                .redirect_targets()
                .into_iter()
                .filter(|t| self.branch_summary[t.index()].may_match(query))
                .collect();
            // Ancestor *branch* summaries include this server's own branch,
            // so they over-approximate; the probe itself is a cheap
            // local-only lookup, and the filter still prunes ancestors
            // whose whole branch provably has no match.
            let ancestors = self.replicas[s.index()]
                .ancestors
                .iter()
                .copied()
                .filter(|a| self.branch_summary[a.index()].may_match(query))
                .collect();
            (replicas, ancestors)
        } else {
            (Vec::new(), Vec::new())
        };
        EvalResult {
            local_match,
            child_targets,
            replica_targets,
            ancestor_targets,
        }
    }

    /// Search `s`'s locally attached records exactly.
    pub fn search_local(&self, s: ServerId, query: &Query) -> Vec<&Record> {
        self.records[s.index()]
            .iter()
            .filter(|r| query.matches(r))
            .collect()
    }

    /// Ground truth: every server whose local records contain a match.
    pub fn matching_servers(&self, query: &Query) -> Vec<ServerId> {
        (0..self.len() as u32)
            .map(ServerId)
            .filter(|&s| self.records[s.index()].iter().any(|r| query.matches(r)))
            .collect()
    }

    /// Per-server storage in bytes: children's branch summaries + local
    /// summary + replicated summaries (Table I accounting).
    pub fn storage_bytes(&self, s: ServerId) -> usize {
        let children: usize = self
            .tree
            .children(s)
            .iter()
            .map(|c| self.branch_summary[c.index()].wire_size())
            .sum();
        let replicated: usize = self.replicas[s.index()]
            .all()
            .iter()
            .map(|t| self.branch_summary[t.index()].wire_size())
            .sum();
        children + replicated + self.local_summary[s.index()].wire_size()
    }

    /// Worst per-server storage across the federation.
    pub fn max_storage_bytes(&self) -> usize {
        (0..self.len() as u32)
            .map(|s| self.storage_bytes(ServerId(s)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{OwnerId, QueryBuilder, QueryId, RecordId, Value};
    use roads_summary::SummaryConfig;

    fn unit_record(schema: &Schema, id: u64, owner: u32, vals: &[f64]) -> Record {
        let _ = schema;
        Record::new_unchecked(
            RecordId(id),
            OwnerId(owner),
            vals.iter().map(|&v| Value::Float(v)).collect(),
        )
    }

    /// 7 servers, 2 attrs; server s holds one record at (s/10, 1 - s/10).
    fn small_network() -> RoadsNetwork {
        let schema = Schema::unit_numeric(2);
        let cfg = RoadsConfig {
            max_children: 2,
            summary: SummaryConfig::with_buckets(100),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..7)
            .map(|s| {
                vec![unit_record(
                    &schema,
                    s as u64,
                    s as u32,
                    &[s as f64 / 10.0, 1.0 - s as f64 / 10.0],
                )]
            })
            .collect();
        RoadsNetwork::build(schema, cfg, records)
    }

    #[test]
    fn branch_summaries_aggregate_counts() {
        let n = small_network();
        let root = n.tree().root();
        assert_eq!(n.branch_summary(root).record_count(), 7);
        for s in n.tree().servers() {
            let expected = 1 + n.tree().subtree(s).iter().filter(|&&c| c != s).count() as u64;
            assert_eq!(n.branch_summary(s).record_count(), expected);
        }
    }

    #[test]
    fn root_summary_matches_everything_any_leaf_holds() {
        let n = small_network();
        let schema = n.schema().clone();
        for s in 0..7u32 {
            let v = s as f64 / 10.0;
            let q = QueryBuilder::new(&schema, QueryId(s as u64))
                .range("x0", v - 0.01, v + 0.01)
                .build();
            assert!(
                n.branch_summary(n.tree().root()).may_match(&q),
                "root misses record of server {s}"
            );
        }
    }

    #[test]
    fn evaluation_prunes_non_matching_branches() {
        let n = small_network();
        let schema = n.schema().clone();
        // Only server 6 holds x0 = 0.6.
        let q = QueryBuilder::new(&schema, QueryId(9))
            .range("x0", 0.595, 0.605)
            .build();
        let ground_truth = n.matching_servers(&q);
        assert_eq!(ground_truth, vec![ServerId(6)]);

        // Walking the redirect structure from the root must reach server 6
        // and nothing outside summary-matching branches.
        let mut frontier = vec![n.tree().root()];
        let mut reached_matching = false;
        while let Some(s) = frontier.pop() {
            let ev = n.evaluate(s, &q, false);
            if ev.local_match && n.search_local(s, &q).len() == 1 {
                reached_matching = true;
            }
            frontier.extend(ev.child_targets);
        }
        assert!(reached_matching);
    }

    #[test]
    fn entry_evaluation_uses_overlay() {
        let n = small_network();
        let schema = n.schema().clone();
        // Start at a leaf; the match lives in a different branch.
        let leaf = *n.tree().leaves().iter().max().unwrap();
        let q = QueryBuilder::new(&schema, QueryId(1))
            .range("x0", 0.0, 0.01) // only server 0 (the root) holds 0.0
            .build();
        let ev = n.evaluate(leaf, &q, true);
        let gt = n.matching_servers(&q);
        assert_eq!(gt, vec![ServerId(0)]);
        // The match lives in the root's *local* records; from a leaf the
        // sibling/ancestor-sibling branches cannot reach it, so the entry
        // evaluation must nominate the root as a local-only ancestor probe.
        assert!(
            ev.ancestor_targets.contains(&ServerId(0)),
            "ancestor probe must cover matches attached at ancestors"
        );
    }

    #[test]
    fn without_entry_no_replica_targets() {
        let n = small_network();
        let schema = n.schema().clone();
        let q = QueryBuilder::new(&schema, QueryId(2))
            .range("x0", 0.0, 1.0)
            .build();
        let leaf = *n.tree().leaves().first().unwrap();
        let ev = n.evaluate(leaf, &q, false);
        assert!(ev.replica_targets.is_empty());
    }

    #[test]
    fn storage_counts_children_replicas_local() {
        let n = small_network();
        for s in n.tree().servers() {
            let bytes = n.storage_bytes(s);
            assert!(bytes > 0);
        }
        assert!(n.max_storage_bytes() > 0);
    }

    #[test]
    fn attachments_fig1_semantics() {
        // Fig. 1: owners C, E host their own servers; owner D attaches to
        // a server provided by another party; servers 1 and 2 are pure
        // "server providers" with no records of their own.
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 2,
            summary: SummaryConfig::with_buckets(50),
            ..RoadsConfig::paper_default()
        };
        let rec = |id: u64, owner: u32, v: f64| {
            Record::new_unchecked(RecordId(id), OwnerId(owner), vec![Value::Float(v)])
        };
        let net = RoadsNetwork::with_attachments(
            schema.clone(),
            cfg,
            5,
            vec![
                (ServerId(3), vec![rec(1, 100, 0.1)]), // owner C at its own server
                (ServerId(2), vec![rec(2, 101, 0.5)]), // owner D at B's server
                (ServerId(2), vec![rec(3, 102, 0.6)]), // owner E shares server 2
                (ServerId(4), vec![rec(4, 103, 0.9)]),
            ],
        );
        assert!(net.records(ServerId(0)).is_empty(), "pure server provider");
        assert!(net.records(ServerId(1)).is_empty());
        assert_eq!(net.owners_at(ServerId(2)), vec![OwnerId(101), OwnerId(102)]);
        assert_eq!(net.owners_at(ServerId(3)), vec![OwnerId(100)]);

        // Discovery still reaches every owner's records from any entry.
        let delays = roads_netsim::DelaySpace::paper(5, 4);
        let q = roads_records::QueryBuilder::new(&schema, roads_records::QueryId(1))
            .range("x0", 0.45, 0.65)
            .build();
        let out = crate::queryexec::execute_query(
            &net,
            &delays,
            &q,
            ServerId(0),
            crate::queryexec::SearchScope::full(),
        );
        assert_eq!(out.matching_records, 2, "owners D and E both found");
        assert_eq!(out.matching_servers, vec![ServerId(2)]);
    }

    #[test]
    fn choose_attachment_respects_capacity_walk() {
        let tree = crate::tree::HierarchyTree::build(10, 3);
        let a = RoadsNetwork::choose_attachment(&tree, tree.root(), 3);
        // Root is full (3 children): the walk descends.
        assert_ne!(a, tree.root());
        // An under-capacity entry accepts directly.
        let leaf = *tree.leaves().first().unwrap();
        assert_eq!(RoadsNetwork::choose_attachment(&tree, leaf, 3), leaf);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn attachment_out_of_range_panics() {
        let schema = Schema::unit_numeric(1);
        let _ = RoadsNetwork::with_attachments(
            schema,
            RoadsConfig::paper_default(),
            2,
            vec![(ServerId(5), Vec::new())],
        );
    }

    #[test]
    fn search_local_exact() {
        let n = small_network();
        let schema = n.schema().clone();
        let q = QueryBuilder::new(&schema, QueryId(3))
            .range("x0", 0.28, 0.32)
            .build();
        assert_eq!(n.search_local(ServerId(3), &q).len(), 1);
        assert_eq!(n.search_local(ServerId(4), &q).len(), 0);
    }
}
