//! Client-driven query execution (§III-A "Searching for Resources",
//! §III-C replication overlay shortcuts).
//!
//! A client submits its query to any server (usually its attachment point).
//! The server evaluates the query against every summary it holds and
//! *directs the client* to the matching branches (Fig. 2: "redirected
//! request"); the client then queries those servers, which direct it
//! further down their own branches, until every server that may hold
//! matching records has been reached.
//!
//! Latency follows the paper's definition: "the time from the client
//! initiating a query to the query reaching the last server it needs to
//! contact". Query overhead counts every forwarded query and redirect
//! reply.

use crate::engine::RoadsNetwork;
use crate::planner::{PlanAction, QueryPlan};
use crate::tree::ServerId;
use roads_netsim::DelaySpace;
use roads_records::{wire::MSG_HEADER_BYTES, Query, WireSize};
use roads_summary::SummaryVerdict;
use roads_telemetry::{
    Event, EventKind, ExplainDecision, ExplainHop, HopOutcome, LatencySplit, QueryExplain,
    Recorder, SpanId, SummaryKind, TraceId,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Bytes per server id inside a redirect reply.
const REDIRECT_ENTRY_BYTES: usize = 4;

/// How far up the hierarchy a search may reach from its entry server.
///
/// "Each ancestor (or their siblings) of the starting server is one level
/// higher in the hierarchy, providing more resources but requiring a longer
/// search path. Based on the needs of how wide a range should be searched,
/// the client can choose one or several branches." (§III-C)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchScope {
    /// Consider only ancestors (and their siblings) within this many levels
    /// above the entry server; `None` = the whole hierarchy.
    pub levels_up: Option<usize>,
}

impl SearchScope {
    /// Search the entire hierarchy (the default).
    pub fn full() -> Self {
        SearchScope { levels_up: None }
    }

    /// Search only `levels` levels up from the entry server.
    pub fn levels(levels: usize) -> Self {
        SearchScope {
            levels_up: Some(levels),
        }
    }

    /// Whether a replica redirect target (a sibling of the entry or of one
    /// of its ancestors) at `target_depth` is within scope of an entry at
    /// `entry_depth`.
    ///
    /// A sibling is reached *through* the ancestor it hangs off, one level
    /// below it: the entry's own siblings cost one level of scope
    /// (`levels_up = 0` confines the search to the entry's own branch), and
    /// a sibling of the ancestor `k` levels up costs `k`.
    pub fn admits_replica(&self, entry_depth: usize, target_depth: usize) -> bool {
        match self.levels_up {
            None => true,
            Some(levels) => (entry_depth + 1).saturating_sub(target_depth) <= levels,
        }
    }

    /// Whether an ancestor probe at `target_depth` is within scope of an
    /// entry at `entry_depth`: the ancestor `k` levels up costs `k`.
    pub fn admits_ancestor(&self, entry_depth: usize, target_depth: usize) -> bool {
        match self.levels_up {
            None => true,
            Some(levels) => entry_depth.saturating_sub(target_depth) <= levels,
        }
    }
}

/// Outcome of one query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Time until the query reached the last server it needed to contact,
    /// in milliseconds.
    pub latency_ms: f64,
    /// Bytes of query forwarding traffic (query messages + redirect
    /// replies).
    pub query_bytes: u64,
    /// Number of query messages sent.
    pub query_messages: u64,
    /// Servers contacted (including the entry server).
    pub servers_contacted: usize,
    /// Servers whose local search produced at least one record.
    pub matching_servers: Vec<ServerId>,
    /// Total matching records found.
    pub matching_records: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The query's entry server: children + overlay shortcuts + ancestor
    /// probes.
    Entry,
    /// A branch server reached by redirection: local data + children.
    Branch,
    /// An ancestor probed for its locally attached records only.
    LocalOnly,
}

/// Time-ordered contact queue entry. `f64` arrival times are finite by
/// construction, so a total order via bit patterns is safe here.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Contact {
    at_us: u64,
    server: ServerId,
    mode: Mode,
}

impl Eq for Contact {}
impl PartialOrd for Contact {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Contact {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.server).cmp(&(other.at_us, other.server))
    }
}

/// How the query travels between servers.
///
/// §III-A describes both styles: servers "direct the client to further
/// query those children" (Fig. 2's redirected requests), while the latency
/// analysis treats per-level cost as one forwarding hop ("the latency is
/// determined by the number of levels in the hierarchy"). The simulation
/// harness uses [`ForwardingMode::ServerForward`] — matching the paper's
/// measured latencies — and the threaded prototype implements the
/// client-redirect protocol, whose extra round trips are visible in
/// Fig. 11's total response times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardingMode {
    /// Each server forwards the query straight to its matching targets:
    /// one one-way hop per level.
    #[default]
    ServerForward,
    /// Each server replies to the client, which re-issues the query: a
    /// round trip back to the client per level.
    ClientRedirect,
}

/// Execute `query` starting at `start`, over a converged [`RoadsNetwork`]
/// with latencies from `delays`, using the default
/// [`ForwardingMode::ServerForward`].
///
/// The client is co-located with the entry server (the paper initiates each
/// query "from a randomly chosen node"), so contacting the entry is free.
pub fn execute_query(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
) -> QueryOutcome {
    execute_query_mode(net, delays, query, start, scope, ForwardingMode::default())
}

/// One step of a traced execution: which server was contacted, when, in
/// what role, and what it did.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The contacted server.
    pub server: ServerId,
    /// Arrival time of the query at that server (ms).
    pub at_ms: f64,
    /// Role the server played.
    pub role: TraceRole,
    /// Records its local search produced.
    pub local_matches: usize,
    /// Servers it forwarded/redirected the query to.
    pub forwarded_to: Vec<ServerId>,
}

/// Role of a contacted server in a traced execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRole {
    /// The query's entry server.
    Entry,
    /// A branch server reached by redirection.
    Branch,
    /// A local-only ancestor probe.
    AncestorProbe,
}

/// [`execute_query`] that also returns the full contact trace, in contact
/// order — for debugging redirect behaviour and visualizing executions.
pub fn execute_query_traced(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
) -> (QueryOutcome, Vec<TraceEvent>) {
    let mut trace = Vec::new();
    let outcome = execute_query_inner(
        net,
        delays,
        query,
        start,
        scope,
        ForwardingMode::default(),
        None,
        Some(&mut trace),
    );
    (outcome, trace)
}

/// Execute a pre-computed [`QueryPlan`] (see [`crate::planner`]): the entry
/// dispatches the planned contacts as one batch instead of expanding its
/// own overlay view hop-by-hop. Descent below planned branch targets is
/// unchanged. The plan must have been computed for `start`.
pub fn execute_query_planned(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
    plan: &QueryPlan,
) -> QueryOutcome {
    execute_query_inner(
        net,
        delays,
        query,
        start,
        scope,
        ForwardingMode::default(),
        Some(plan),
        None,
    )
}

/// [`execute_query_planned`] that also returns the contact trace.
pub fn execute_query_planned_traced(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
    plan: &QueryPlan,
) -> (QueryOutcome, Vec<TraceEvent>) {
    let mut trace = Vec::new();
    let outcome = execute_query_inner(
        net,
        delays,
        query,
        start,
        scope,
        ForwardingMode::default(),
        Some(plan),
        Some(&mut trace),
    );
    (outcome, trace)
}

/// Classify a contact trace into a telemetry [`QueryTrace`]
/// (`roads_telemetry`), attributing a [`HopReason`] to every visit.
///
/// Reasons are reconstructed from the hierarchy: a branch contact whose
/// forwarder is its tree parent is a summary-driven descent — and a
/// descent that found nothing locally *and* had nowhere further to
/// redirect is a false-positive redirect, the cost of lossy summaries. A
/// branch contact reached from a non-parent came through the replication
/// overlay (entry shortcuts to siblings and ancestors' siblings), and
/// ancestor probes are the climb that widens the search scope.
pub fn trace_to_telemetry(
    net: &RoadsNetwork,
    query_id: u64,
    trace: &[TraceEvent],
) -> roads_telemetry::QueryTrace {
    use roads_telemetry::{Hop, HopReason};
    let mut hops = Vec::with_capacity(trace.len());
    let mut completed_ms = 0.0f64;
    for (i, e) in trace.iter().enumerate() {
        completed_ms = completed_ms.max(e.at_ms);
        let reason = match e.role {
            TraceRole::Entry => HopReason::Entry,
            TraceRole::AncestorProbe => HopReason::ClimbToParent,
            TraceRole::Branch => {
                // The first earlier contact listing this server forwarded
                // the query here (contacts are in arrival-time order).
                let forwarder = trace[..i]
                    .iter()
                    .find(|p| p.forwarded_to.contains(&e.server))
                    .map(|p| p.server);
                let via_tree = forwarder.is_some() && net.tree().parent(e.server) == forwarder;
                if !via_tree {
                    HopReason::OverlayShortcut
                } else if e.local_matches == 0 && e.forwarded_to.is_empty() {
                    HopReason::FalsePositiveRedirect
                } else {
                    HopReason::SummaryHit
                }
            }
        };
        hops.push(Hop {
            node: e.server.0,
            reason,
            at_ms: e.at_ms,
            local_matches: e.local_matches,
        });
    }
    roads_telemetry::QueryTrace {
        query_id,
        entry: trace.first().map(|e| e.server.0).unwrap_or(0),
        hops,
        completed_ms,
    }
}

/// Map an [`AttributeSummary::kind_name`](roads_summary::AttributeSummary)
/// label into the telemetry vocabulary.
fn summary_kind(label: &str) -> Option<SummaryKind> {
    Some(match label {
        "histogram" => SummaryKind::Histogram,
        "multires" => SummaryKind::MultiRes,
        "set" => SummaryKind::ValueSet,
        "bloom" => SummaryKind::Bloom,
        _ => return None,
    })
}

/// The summary kind likeliest to have *caused* the routing decision that
/// contacted `server`: the fuzziest kind participating in its branch
/// summary's match (the candidate false-positive source).
fn deciding_kind(net: &RoadsNetwork, server: ServerId, query: &Query) -> Option<SummaryKind> {
    match net.branch_summary(server).decide(query) {
        SummaryVerdict::Match { fuzziest } => fuzziest.and_then(summary_kind),
        SummaryVerdict::Prune { decided_by } => decided_by.and_then(summary_kind),
    }
}

/// Build a [`QueryExplain`] provenance record from a finished simulation
/// trace: one hop per contact, each with the routing decision that caused
/// it (tree descent, overlay shortcut, ancestor probe), the summary kind
/// behind the decision, false-positive detection, and a latency split
/// (pure network transit in the simulation — queue and compute are
/// emulated only by the threaded runtime).
///
/// `trace_id` links the record to flight-recorder events of the same
/// execution (use [`TraceId::NONE`] when no recorder was attached).
pub fn explain_from_trace(
    net: &RoadsNetwork,
    query: &Query,
    trace_id: TraceId,
    trace: &[TraceEvent],
    outcome: &QueryOutcome,
) -> QueryExplain {
    let to_us = |ms: f64| ms * 1000.0;
    // Who forwarded the query to each contact (contacts are time-ordered);
    // same reconstruction as `record_query_events`.
    let parent_idx: Vec<Option<usize>> = trace
        .iter()
        .enumerate()
        .map(|(i, e)| {
            if i == 0 {
                None
            } else {
                trace[..i]
                    .iter()
                    .position(|p| p.forwarded_to.contains(&e.server))
            }
        })
        .collect();
    // A hop's duration covers its redirect subtree (its own work plus
    // everything it caused), mirroring the recorded span tree.
    let mut end_ms: Vec<f64> = trace.iter().map(|e| e.at_ms).collect();
    for i in (1..trace.len()).rev() {
        if let Some(p) = parent_idx[i] {
            end_ms[p] = end_ms[p].max(end_ms[i]);
        }
    }
    let hops = trace
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let (decision, summary) = match e.role {
                TraceRole::Entry => (ExplainDecision::Entry, None),
                TraceRole::AncestorProbe => (
                    ExplainDecision::AncestorProbe,
                    deciding_kind(net, e.server, query),
                ),
                TraceRole::Branch => {
                    let forwarder = parent_idx[i].map(|p| trace[p].server);
                    let via_tree = forwarder.is_some() && net.tree().parent(e.server) == forwarder;
                    (
                        if via_tree {
                            ExplainDecision::SummaryDescent
                        } else {
                            ExplainDecision::OverlayShortcut
                        },
                        deciding_kind(net, e.server, query),
                    )
                }
            };
            let network_us = match parent_idx[i] {
                Some(p) => to_us(e.at_ms - trace[p].at_ms),
                None => 0.0,
            };
            ExplainHop {
                server: e.server.0,
                decision,
                summary,
                false_positive: e.role == TraceRole::Branch
                    && e.local_matches == 0
                    && e.forwarded_to.is_empty(),
                outcome: HopOutcome::Replied,
                at_us: to_us(e.at_ms),
                dur_us: to_us(end_ms[i] - e.at_ms),
                caused_by: parent_idx[i],
                local_matches: e.local_matches as u64,
                split: LatencySplit {
                    network_us,
                    ..LatencySplit::default()
                },
            }
        })
        .collect();
    QueryExplain {
        query_id: query.id.0,
        trace_id: trace_id.0,
        entry: trace.first().map(|e| e.server.0).unwrap_or(0),
        response_us: to_us(outcome.latency_ms),
        complete: true,
        deadline_hit: false,
        records: outcome.matching_records as u64,
        hops,
    }
}

/// [`execute_query`] that also assembles the per-query provenance record.
/// When a recorder is attached the execution is additionally recorded as
/// a span tree and the explain record carries its trace id.
pub fn execute_query_explained(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
    rec: Option<&Recorder>,
) -> (QueryOutcome, QueryExplain) {
    let (outcome, trace) = execute_query_traced(net, delays, query, start, scope);
    let trace_id = match rec {
        Some(r) => {
            let id = r.next_trace_id();
            record_query_events(r, id, &trace);
            id
        }
        None => TraceId::NONE,
    };
    let explain = explain_from_trace(net, query, trace_id, &trace, &outcome);
    (outcome, explain)
}

/// Record a contact trace into the flight recorder as a span tree under
/// `trace_id`: one `query-hop` span per contact, parented on the contact
/// that forwarded the query there (the entry is the root), plus
/// `query-start` / `query-complete` instants on the entry server. Each
/// hop's duration covers its whole redirect subtree, so the slowest
/// root-to-leaf chain is the query's critical path. Returns the root span.
pub fn record_query_events(
    rec: &Recorder,
    trace_id: TraceId,
    trace: &[TraceEvent],
) -> Option<SpanId> {
    let first = trace.first()?;
    let to_us = |ms: f64| (ms * 1000.0).round().max(0.0) as u64;
    // Who forwarded the query to each contact (contacts are time-ordered).
    let parent_idx: Vec<Option<usize>> = trace
        .iter()
        .enumerate()
        .map(|(i, e)| {
            if i == 0 {
                None
            } else {
                trace[..i]
                    .iter()
                    .position(|p| p.forwarded_to.contains(&e.server))
            }
        })
        .collect();
    // Latest arrival inside each contact's redirect subtree.
    let mut end_ms: Vec<f64> = trace.iter().map(|e| e.at_ms).collect();
    for i in (1..trace.len()).rev() {
        if let Some(p) = parent_idx[i] {
            end_ms[p] = end_ms[p].max(end_ms[i]);
        }
    }
    let spans: Vec<SpanId> = trace.iter().map(|_| rec.next_span_id()).collect();
    rec.record(Event {
        at_us: to_us(first.at_ms),
        dur_us: 0,
        node: first.server.0,
        trace: trace_id,
        span: spans[0],
        parent: SpanId::NONE,
        kind: EventKind::QueryStart,
        detail: trace_id.0,
    });
    let mut total_matches = 0u64;
    for (i, e) in trace.iter().enumerate() {
        total_matches += e.local_matches as u64;
        let parent = match parent_idx[i] {
            Some(p) => spans[p],
            // The entry roots the tree; a contact with no recorded
            // forwarder (defensive — should not happen) hangs off it.
            None if i == 0 => SpanId::NONE,
            None => spans[0],
        };
        let mut dur_us = to_us(end_ms[i]).saturating_sub(to_us(e.at_ms));
        if i == 0 {
            // The root renders as a complete slice even for single-hop
            // queries.
            dur_us = dur_us.max(1);
        }
        rec.record(Event {
            at_us: to_us(e.at_ms),
            dur_us,
            node: e.server.0,
            trace: trace_id,
            span: spans[i],
            parent,
            kind: EventKind::QueryHop,
            detail: e.local_matches as u64,
        });
    }
    let completed = trace.iter().map(|e| e.at_ms).fold(0.0f64, f64::max);
    rec.record(Event {
        at_us: to_us(completed),
        dur_us: 0,
        node: first.server.0,
        trace: trace_id,
        span: spans[0],
        parent: SpanId::NONE,
        kind: EventKind::QueryComplete,
        detail: total_matches,
    });
    Some(spans[0])
}

/// [`execute_query`] that, when a flight recorder is attached, also
/// records the execution as a span tree under a fresh trace id. With
/// `None` it is exactly [`execute_query`] — no tracing, no allocation.
pub fn execute_query_recorded(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
    rec: Option<&Recorder>,
) -> QueryOutcome {
    match rec {
        None => execute_query(net, delays, query, start, scope),
        Some(r) => {
            let (outcome, trace) = execute_query_traced(net, delays, query, start, scope);
            record_query_events(r, r.next_trace_id(), &trace);
            outcome
        }
    }
}

/// [`execute_query`] with an explicit [`ForwardingMode`].
pub fn execute_query_mode(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
    mode: ForwardingMode,
) -> QueryOutcome {
    execute_query_inner(net, delays, query, start, scope, mode, None, None)
}

#[allow(clippy::too_many_arguments)]
fn execute_query_inner(
    net: &RoadsNetwork,
    delays: &DelaySpace,
    query: &Query,
    start: ServerId,
    scope: SearchScope,
    mode: ForwardingMode,
    plan: Option<&QueryPlan>,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> QueryOutcome {
    if let Some(p) = plan {
        assert_eq!(p.entry, start, "plan was computed for a different entry");
    }
    assert_eq!(
        net.len(),
        delays.len(),
        "delay space must cover all servers"
    );
    let query_msg_bytes = query.wire_size() + MSG_HEADER_BYTES;
    let client = start.index();

    let mut heap: BinaryHeap<Reverse<Contact>> = BinaryHeap::new();
    let mut visited: HashSet<ServerId> = HashSet::new();
    let mut outcome = QueryOutcome {
        latency_ms: 0.0,
        query_bytes: 0,
        query_messages: 0,
        servers_contacted: 0,
        matching_servers: Vec::new(),
        matching_records: 0,
    };

    let entry_depth = net.tree().depth(start);
    // Replica redirect targets and ancestor probes consume scope
    // differently: an ancestor's sibling sits one level *below* the
    // ancestor it is reached through, so it costs that ancestor's level
    // count, not its own depth difference.
    let replica_in_scope =
        |target: ServerId| -> bool { scope.admits_replica(entry_depth, net.tree().depth(target)) };
    let ancestor_in_scope =
        |target: ServerId| -> bool { scope.admits_ancestor(entry_depth, net.tree().depth(target)) };

    // The entry contact is local (client co-located): zero latency, but the
    // query message itself is still accounted.
    heap.push(Reverse(Contact {
        at_us: 0,
        server: start,
        mode: Mode::Entry,
    }));
    outcome.query_bytes += query_msg_bytes as u64;
    outcome.query_messages += 1;

    while let Some(Reverse(c)) = heap.pop() {
        if !visited.insert(c.server) {
            continue;
        }
        outcome.servers_contacted += 1;
        let arrive_ms = c.at_us as f64 / 1000.0;
        outcome.latency_ms = outcome.latency_ms.max(arrive_ms);

        let ev = match c.mode {
            Mode::Entry => net.evaluate(c.server, query, true),
            Mode::Branch => net.evaluate(c.server, query, false),
            Mode::LocalOnly => {
                // Probe local records only; no further redirection.
                let local = net.search_local(c.server, query);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent {
                        server: c.server,
                        at_ms: arrive_ms,
                        role: TraceRole::AncestorProbe,
                        local_matches: local.len(),
                        forwarded_to: Vec::new(),
                    });
                }
                if !local.is_empty() {
                    outcome.matching_servers.push(c.server);
                    outcome.matching_records += local.len();
                }
                // Reply (header only) back to the client.
                outcome.query_bytes += MSG_HEADER_BYTES as u64;
                continue;
            }
        };

        // One local search per contact — its size is reused for both the
        // outcome and the trace event (a second search would double the
        // compute-time attribution in the explain plane).
        let local_matches = if ev.local_match {
            let local = net.search_local(c.server, query);
            if !local.is_empty() {
                outcome.matching_servers.push(c.server);
                outcome.matching_records += local.len();
            }
            local.len()
        } else {
            0
        };

        // Collect redirect targets.
        let mut targets: Vec<(ServerId, Mode)> = ev
            .child_targets
            .iter()
            .map(|&t| (t, Mode::Branch))
            .collect();
        if c.mode == Mode::Entry {
            match plan {
                // Planner batch: the entry dispatches exactly the planned
                // contacts instead of expanding its own overlay view.
                Some(p) => {
                    targets = p
                        .contacts
                        .iter()
                        .map(|pc| {
                            let mode = match pc.action {
                                PlanAction::Descend => Mode::Branch,
                                PlanAction::Probe => Mode::LocalOnly,
                            };
                            (pc.server, mode)
                        })
                        .collect();
                }
                None => {
                    targets.extend(
                        ev.replica_targets
                            .iter()
                            .filter(|&&t| replica_in_scope(t))
                            .map(|&t| (t, Mode::Branch)),
                    );
                    targets.extend(
                        ev.ancestor_targets
                            .iter()
                            .filter(|&&t| ancestor_in_scope(t))
                            .map(|&t| (t, Mode::LocalOnly)),
                    );
                }
            }
        }
        // Drop already-visited servers AND duplicates within this batch: a
        // server reachable both as a child target and a replica target must
        // be forwarded to once, not double-counted in messages/bytes. First
        // occurrence wins (Branch entries precede LocalOnly probes).
        let mut batch_seen: HashSet<ServerId> = HashSet::with_capacity(targets.len());
        targets.retain(|(t, _)| !visited.contains(t) && batch_seen.insert(*t));
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(TraceEvent {
                server: c.server,
                at_ms: arrive_ms,
                role: if c.mode == Mode::Entry {
                    TraceRole::Entry
                } else {
                    TraceRole::Branch
                },
                local_matches,
                forwarded_to: targets.iter().map(|(t, _)| *t).collect(),
            });
        }

        match mode {
            ForwardingMode::ServerForward => {
                // The server forwards the query straight to each target;
                // the client is informed of result locations out of band
                // (not on the latency-critical path).
                for (t, tmode) in targets {
                    let at_us = c.at_us + delays.delay(c.server.index(), t.index()).as_micros();
                    outcome.query_bytes += query_msg_bytes as u64;
                    outcome.query_messages += 1;
                    heap.push(Reverse(Contact {
                        at_us,
                        server: t,
                        mode: tmode,
                    }));
                }
            }
            ForwardingMode::ClientRedirect => {
                // Redirect reply back to the client (sent even when empty —
                // the client must learn the branch is exhausted).
                let reply_bytes = MSG_HEADER_BYTES + REDIRECT_ENTRY_BYTES * targets.len();
                outcome.query_bytes += reply_bytes as u64;
                if targets.is_empty() {
                    continue;
                }
                let reply_at_us = c.at_us + delays.delay(c.server.index(), client).as_micros();
                // Client forwards the query to each target.
                for (t, tmode) in targets {
                    let at_us = reply_at_us + delays.delay(client, t.index()).as_micros();
                    outcome.query_bytes += query_msg_bytes as u64;
                    outcome.query_messages += 1;
                    heap.push(Reverse(Contact {
                        at_us,
                        server: t,
                        mode: tmode,
                    }));
                }
            }
        }
    }

    outcome.matching_servers.sort();
    outcome.matching_servers.dedup();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoadsConfig;
    use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;

    /// n servers over 1 attribute; server s holds records at s/n ± tiny.
    fn network(n: usize, degree: usize) -> (RoadsNetwork, DelaySpace) {
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: degree,
            summary: SummaryConfig::with_buckets(200),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect();
        let net = RoadsNetwork::build(schema, cfg, records);
        let delays = DelaySpace::paper(n, 77);
        (net, delays)
    }

    fn point_query(net: &RoadsNetwork, v: f64) -> Query {
        QueryBuilder::new(net.schema(), QueryId(1))
            .range("x0", v - 1e-4, v + 1e-4)
            .build()
    }

    #[test]
    fn finds_all_matches_from_every_start() {
        // Completeness: from ANY entry server, execution finds exactly the
        // ground-truth matching servers.
        let (net, delays) = network(30, 3);
        for target in [0usize, 7, 15, 29] {
            let q = point_query(&net, target as f64 / 30.0);
            let gt = net.matching_servers(&q);
            assert_eq!(gt, vec![ServerId(target as u32)]);
            for start in 0..30u32 {
                let out = execute_query(&net, &delays, &q, ServerId(start), SearchScope::full());
                assert_eq!(
                    out.matching_servers, gt,
                    "start {start} target {target}: wrong match set"
                );
                assert_eq!(out.matching_records, 1);
            }
        }
    }

    #[test]
    fn entry_server_match_is_free() {
        let (net, delays) = network(30, 3);
        let q = point_query(&net, 7.0 / 30.0);
        let out = execute_query(&net, &delays, &q, ServerId(7), SearchScope::full());
        assert!(out.matching_servers.contains(&ServerId(7)));
        // The entry match is found at t=0; total latency may still be
        // nonzero if pruning could not exclude other branches, but the
        // entry itself contributes zero.
        assert!(out.servers_contacted >= 1);
    }

    #[test]
    fn latency_zero_when_only_entry_contacted() {
        // A query matching nothing outside the entry's summary horizon:
        // use an empty-range query that no histogram can match.
        let (net, delays) = network(10, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(2))
            .range("x0", 2.0, 3.0) // outside every record's domain usage
            .build();
        let out = execute_query(&net, &delays, &q, ServerId(4), SearchScope::full());
        // Histograms clamp into [0,1]; a [2,3] query maps to the last
        // bucket, so server 9's records (0.9) may false-positive. What must
        // hold: no *matching records* and latency bounded by a couple of
        // redirect rounds.
        assert_eq!(out.matching_records, 0);
    }

    #[test]
    fn query_bytes_accounted() {
        let (net, delays) = network(30, 3);
        let q = point_query(&net, 0.5);
        let out = execute_query(&net, &delays, &q, ServerId(20), SearchScope::full());
        // At least the entry message and one reply.
        assert!(out.query_bytes >= (q.wire_size() + 2 * MSG_HEADER_BYTES) as u64);
        assert!(out.query_messages >= 1);
        assert_eq!(out.query_messages as usize, out.servers_contacted);
    }

    #[test]
    fn no_server_contacted_twice() {
        let (net, delays) = network(50, 4);
        // Broad query hitting everything: every server contacted once.
        let q = QueryBuilder::new(net.schema(), QueryId(3))
            .range("x0", 0.0, 1.0)
            .build();
        let out = execute_query(&net, &delays, &q, ServerId(13), SearchScope::full());
        assert_eq!(out.servers_contacted, 50);
        assert_eq!(out.matching_servers.len(), 50);
        assert_eq!(out.matching_records, 50);
    }

    #[test]
    fn scoped_search_limits_reach() {
        let (net, delays) = network(30, 2); // deep tree
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let q = QueryBuilder::new(net.schema(), QueryId(4))
            .range("x0", 0.0, 1.0)
            .build();
        let full = execute_query(&net, &delays, &q, leaf, SearchScope::full());
        let scoped = execute_query(&net, &delays, &q, leaf, SearchScope::levels(1));
        assert!(scoped.servers_contacted < full.servers_contacted);
        assert!(scoped.matching_servers.len() < full.matching_servers.len());
    }

    #[test]
    fn root_start_equals_basic_hierarchy_search() {
        // From the root the overlay adds nothing (no siblings/ancestors):
        // execution is the paper's basic top-down search.
        let (net, delays) = network(30, 3);
        let q = point_query(&net, 17.0 / 30.0);
        let out = execute_query(&net, &delays, &q, net.tree().root(), SearchScope::full());
        assert_eq!(out.matching_servers, vec![ServerId(17)]);
        // Contacted servers form a root-to-target set of tree paths only.
        assert!(out.servers_contacted <= 1 + net.tree().levels() * 3);
    }

    #[test]
    fn trace_covers_every_contact() {
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(8))
            .range("x0", 0.0, 1.0)
            .build();
        let (out, trace) =
            execute_query_traced(&net, &delays, &q, ServerId(11), SearchScope::full());
        assert_eq!(trace.len(), out.servers_contacted);
        assert_eq!(trace[0].server, ServerId(11));
        assert_eq!(trace[0].role, TraceRole::Entry);
        assert!((trace[0].at_ms - 0.0).abs() < 1e-9);
        // Contact order is time order.
        for w in trace.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
        // Every forwarded-to server eventually appears as a contact.
        let contacted: std::collections::HashSet<ServerId> =
            trace.iter().map(|e| e.server).collect();
        for e in &trace {
            for f in &e.forwarded_to {
                assert!(
                    contacted.contains(f),
                    "{f} forwarded-to but never contacted"
                );
            }
        }
        // Local match counts agree with the outcome total.
        let total: usize = trace.iter().map(|e| e.local_matches).sum();
        assert_eq!(total, out.matching_records);
    }

    #[test]
    fn telemetry_trace_classifies_hops() {
        use roads_telemetry::HopReason;
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(9))
            .range("x0", 0.0, 1.0)
            .build();
        // Start at a leaf: the overlay (siblings + ancestors' siblings)
        // must be exercised alongside plain child descents.
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let (out, trace) = execute_query_traced(&net, &delays, &q, leaf, SearchScope::full());
        let t = trace_to_telemetry(&net, 9, &trace);
        assert_eq!(t.hop_count(), out.servers_contacted);
        assert_eq!(t.entry, leaf.0);
        assert_eq!(t.hops[0].reason, HopReason::Entry);
        assert_eq!(t.count_reason(HopReason::Entry), 1);
        assert!(
            t.count_reason(HopReason::OverlayShortcut) > 0,
            "a leaf entry on a broad query must take overlay shortcuts"
        );
        assert!(
            t.count_reason(HopReason::SummaryHit) > 0,
            "child descents on a broad query are summary hits"
        );
        // Cumulative time is the max over hops.
        let max_at = t.hops.iter().map(|h| h.at_ms).fold(0.0f64, f64::max);
        assert_eq!(t.completed_ms, max_at);
    }

    #[test]
    fn recorded_span_tree_is_acyclic_and_rooted_at_entry() {
        use roads_telemetry::{critical_path, span_tree_root, Recorder};
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(12))
            .range("x0", 0.0, 1.0)
            .build();
        let rec = Recorder::new(4096);
        let trace_id = rec.next_trace_id();
        let (out, trace) =
            execute_query_traced(&net, &delays, &q, ServerId(11), SearchScope::full());
        let root = record_query_events(&rec, trace_id, &trace).expect("non-empty trace");
        let events = rec.events();
        // `span_tree_root` validates acyclicity and single-rootedness.
        assert_eq!(span_tree_root(&events, trace_id), Ok(root));
        // …and the root span lives on the entry server.
        let root_hop = events
            .iter()
            .find(|e| e.span == root && e.kind == EventKind::QueryHop)
            .expect("root hop recorded");
        assert_eq!(root_hop.node, 11);
        // One hop span per contacted server, plus start/complete markers.
        let hops = events
            .iter()
            .filter(|e| e.kind == EventKind::QueryHop)
            .count();
        assert_eq!(hops, out.servers_contacted);
        // The critical path starts at the entry and is a real chain.
        let path = critical_path(&events, trace_id);
        assert_eq!(path.first().map(|e| e.span), Some(root));
        assert!(path.len() >= 2, "a 30-server broad query spans levels");
    }

    #[test]
    fn execute_query_recorded_matches_plain_execution() {
        use roads_telemetry::Recorder;
        let (net, delays) = network(30, 3);
        let q = point_query(&net, 0.5);
        let plain = execute_query(&net, &delays, &q, ServerId(3), SearchScope::full());
        let none =
            execute_query_recorded(&net, &delays, &q, ServerId(3), SearchScope::full(), None);
        assert_eq!(plain, none);
        let rec = Recorder::new(1024);
        let some = execute_query_recorded(
            &net,
            &delays,
            &q,
            ServerId(3),
            SearchScope::full(),
            Some(&rec),
        );
        assert_eq!(plain, some);
        assert!(!rec.is_empty(), "recorded execution must emit events");
    }

    #[test]
    fn explained_execution_reconstructs_hop_sequence() {
        use roads_telemetry::{span_tree_root, Recorder};
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(21))
            .range("x0", 0.0, 1.0)
            .build();
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let rec = Recorder::new(4096);
        let (out, explain) =
            execute_query_explained(&net, &delays, &q, leaf, SearchScope::full(), Some(&rec));

        // One hop per contacted server, entry first.
        assert_eq!(explain.hops.len(), out.servers_contacted);
        assert_eq!(explain.entry, leaf.0);
        assert_eq!(explain.hops[0].decision, ExplainDecision::Entry);
        assert_eq!(explain.query_id, 21);
        assert_eq!(explain.records, out.matching_records as u64);
        assert!((explain.response_us - out.latency_ms * 1000.0).abs() < 1e-6);

        // Simulation never times out: every hop replied, and the distinct
        // responder count equals servers contacted.
        assert!(explain
            .hops
            .iter()
            .all(|h| h.outcome == HopOutcome::Replied));
        assert_eq!(explain.distinct_responders(), out.servers_contacted);

        // A leaf entry on a broad query uses the overlay and descends.
        assert!(explain
            .hops
            .iter()
            .any(|h| h.decision == ExplainDecision::OverlayShortcut));
        assert!(explain
            .hops
            .iter()
            .any(|h| h.decision == ExplainDecision::SummaryDescent));
        // Routed hops carry the deciding summary kind (histograms here).
        assert!(explain
            .hops
            .iter()
            .filter(|h| h.decision != ExplainDecision::Entry
                && h.decision != ExplainDecision::AncestorProbe)
            .all(|h| h.summary == Some(SummaryKind::Histogram)));

        // The explain's causal structure matches the recorded span tree:
        // same trace id, and the hop-caused_by graph has exactly one root.
        let events = rec.events();
        assert!(span_tree_root(&events, TraceId(explain.trace_id)).is_ok());
        let roots = explain
            .hops
            .iter()
            .filter(|h| h.caused_by.is_none())
            .count();
        assert_eq!(roots, 1, "only the entry hop is uncaused");

        // Attribution is pure network time in the simulation.
        let a = explain.attribution();
        assert!(a.network_us > 0.0);
        assert_eq!(a.queue_us, 0.0);
        assert_eq!(a.compute_us, 0.0);
        assert_eq!(a.retry_us, 0.0);
        assert_eq!(a.failover_us, 0.0);
    }

    #[test]
    fn explain_flags_false_positive_hops() {
        // A query outside every record's used domain: histograms clamp
        // into the last bucket, so branches holding values near 1.0 may
        // false-positive; any contacted branch with no local match and no
        // further redirect must be flagged.
        let (net, delays) = network(10, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(22))
            .range("x0", 2.0, 3.0)
            .build();
        let (out, explain) =
            execute_query_explained(&net, &delays, &q, ServerId(4), SearchScope::full(), None);
        assert_eq!(out.matching_records, 0);
        assert_eq!(explain.trace_id, 0, "no recorder, no trace id");
        if explain.hops.len() > 1 {
            assert!(
                explain.false_positive_count() > 0,
                "dead-end redirects on a no-match query are false positives"
            );
        }
    }

    #[test]
    fn traced_execution_searches_each_server_once() {
        // Regression: tracing used to call `search_local` a second time per
        // matching server just to fill the trace event, doubling the
        // compute-time attribution. Exactly one local search per contacted
        // server, traced or not.
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(30))
            .range("x0", 0.0, 1.0)
            .build();
        let before = net.local_search_calls();
        let plain = execute_query(&net, &delays, &q, ServerId(11), SearchScope::full());
        let plain_calls = net.local_search_calls() - before;
        assert!(plain_calls <= plain.servers_contacted as u64);

        let before = net.local_search_calls();
        let (traced_out, trace) =
            execute_query_traced(&net, &delays, &q, ServerId(11), SearchScope::full());
        let traced_calls = net.local_search_calls() - before;
        assert_eq!(traced_out, plain);
        assert_eq!(
            traced_calls, plain_calls,
            "tracing must not add local searches"
        );
        // Every server matches this broad query, so it's exactly one
        // search per contact here.
        assert_eq!(traced_calls, traced_out.servers_contacted as u64);
        let total: usize = trace.iter().map(|e| e.local_matches).sum();
        assert_eq!(total, traced_out.matching_records);
    }

    #[test]
    fn scope_zero_confines_search_to_entry_branch() {
        // Regression: `levels_up = Some(0)` at a leaf used to admit the
        // leaf's own siblings (the raw-depth comparison let targets at the
        // entry's depth through). Zero levels up = the entry's own branch
        // only.
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(31))
            .range("x0", 0.0, 1.0)
            .build();
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let out = execute_query(&net, &delays, &q, leaf, SearchScope::levels(0));
        assert_eq!(
            out.servers_contacted, 1,
            "a leaf with no children reaches only itself at levels(0)"
        );
        assert_eq!(out.matching_servers, vec![leaf]);

        // At an inner server, levels(0) still descends its own branch.
        let root = net.tree().root();
        let inner = *net
            .tree()
            .children(root)
            .iter()
            .find(|&&c| !net.tree().children(c).is_empty())
            .expect("30 servers at degree 3 have inner nodes");
        let out = execute_query(&net, &delays, &q, inner, SearchScope::levels(0));
        let subtree = net.tree().subtree(inner);
        assert_eq!(out.servers_contacted, subtree.len());
        let mut matched = out.matching_servers.clone();
        matched.sort();
        let mut expect = subtree.clone();
        expect.sort();
        assert_eq!(matched, expect);
    }

    #[test]
    fn scope_boundaries_at_root_and_siblings() {
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(32))
            .range("x0", 0.0, 1.0)
            .build();
        // Root entry: no ancestors, no siblings — any scope equals full.
        let root = net.tree().root();
        let full = execute_query(&net, &delays, &q, root, SearchScope::full());
        for levels in [0usize, 1, 5] {
            let scoped = execute_query(&net, &delays, &q, root, SearchScope::levels(levels));
            assert_eq!(scoped, full, "root entry is scope-invariant");
        }

        // levels(1) from a leaf: own siblings (via the parent, one level
        // up) and the parent's local probe are in; the grandparent's level
        // is out. Sibling targets sit at the ancestor's level + 1.
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let parent = net.tree().parent(leaf).unwrap();
        let (out, trace) = execute_query_traced(&net, &delays, &q, leaf, SearchScope::levels(1));
        let entry_fwd: &Vec<ServerId> = &trace[0].forwarded_to;
        for &s in net.tree().children(parent) {
            if s != leaf {
                assert!(
                    entry_fwd.contains(&s),
                    "own sibling {s} is one level up — in scope at levels(1)"
                );
            }
        }
        assert!(
            entry_fwd.contains(&parent),
            "parent probe is one level up — in scope at levels(1)"
        );
        if let Some(gp) = net.tree().parent(parent) {
            assert!(
                !entry_fwd.contains(&gp),
                "grandparent probe is two levels up — out of scope at levels(1)"
            );
            for &u in net.tree().children(gp) {
                if u != parent {
                    assert!(
                        !entry_fwd.contains(&u),
                        "uncle {u} hangs off the grandparent (two levels up) — out of scope"
                    );
                }
            }
        }
        // Scoped recall: everything within the parent's branch is found.
        for s in net.tree().subtree(parent) {
            assert!(out.matching_servers.contains(&s));
        }
    }

    #[test]
    fn no_duplicate_forwarding_across_any_entry_or_scope() {
        // Regression: a server reachable twice within one redirect batch
        // used to be pushed (and billed) twice. Sweep every entry × scope:
        // message count equals distinct contacts, and no server appears in
        // two forwarded_to lists.
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(33))
            .range("x0", 0.0, 1.0)
            .build();
        for start in 0..30u32 {
            for scope in [
                SearchScope::full(),
                SearchScope::levels(0),
                SearchScope::levels(1),
                SearchScope::levels(2),
            ] {
                let (out, trace) = execute_query_traced(&net, &delays, &q, ServerId(start), scope);
                assert_eq!(
                    out.query_messages as usize, out.servers_contacted,
                    "start {start}: one message per contacted server"
                );
                let mut seen: HashSet<ServerId> = HashSet::new();
                for e in &trace {
                    for f in &e.forwarded_to {
                        assert!(seen.insert(*f), "start {start}: {f} forwarded to twice");
                    }
                }
            }
        }
    }

    #[test]
    fn planned_execution_skips_pruned_probes_but_keeps_recall() {
        use crate::planner::plan_query;
        let (net, delays) = network(30, 3);
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let q = point_query(&net, leaf.0 as f64 / 30.0);
        let greedy = execute_query(&net, &delays, &q, leaf, SearchScope::full());
        let plan = plan_query(&net, &q, leaf, SearchScope::full());
        let (planned, trace) =
            execute_query_planned_traced(&net, &delays, &q, leaf, SearchScope::full(), &plan);
        assert_eq!(planned.matching_servers, greedy.matching_servers);
        assert_eq!(planned.matching_records, greedy.matching_records);
        assert!(planned.servers_contacted < greedy.servers_contacted);
        // The trace's entry hop forwards exactly the planned batch.
        assert_eq!(trace[0].forwarded_to.len(), plan.contacts.len());
        assert_eq!(trace.len(), planned.servers_contacted);
    }

    #[test]
    fn latency_reflects_delay_space() {
        let (net, delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(5))
            .range("x0", 0.0, 1.0)
            .build();
        let out = execute_query(&net, &delays, &q, ServerId(0), SearchScope::full());
        // Reaching depth-2 servers takes at least two sequential hops.
        assert!(out.latency_ms > 0.0);
        // And is bounded by (#levels × worst RTT) — a sanity ceiling.
        let (_, _, _, max) = delays.pairwise_stats_ms();
        assert!(out.latency_ms <= (net.tree().levels() * 2) as f64 * max);
    }
}
