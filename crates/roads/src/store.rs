//! Mutable sharded per-server record stores and the record-delta plane.
//!
//! The converged [`RoadsNetwork`](crate::engine::RoadsNetwork) used to be
//! rebuild-only: records were frozen at build time and every change implied
//! a full re-aggregation. This module supplies the mutable half of the
//! update plane:
//!
//! * [`ShardedStore`] — one per server: records partitioned across
//!   [`SHARDS_PER_STORE`] independently locked shards, each maintaining its
//!   own exact [`Summary`]. Readers take per-shard read locks, so searches
//!   proceed concurrently with writes to other shards.
//! * [`RecordDelta`] / [`RecordChange`] — a batch of insert / remove /
//!   update operations routed to attachment points, the unit one
//!   incremental update round applies.
//! * [`DeltaOutcome`] — what a delta touched: the dirty servers, the
//!   ancestor closure whose branch summaries were recomputed, how many
//!   shards had to be re-aggregated from raw records (Bloom filters and
//!   value sets cannot unlearn; saturated histograms dropped increments),
//!   and a summary of the changed records that drives per-subtree result
//!   cache invalidation.
//!
//! Shard summaries are maintained *exactly*: inserts fold in, removals
//! decrement counters where that is exact and otherwise trigger a bounded
//! per-shard rebuild — so merging a store's shard summaries is always
//! byte-identical to `Summary::from_records` over its full record set, and
//! the delta update path provably converges to what a full rebuild produces.

use crate::tree::ServerId;
use roads_records::{Query, Record, RecordId, Schema};
use roads_summary::{Summary, SummaryConfig};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::RwLock;

/// Shards per server store. Eight keeps shards small enough that the
/// bounded rebuild triggered by a categorical removal re-summarizes only a
/// sliver of the server's records, while per-shard write locks still give
/// concurrent writers real parallelism. Fewer, larger shards also keep a
/// batched delta's working set cache-resident: a typical churn round lands
/// several changes per shard, and [`ShardedStore::apply_batch`] applies
/// them back to back against a warm shard.
pub const SHARDS_PER_STORE: usize = 8;

/// Deterministic shard routing: a Murmur-style finalizer over the record
/// id, identical on every platform and thread count.
fn shard_of(id: RecordId, shards: usize) -> usize {
    let mut h = id.0 ^ 0x9e37_79b9_7f4a_7c15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h % shards as u64) as usize
}

/// Hasher for the id → row index. Record ids are plain `u64`s, so one
/// splitmix64 finalizer round replaces SipHash on the delta hot path. The
/// constants deliberately differ from [`shard_of`]'s Murmur finalizer:
/// every id in a shard shares `shard_of(id) % shards`, and reusing the
/// same mix would cluster the map's bucket indices.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-style fallback for non-u64 keys (unused by the index).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = h ^ (h >> 31);
    }
}

type IdMap = HashMap<RecordId, Record, BuildHasherDefault<IdHasher>>;

/// One mutation routed to a server (the record owner's attachment point).
#[derive(Debug, Clone, PartialEq)]
pub enum RecordChange {
    /// Attach a new record.
    Insert(Record),
    /// Detach the record with this id (no-op if absent).
    Remove(RecordId),
    /// Replace the record with the same id (upsert: plain insert if the id
    /// is not attached).
    Update(Record),
}

impl RecordChange {
    /// The record id this change targets.
    pub fn id(&self) -> RecordId {
        match self {
            RecordChange::Insert(r) | RecordChange::Update(r) => r.id,
            RecordChange::Remove(id) => *id,
        }
    }

    /// The record payload entering the store, if any (insert and update
    /// carry one; removal carries only an id).
    pub fn record(&self) -> Option<&Record> {
        match self {
            RecordChange::Insert(r) | RecordChange::Update(r) => Some(r),
            RecordChange::Remove(_) => None,
        }
    }
}

/// A batch of record mutations, each routed to an attachment point — the
/// unit of work one incremental update round
/// ([`crate::updates::update_round_delta`]) applies and propagates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordDelta {
    changes: Vec<(ServerId, RecordChange)>,
}

impl RecordDelta {
    /// An empty delta (applying it dirties nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insert at `server`.
    pub fn insert(&mut self, server: ServerId, record: Record) -> &mut Self {
        self.changes.push((server, RecordChange::Insert(record)));
        self
    }

    /// Queue a removal at `server`.
    pub fn remove(&mut self, server: ServerId, id: RecordId) -> &mut Self {
        self.changes.push((server, RecordChange::Remove(id)));
        self
    }

    /// Queue an update (replace-by-id, upsert) at `server`.
    pub fn update(&mut self, server: ServerId, record: Record) -> &mut Self {
        self.changes.push((server, RecordChange::Update(record)));
        self
    }

    /// The queued changes in application order.
    pub fn changes(&self) -> &[(ServerId, RecordChange)] {
        &self.changes
    }

    /// Number of queued changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when no change is queued.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Effect of applying one [`RecordChange`] to a store.
#[derive(Debug, Clone, Default)]
pub struct ChangeEffect {
    /// The change took effect (false: removal of an absent id).
    pub applied: bool,
    /// A shard summary had to be re-aggregated from its records.
    pub shard_rebuilt: bool,
    /// Records whose values entered or left the store — both sides of an
    /// update. These feed the delta summary used for cache invalidation.
    pub changed: Vec<Record>,
}

/// Effect of applying one batch of changes to a store
/// ([`ShardedStore::apply_batch`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchEffect {
    /// Changes that took effect.
    pub applied: u64,
    /// Changes that matched nothing (removal of an absent id).
    pub rejected: u64,
    /// Shard summaries re-aggregated from raw records.
    pub shard_rebuilds: u64,
}

/// What applying a [`RecordDelta`] to a network touched.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// Servers whose attached records (and local summaries) changed, sorted.
    pub dirty: Vec<ServerId>,
    /// Ancestor closure of `dirty`: every server whose *branch* summary was
    /// recomputed, sorted. This is the set the delta update wave re-sends.
    pub dirty_branches: Vec<ServerId>,
    /// Changes that took effect.
    pub applied: u64,
    /// Changes that matched nothing (removal of an absent id).
    pub rejected: u64,
    /// Shard summaries re-aggregated from raw records because a removal
    /// could not be unlearned exactly (categorical summaries, saturated
    /// histogram counters).
    pub shard_rebuilds: u64,
    /// Summary of every record that entered or left the federation in this
    /// delta. A cached result can only have changed if its query may match
    /// this summary — the key to per-subtree cache invalidation
    /// ([`crate::cache::ResultCache::invalidate_delta`]).
    pub delta_summary: Summary,
}

#[derive(Debug)]
struct Shard {
    /// Records by id. The map *is* the row storage: one probe both finds
    /// a record and yields its slot, so the delta hot path pays a single
    /// scattered cache access per change instead of an index entry plus a
    /// separate row.
    records: IdMap,
    /// Exact summary of `records`, maintained incrementally where possible
    /// and rebuilt from `records` where not.
    summary: Summary,
}

impl Shard {
    fn new(schema: &Schema, config: &SummaryConfig, records: Vec<Record>) -> Self {
        let records: IdMap = records.into_iter().map(|r| (r.id, r)).collect();
        let mut summary = Summary::empty(schema, config);
        for r in records.values() {
            summary.add_record(r);
        }
        Shard { records, summary }
    }

    /// Re-derive the summary from the attached records. Bounded rebuild:
    /// only this shard's records, never the whole server or federation.
    fn rebuild_summary(&mut self, schema: &Schema, config: &SummaryConfig) {
        let mut summary = Summary::empty(schema, config);
        for r in self.records.values() {
            summary.add_record(r);
        }
        self.summary = summary;
    }

    /// Detach by id. Returns the removed record and whether the shard
    /// summary had to be rebuilt from records.
    fn remove(
        &mut self,
        schema: &Schema,
        config: &SummaryConfig,
        id: RecordId,
    ) -> (Option<Record>, bool) {
        let Some(old) = self.records.remove(&id) else {
            return (None, false);
        };
        let mut rebuilt = false;
        if !self.summary.remove_record(&old) {
            self.rebuild_summary(schema, config);
            rebuilt = true;
        }
        (Some(old), rebuilt)
    }

    /// Attach `record`, replacing any attached record with the same id in
    /// place. Returns the displaced record and whether the shard summary
    /// had to be rebuilt.
    fn upsert(
        &mut self,
        schema: &Schema,
        config: &SummaryConfig,
        record: Record,
    ) -> (Option<Record>, bool) {
        if let Some(slot) = self.records.get_mut(&record.id) {
            let old = std::mem::replace(slot, record);
            let mut rebuilt = false;
            if !self.summary.replace_record(&old, slot) {
                // `records` already holds the new value, so the rebuilt
                // summary includes it.
                self.rebuild_summary(schema, config);
                rebuilt = true;
            }
            (Some(old), rebuilt)
        } else {
            self.summary.add_record(&record);
            self.records.insert(record.id, record);
            (None, false)
        }
    }
}

/// Sharded mutable record store of one server: concurrent readers, per-shard
/// write locking, exact per-shard summaries.
#[derive(Debug)]
pub struct ShardedStore {
    schema: Schema,
    config: SummaryConfig,
    shards: Vec<RwLock<Shard>>,
}

impl Clone for ShardedStore {
    fn clone(&self) -> Self {
        ShardedStore {
            schema: self.schema.clone(),
            config: self.config,
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let shard = s.read().expect("shard lock");
                    RwLock::new(Shard {
                        records: shard.records.clone(),
                        summary: shard.summary.clone(),
                    })
                })
                .collect(),
        }
    }
}

impl ShardedStore {
    /// Build a store over `records`, partitioned by record-id hash.
    pub fn new(schema: &Schema, config: &SummaryConfig, records: Vec<Record>) -> Self {
        let mut parts: Vec<Vec<Record>> = (0..SHARDS_PER_STORE).map(|_| Vec::new()).collect();
        for r in records {
            parts[shard_of(r.id, SHARDS_PER_STORE)].push(r);
        }
        ShardedStore {
            schema: schema.clone(),
            config: *config,
            shards: parts
                .into_iter()
                .map(|p| RwLock::new(Shard::new(schema, config, p)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total attached records.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock").records.len())
            .sum()
    }

    /// True when no record is attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every attached record, in shard order.
    pub fn snapshot(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.shards {
            out.extend(s.read().expect("shard lock").records.values().cloned());
        }
        out
    }

    /// Exact search: every attached record matching `query`, cloned out
    /// under per-shard read locks.
    pub fn search(&self, query: &Query) -> Vec<Record> {
        let mut out = Vec::new();
        for s in &self.shards {
            let shard = s.read().expect("shard lock");
            out.extend(shard.records.values().filter(|r| query.matches(r)).cloned());
        }
        out
    }

    /// True when any attached record matches `query` (no materialization).
    pub fn any_match(&self, query: &Query) -> bool {
        self.shards.iter().any(|s| {
            s.read()
                .expect("shard lock")
                .records
                .values()
                .any(|r| query.matches(r))
        })
    }

    /// The server's local summary: merge of the exact shard summaries —
    /// byte-identical to `Summary::from_records` over the full record set,
    /// because shard summaries are kept exact under mutation.
    pub fn local_summary(&self) -> Summary {
        let mut out = Summary::empty(&self.schema, &self.config);
        for s in &self.shards {
            out.merge(&s.read().expect("shard lock").summary)
                .expect("shards share one schema/config");
        }
        out
    }

    /// Apply one change under that record's shard write lock. Safe to call
    /// from multiple threads; changes to different shards do not contend,
    /// and readers of other shards are never blocked.
    pub fn apply(&self, change: &RecordChange) -> ChangeEffect {
        match change {
            RecordChange::Insert(record) | RecordChange::Update(record) => {
                let si = shard_of(record.id, self.shards.len());
                let (old, rebuilt) = self.shards[si].write().expect("shard lock").upsert(
                    &self.schema,
                    &self.config,
                    record.clone(),
                );
                let mut changed: Vec<Record> = old.into_iter().collect();
                changed.push(record.clone());
                ChangeEffect {
                    applied: true,
                    shard_rebuilt: rebuilt,
                    changed,
                }
            }
            RecordChange::Remove(id) => {
                let si = shard_of(*id, self.shards.len());
                let (old, rebuilt) = self.shards[si].write().expect("shard lock").remove(
                    &self.schema,
                    &self.config,
                    *id,
                );
                ChangeEffect {
                    applied: old.is_some(),
                    shard_rebuilt: rebuilt,
                    changed: old.into_iter().collect(),
                }
            }
        }
    }

    /// Apply a batch of changes, grouped by target shard: each shard's
    /// group runs back to back under a single write-lock acquisition, so a
    /// churn round pays one lock round-trip and one cold-cache miss per
    /// *shard* instead of per change. Grouping is stable, and changes to
    /// one id always hash to one shard, so per-id application order is
    /// exactly the slice order — the result is identical to applying each
    /// change through [`ShardedStore::apply`] in turn.
    ///
    /// Every record that entered or left the store (payloads, removals,
    /// and the displaced old side of upserts) is learned into `churn` —
    /// the caller's delta summary — right where its values are cache-hot,
    /// instead of being cloned out and re-walked later.
    pub fn apply_batch(&self, changes: &[&RecordChange], churn: &mut Summary) -> BatchEffect {
        // Whole-batch fast path for the dominant churn shape: every
        // change carries a payload (inserts and updates both upsert by
        // id, so payload-only batches need no per-variant handling).
        if changes.len() >= 2 && changes.iter().all(|c| c.record().is_some()) {
            let recs: Vec<&Record> = changes.iter().filter_map(|c| c.record()).collect();
            return self.update_batch(&recs, churn);
        }

        let shards = self.shards.len();
        let mut keyed: Vec<(u32, u32)> = changes
            .iter()
            .enumerate()
            .map(|(i, c)| (shard_of(c.id(), shards) as u32, i as u32))
            .collect();
        keyed.sort_by_key(|&(s, _)| s); // stable: preserves per-shard order
        let mut out = BatchEffect::default();
        let mut k = 0;
        while k < keyed.len() {
            let si = keyed[k].0;
            let end = k + keyed[k..].iter().take_while(|&&(s, _)| s == si).count();
            let mut shard = self.shards[si as usize].write().expect("shard lock");
            while k < end {
                match changes[keyed[k].1 as usize] {
                    RecordChange::Insert(record) | RecordChange::Update(record) => {
                        let (old, rebuilt) =
                            shard.upsert(&self.schema, &self.config, record.clone());
                        out.applied += 1;
                        if rebuilt {
                            out.shard_rebuilds += 1;
                        }
                        churn.add_record(record);
                        if let Some(old) = old {
                            churn.add_record(&old);
                        }
                    }
                    RecordChange::Remove(id) => {
                        let (old, rebuilt) = shard.remove(&self.schema, &self.config, *id);
                        if rebuilt {
                            out.shard_rebuilds += 1;
                        }
                        match old {
                            Some(old) => {
                                out.applied += 1;
                                churn.add_record(&old);
                            }
                            None => out.rejected += 1,
                        }
                    }
                }
                k += 1;
            }
        }
        out
    }

    /// Batched upserts — the dominant churn shape — phase-split across the
    /// *whole store*. A churn round against a cold store is bound by DRAM
    /// latency, not work: the expensive accesses are the scattered map
    /// probes, so phase 1 runs them as one tight loop of independent
    /// probe-and-swap operations, letting the out-of-order window overlap
    /// many cache misses. Phase 2 then does all summary maintenance
    /// against the small, cache-resident shard summaries. All shard locks
    /// are taken up front in index order (writers taking single shard
    /// locks cannot form a cycle against that).
    ///
    /// Net effect is identical to applying each upsert in turn: swaps run
    /// in slice order, so duplicate ids displace each other correctly,
    /// and a failed in-place summary replace rebuilds that shard's
    /// summary over its *final* rows — rows never change after phase 1 —
    /// after which the shard's remaining summary ops are already
    /// reflected and skip.
    fn update_batch(&self, recs: &[&Record], churn: &mut Summary) -> BatchEffect {
        let shards = self.shards.len();
        let mut guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.write().expect("shard lock"))
            .collect();
        let si: Vec<u32> = recs.iter().map(|r| shard_of(r.id, shards) as u32).collect();

        // Phase 1: probe-and-swap. The map is the row storage, so one
        // scattered access per record both finds and replaces it.
        let mut displaced: Vec<Option<Record>> = Vec::with_capacity(recs.len());
        for (j, r) in recs.iter().enumerate() {
            let map = &mut guards[si[j] as usize].records;
            match map.get_mut(&r.id) {
                Some(slot) => displaced.push(Some(std::mem::replace(slot, (*r).clone()))),
                None => {
                    map.insert(r.id, (*r).clone());
                    displaced.push(None);
                }
            }
        }

        // Phase 2: churn accumulation (both sides of every upsert, while
        // the displaced values are still hot) and shard summary
        // maintenance. The stored clone equals the payload `r`, so the
        // learn side never re-touches the map.
        let mut rebuilt = vec![false; shards];
        let mut rebuilds = 0u64;
        for (j, r) in recs.iter().enumerate() {
            churn.add_record(r);
            if let Some(old) = displaced[j].as_ref() {
                churn.add_record(old);
            }
            let s = si[j] as usize;
            if rebuilt[s] {
                continue;
            }
            let shard = &mut *guards[s];
            match displaced[j].as_ref() {
                None => shard.summary.add_record(r),
                Some(old) => {
                    if !shard.summary.replace_record(old, r) {
                        shard.rebuild_summary(&self.schema, &self.config);
                        rebuilt[s] = true;
                        rebuilds += 1;
                    }
                }
            }
        }

        BatchEffect {
            applied: recs.len() as u64,
            rejected: 0,
            shard_rebuilds: rebuilds,
        }
    }

    /// Re-aggregate every shard summary from raw records (the full,
    /// non-incremental path — what a system without the delta plane must do
    /// every round). Also clears any histogram saturation state.
    pub fn rebuild_summaries(&self) {
        for s in &self.shards {
            s.write()
                .expect("shard lock")
                .rebuild_summary(&self.schema, &self.config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{AttrDef, OwnerId, QueryBuilder, QueryId, RecordBuilder, Value};

    fn schema() -> Schema {
        Schema::unit_numeric(2)
    }

    fn rec(id: u64, a: f64, b: f64) -> Record {
        Record::new_unchecked(
            RecordId(id),
            OwnerId(id as u32),
            vec![Value::Float(a), Value::Float(b)],
        )
    }

    fn store(n: usize) -> ShardedStore {
        let s = schema();
        let cfg = SummaryConfig::with_buckets(64);
        let records = (0..n)
            .map(|i| rec(i as u64, (i % 10) as f64 / 10.0, (i % 7) as f64 / 7.0))
            .collect();
        ShardedStore::new(&s, &cfg, records)
    }

    #[test]
    fn partition_covers_everything_once() {
        let st = store(100);
        assert_eq!(st.len(), 100);
        assert_eq!(st.shard_count(), SHARDS_PER_STORE);
        let mut ids: Vec<u64> = st.snapshot().iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn local_summary_matches_from_records() {
        let st = store(64);
        let direct =
            Summary::from_records(&schema(), &SummaryConfig::with_buckets(64), &st.snapshot());
        assert_eq!(st.local_summary(), direct);
    }

    #[test]
    fn insert_remove_update_round_trip() {
        let st = store(20);
        let cfg = SummaryConfig::with_buckets(64);

        let e = st.apply(&RecordChange::Insert(rec(99, 0.5, 0.5)));
        assert!(e.applied && !e.shard_rebuilt);
        assert_eq!(st.len(), 21);

        let e = st.apply(&RecordChange::Remove(RecordId(99)));
        assert!(e.applied && !e.shard_rebuilt, "numeric removal is exact");
        assert_eq!(e.changed.len(), 1);
        assert_eq!(st.len(), 20);

        let e = st.apply(&RecordChange::Remove(RecordId(99)));
        assert!(!e.applied, "absent id");

        let e = st.apply(&RecordChange::Update(rec(3, 0.95, 0.95)));
        assert!(e.applied);
        assert_eq!(e.changed.len(), 2, "old and new sides of the update");
        assert_eq!(st.len(), 20);

        // After arbitrary churn the summaries still equal a rebuild.
        assert_eq!(
            st.local_summary(),
            Summary::from_records(&schema(), &cfg, &st.snapshot())
        );
    }

    #[test]
    fn update_of_absent_id_upserts() {
        let st = store(4);
        let e = st.apply(&RecordChange::Update(rec(1000, 0.1, 0.1)));
        assert!(e.applied);
        assert_eq!(e.changed.len(), 1, "no old side");
        assert_eq!(st.len(), 5);
    }

    #[test]
    fn categorical_removal_triggers_bounded_shard_rebuild() {
        let s = Schema::new(vec![
            AttrDef::categorical("type"),
            AttrDef::numeric("rate", 0.0, 100.0),
        ])
        .unwrap();
        let cfg = SummaryConfig::with_buckets(32);
        let mk = |id: u64, ty: &str, rate: f64| {
            RecordBuilder::new(&s, RecordId(id), OwnerId(0))
                .set("type", ty)
                .set("rate", rate)
                .build()
                .unwrap()
        };
        let st = ShardedStore::new(
            &s,
            &cfg,
            vec![
                mk(1, "camera", 10.0),
                mk(2, "camera", 20.0),
                mk(3, "drone", 30.0),
            ],
        );
        let e = st.apply(&RecordChange::Remove(RecordId(3)));
        assert!(e.applied);
        assert!(e.shard_rebuilt, "value sets cannot unlearn");
        // The rebuild really unlearned "drone".
        let q = QueryBuilder::new(&s, QueryId(1))
            .eq("type", "drone")
            .build();
        assert!(!st.local_summary().may_match(&q));
        let q = QueryBuilder::new(&s, QueryId(2))
            .eq("type", "camera")
            .build();
        assert!(st.local_summary().may_match(&q));
    }

    #[test]
    fn search_sees_writes_and_runs_under_read_locks() {
        let st = store(50);
        let q = QueryBuilder::new(&schema(), QueryId(1))
            .range("x0", 0.85, 0.95)
            .build();
        let before = st.search(&q).len();
        st.apply(&RecordChange::Insert(rec(500, 0.9, 0.9)));
        assert_eq!(st.search(&q).len(), before + 1);
        assert!(st.any_match(&q));
    }

    #[test]
    fn concurrent_writers_and_readers_converge() {
        use std::sync::Arc;
        let st = Arc::new(store(0));
        let s = schema();
        let cfg = SummaryConfig::with_buckets(64);
        let threads = 8;
        let per = 200;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let st = Arc::clone(&st);
                scope.spawn(move || {
                    for i in 0..per {
                        let id = (t * per + i) as u64;
                        st.apply(&RecordChange::Insert(rec(id, 0.5, 0.5)));
                        if i % 3 == 0 {
                            st.apply(&RecordChange::Remove(RecordId(id)));
                        }
                    }
                });
            }
            // A concurrent reader only ever observes consistent shards.
            let st = Arc::clone(&st);
            scope.spawn(move || {
                for _ in 0..50 {
                    let _ = st.len();
                    let _ = st.local_summary();
                }
            });
        });
        let expected = threads * (0..per).filter(|i| i % 3 != 0).count();
        assert_eq!(st.len(), expected);
        assert_eq!(
            st.local_summary(),
            Summary::from_records(&s, &cfg, &st.snapshot()),
            "post-churn summaries equal a rebuild"
        );
    }

    #[test]
    fn delta_builder_accumulates() {
        let mut d = RecordDelta::new();
        assert!(d.is_empty());
        d.insert(ServerId(1), rec(1, 0.1, 0.1))
            .remove(ServerId(2), RecordId(7))
            .update(ServerId(1), rec(2, 0.2, 0.2));
        assert_eq!(d.len(), 3);
        assert!(matches!(
            d.changes()[1].1,
            RecordChange::Remove(RecordId(7))
        ));
    }
}
