//! Query-load tracking and entry-point selection (§VII future work).
//!
//! The paper closes with: "there are many other issues, such as security,
//! load balancing and churns, that a resource discovery system must
//! address". Churn is handled by [`crate::maintenance`] and soft state;
//! this module addresses load balancing.
//!
//! The replication overlay already removes the *structural* hotspot (the
//! root) by letting queries start anywhere. What remains is *behavioural*
//! load skew: popular entry servers, or servers whose branches match many
//! queries. [`LoadTracker`] measures per-server query load with an
//! exponentially decayed counter, and [`EntryPolicy`] chooses a query's
//! entry server — the client-side knob the overlay makes possible.

use crate::engine::RoadsNetwork;
use crate::queryexec::QueryOutcome;
use crate::tree::ServerId;
use roads_netsim::DelaySpace;

/// Exponentially decayed per-server load counters.
///
/// `record_outcome` charges every server a query touched; `decay` ages all
/// counters (call once per epoch). The decayed counter approximates
/// queries-per-epoch weighted toward the recent past.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    load: Vec<f64>,
    /// Multiplier applied per decay epoch (0 < factor < 1).
    decay_factor: f64,
}

impl LoadTracker {
    /// Tracker for `n` servers with the given per-epoch decay factor.
    pub fn new(n: usize, decay_factor: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decay_factor),
            "decay factor must be in (0, 1)"
        );
        LoadTracker {
            load: vec![0.0; n],
            decay_factor,
        }
    }

    /// Number of tracked servers.
    pub fn len(&self) -> usize {
        self.load.len()
    }

    /// True when tracking no servers.
    pub fn is_empty(&self) -> bool {
        self.load.is_empty()
    }

    /// Charge one unit of load to a server.
    pub fn record(&mut self, s: ServerId) {
        self.load[s.index()] += 1.0;
    }

    /// Charge every server an executed query touched. The entry server is
    /// charged double: it evaluates the full replica set, not just its
    /// children.
    pub fn record_outcome(&mut self, entry: ServerId, outcome: &QueryOutcome) {
        self.load[entry.index()] += 1.0;
        for &s in &outcome.matching_servers {
            self.load[s.index()] += 1.0;
        }
        // Contacted-but-unmatched servers did evaluation work too; the
        // outcome doesn't name them, so charge the average overhead to the
        // entry's branch via a flat count.
        let overhead = outcome
            .servers_contacted
            .saturating_sub(outcome.matching_servers.len()) as f64;
        self.load[entry.index()] += overhead * 0.1;
    }

    /// Age all counters by one epoch.
    pub fn decay(&mut self) {
        for l in &mut self.load {
            *l *= self.decay_factor;
        }
    }

    /// Current load of one server.
    pub fn load(&self, s: ServerId) -> f64 {
        self.load[s.index()]
    }

    /// Server with the highest current load.
    pub fn hottest(&self) -> Option<(ServerId, f64)> {
        self.load
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(i, &l)| (ServerId(i as u32), l))
    }

    /// Ratio of the hottest server's load to the mean (1.0 = perfectly
    /// even). The paper's root-bottleneck problem shows up as a large
    /// imbalance when every query must enter at the root.
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.load.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let mean = total / self.load.len() as f64;
        self.hottest().map_or(1.0, |(_, max)| max / mean)
    }
}

/// How a client picks its query entry server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EntryPolicy {
    /// Always the root — the basic hierarchy without the overlay.
    Root,
    /// The client's own attachment point (the paper's default with the
    /// overlay).
    Attachment,
    /// The attachment point, unless its tracked load exceeds `threshold`
    /// times the mean — then the least-loaded of its siblings.
    LoadAware {
        /// Hot-spot threshold as a multiple of mean load.
        threshold: f64,
    },
    /// The lowest-latency server from the client's position (proximity
    /// routing; ignores load).
    Nearest,
}

/// Choose the entry server for a client attached at `attachment`.
pub fn choose_entry(
    policy: EntryPolicy,
    net: &RoadsNetwork,
    delays: &DelaySpace,
    tracker: &LoadTracker,
    attachment: ServerId,
) -> ServerId {
    match policy {
        EntryPolicy::Root => net.tree().root(),
        EntryPolicy::Attachment => attachment,
        EntryPolicy::Nearest => {
            let from = attachment.index();
            (0..net.len())
                .min_by(|&a, &b| {
                    delays
                        .delay_ms(from, a)
                        .partial_cmp(&delays.delay_ms(from, b))
                        .expect("finite delays")
                })
                .map(|i| ServerId(i as u32))
                .unwrap_or(attachment)
        }
        EntryPolicy::LoadAware { threshold } => {
            let total: f64 = (0..net.len() as u32)
                .map(|i| tracker.load(ServerId(i)))
                .sum();
            let mean = (total / net.len() as f64).max(f64::MIN_POSITIVE);
            if tracker.load(attachment) <= threshold * mean {
                return attachment;
            }
            // Deflect to the least-loaded sibling (same coverage level);
            // fall back to the attachment when it has none.
            net.tree()
                .siblings(attachment)
                .into_iter()
                .min_by(|&a, &b| {
                    tracker
                        .load(a)
                        .partial_cmp(&tracker.load(b))
                        .expect("finite loads")
                })
                .unwrap_or(attachment)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoadsConfig;
    use crate::queryexec::{execute_query, SearchScope};
    use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;

    fn network(n: usize) -> (RoadsNetwork, DelaySpace) {
        let schema = Schema::unit_numeric(1);
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect();
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        };
        (
            RoadsNetwork::build(schema, cfg, records),
            DelaySpace::paper(n, 8),
        )
    }

    #[test]
    fn record_and_decay() {
        let mut t = LoadTracker::new(4, 0.5);
        t.record(ServerId(1));
        t.record(ServerId(1));
        t.record(ServerId(2));
        assert_eq!(t.load(ServerId(1)), 2.0);
        assert_eq!(t.hottest(), Some((ServerId(1), 2.0)));
        t.decay();
        assert_eq!(t.load(ServerId(1)), 1.0);
        assert_eq!(t.load(ServerId(0)), 0.0);
    }

    #[test]
    fn imbalance_detects_hotspots() {
        let mut even = LoadTracker::new(4, 0.9);
        for i in 0..4 {
            even.record(ServerId(i));
        }
        assert!((even.imbalance() - 1.0).abs() < 1e-9);
        let mut skewed = LoadTracker::new(4, 0.9);
        for _ in 0..8 {
            skewed.record(ServerId(0));
        }
        assert!(skewed.imbalance() > 3.0);
    }

    #[test]
    fn root_policy_concentrates_load_overlay_spreads_it() {
        // The §III-C claim, measured: root-entry creates a root hotspot;
        // attachment-entry does not.
        let (net, delays) = network(20);
        let q = |i: u64| {
            QueryBuilder::new(net.schema(), QueryId(i))
                .range(
                    "x0",
                    (i as f64 / 20.0) % 1.0,
                    ((i as f64 + 2.0) / 20.0) % 1.0,
                )
                .build()
        };
        let mut root_tracker = LoadTracker::new(20, 0.9);
        let mut any_tracker = LoadTracker::new(20, 0.9);
        for i in 0..40u64 {
            let attachment = ServerId((i % 20) as u32);
            let root_entry =
                choose_entry(EntryPolicy::Root, &net, &delays, &root_tracker, attachment);
            assert_eq!(root_entry, net.tree().root());
            let out = execute_query(&net, &delays, &q(i), root_entry, SearchScope::full());
            root_tracker.record_outcome(root_entry, &out);

            let any_entry = choose_entry(
                EntryPolicy::Attachment,
                &net,
                &delays,
                &any_tracker,
                attachment,
            );
            let out = execute_query(&net, &delays, &q(i), any_entry, SearchScope::full());
            any_tracker.record_outcome(any_entry, &out);
        }
        assert!(
            root_tracker.load(net.tree().root()) > 2.0 * any_tracker.load(net.tree().root()),
            "root entry must load the root more: {} vs {}",
            root_tracker.load(net.tree().root()),
            any_tracker.load(net.tree().root())
        );
        assert!(root_tracker.imbalance() > any_tracker.imbalance());
    }

    #[test]
    fn load_aware_deflects_hot_attachment() {
        let (net, delays) = network(20);
        let mut tracker = LoadTracker::new(20, 0.9);
        let victim = *net.tree().leaves().first().unwrap();
        for _ in 0..50 {
            tracker.record(victim);
        }
        let chosen = choose_entry(
            EntryPolicy::LoadAware { threshold: 2.0 },
            &net,
            &delays,
            &tracker,
            victim,
        );
        assert_ne!(chosen, victim, "hot attachment must be deflected");
        assert!(net.tree().siblings(victim).contains(&chosen));
        // A cool attachment is kept.
        let cool = *net.tree().leaves().last().unwrap();
        let kept = choose_entry(
            EntryPolicy::LoadAware { threshold: 2.0 },
            &net,
            &delays,
            &tracker,
            cool,
        );
        assert_eq!(kept, cool);
    }

    #[test]
    fn nearest_picks_self_when_colocated() {
        // delay(a, a) = 0, so "nearest" from an attachment is itself.
        let (net, delays) = network(10);
        let t = LoadTracker::new(10, 0.9);
        let chosen = choose_entry(EntryPolicy::Nearest, &net, &delays, &t, ServerId(4));
        assert_eq!(chosen, ServerId(4));
    }
}
