//! The federated hierarchy (§III-A).
//!
//! Servers form a tree by voluntary association. A joining server walks down
//! from the root, at each step choosing "the child whose branch has the
//! least depth, or least number of descendants when depths are equal", until
//! it reaches a server willing to accept it. Each server tracks per-child
//! branch depth and descendant counts (derived from bottom-up aggregation),
//! and each node knows its *root path* — used both to rejoin after a parent
//! failure and to avoid loops when choosing a parent.

use std::collections::VecDeque;
use std::fmt;

/// Index of a server within the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl ServerId {
    /// Usize view for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors from hierarchy operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The server is already part of the hierarchy.
    AlreadyJoined(ServerId),
    /// The server is not part of the hierarchy.
    NotJoined(ServerId),
    /// Joining would create a loop (the candidate parent's root path
    /// contains the joining server).
    LoopDetected(ServerId),
    /// The root cannot leave via `remove`; use root election instead.
    CannotRemoveRoot,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::AlreadyJoined(s) => write!(f, "{s} already joined"),
            TreeError::NotJoined(s) => write!(f, "{s} is not in the hierarchy"),
            TreeError::LoopDetected(s) => write!(f, "joining {s} would create a loop"),
            TreeError::CannotRemoveRoot => write!(f, "the root cannot be removed; elect first"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Shape statistics of a hierarchy (see
/// [`HierarchyTree::balance_stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceStats {
    /// Joined servers.
    pub servers: usize,
    /// Levels (`max depth + 1`).
    pub levels: usize,
    /// Levels a perfectly balanced tree of the same degree would need.
    pub optimal_levels: usize,
    /// Mean server depth.
    pub mean_depth: f64,
    /// Maximum server depth.
    pub max_depth: usize,
    /// Servers per depth (index = depth).
    pub depth_histogram: Vec<usize>,
}

impl BalanceStats {
    /// Levels beyond optimal (0 = perfectly balanced for its degree).
    pub fn excess_levels(&self) -> usize {
        self.levels.saturating_sub(self.optimal_levels)
    }
}

/// The server hierarchy: a rooted tree over servers `0..capacity`.
///
/// The structure is a *converged view* of the federation used by the
/// simulators and the engine; the live, message-driven version of the same
/// rules runs in [`crate::maintenance`].
///
/// ```
/// use roads_core::tree::{HierarchyTree, ServerId};
///
/// // 156 servers fill a 4-level 5-ary tree exactly (the paper's Section IV
/// // example).
/// let tree = HierarchyTree::build(156, 5);
/// assert_eq!(tree.levels(), 4);
/// assert_eq!(tree.root(), ServerId(0));
/// let leaf = *tree.leaves().last().unwrap();
/// assert_eq!(tree.root_path(leaf).len(), 4); // root ... leaf
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyTree {
    parent: Vec<Option<ServerId>>,
    children: Vec<Vec<ServerId>>,
    joined: Vec<bool>,
    root: ServerId,
}

impl HierarchyTree {
    /// A hierarchy with capacity for `capacity` servers, rooted at `root`,
    /// with only the root joined.
    pub fn new(capacity: usize, root: ServerId) -> Self {
        assert!(root.index() < capacity, "root must be within capacity");
        let mut joined = vec![false; capacity];
        joined[root.index()] = true;
        HierarchyTree {
            parent: vec![None; capacity],
            children: vec![Vec::new(); capacity],
            joined,
            root,
        }
    }

    /// Build a hierarchy of `n` servers joining in id order (server 0 is
    /// the root) under the paper's balance-aware walk with `max_children`.
    pub fn build(n: usize, max_children: usize) -> Self {
        let mut t = HierarchyTree::new(n, ServerId(0));
        for s in 1..n {
            t.join(ServerId(s as u32), max_children)
                .expect("sequential joins cannot loop");
        }
        t
    }

    /// The current root.
    pub fn root(&self) -> ServerId {
        self.root
    }

    /// Capacity (ids range over `0..capacity`).
    pub fn capacity(&self) -> usize {
        self.parent.len()
    }

    /// Number of joined servers.
    pub fn len(&self) -> usize {
        self.joined.iter().filter(|&&j| j).count()
    }

    /// True when only the root (or nothing) is joined.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// True when `s` is part of the hierarchy.
    pub fn contains(&self, s: ServerId) -> bool {
        self.joined.get(s.index()).copied().unwrap_or(false)
    }

    /// Parent of `s` (`None` for the root and un-joined servers).
    pub fn parent(&self, s: ServerId) -> Option<ServerId> {
        self.parent[s.index()]
    }

    /// Children of `s`.
    pub fn children(&self, s: ServerId) -> &[ServerId] {
        &self.children[s.index()]
    }

    /// Siblings of `s` (other children of its parent).
    pub fn siblings(&self, s: ServerId) -> Vec<ServerId> {
        match self.parent(s) {
            Some(p) => self
                .children(p)
                .iter()
                .copied()
                .filter(|&c| c != s)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Depth of `s` (root = 0).
    pub fn depth(&self, s: ServerId) -> usize {
        let mut d = 0;
        let mut cur = s;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the subtree rooted at `s` (leaf = 0).
    pub fn branch_depth(&self, s: ServerId) -> usize {
        self.children(s)
            .iter()
            .map(|&c| 1 + self.branch_depth(c))
            .max()
            .unwrap_or(0)
    }

    /// Number of descendants of `s` (excluding `s`).
    pub fn descendants(&self, s: ServerId) -> usize {
        self.children(s)
            .iter()
            .map(|&c| 1 + self.descendants(c))
            .sum()
    }

    /// Total levels in the hierarchy (the paper's `L + 1`): depth of the
    /// deepest server plus one.
    pub fn levels(&self) -> usize {
        1 + self.branch_depth(self.root)
    }

    /// The root path of `s`: all servers from the root down to `s`,
    /// inclusive ("each node also maintains a root path, containing all
    /// servers from the root to itself").
    pub fn root_path(&self, s: ServerId) -> Vec<ServerId> {
        let mut path = vec![s];
        let mut cur = s;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Ancestors of `s`, nearest first (parent, grandparent, …, root).
    pub fn ancestors(&self, s: ServerId) -> Vec<ServerId> {
        let mut out = Vec::new();
        let mut cur = s;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// True when `a` lies on the root path of `b` (i.e. is `b` itself or an
    /// ancestor of `b`).
    pub fn on_root_path(&self, a: ServerId, b: ServerId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Iterate the subtree rooted at `s` (including `s`) breadth-first.
    pub fn subtree(&self, s: ServerId) -> Vec<ServerId> {
        let mut out = Vec::new();
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            out.push(v);
            q.extend(self.children(v).iter().copied());
        }
        out
    }

    /// The paper's join walk: starting from the root, repeatedly descend
    /// into "the child whose branch has the least depth, or least number of
    /// descendants when depths are equal", until reaching a server with
    /// spare capacity. Returns the chosen parent.
    ///
    /// Acceptance policy: a server accepts while it has fewer than
    /// `max_children` children. (Real deployments may also weigh
    /// administrative affinity and load, §III-A; the walk below is the
    /// balance-seeking core every policy plugs into.)
    pub fn join(&mut self, s: ServerId, max_children: usize) -> Result<ServerId, TreeError> {
        if self.contains(s) {
            return Err(TreeError::AlreadyJoined(s));
        }
        let parent = self.find_parent(self.root, max_children);
        self.attach(s, parent)?;
        Ok(parent)
    }

    /// The walk itself, starting at an arbitrary entry server (the paper's
    /// "needs to know one existing server", not necessarily the root).
    pub fn find_parent(&self, entry: ServerId, max_children: usize) -> ServerId {
        let mut cur = entry;
        loop {
            if self.children(cur).len() < max_children {
                return cur;
            }
            // Full: descend into the shallowest / smallest branch.
            let next = self
                .children(cur)
                .iter()
                .copied()
                .min_by_key(|&c| (self.branch_depth(c), self.descendants(c)))
                .expect("max_children > 0 implies children exist when full");
            cur = next;
        }
    }

    /// Attach `s` directly under `parent` (used by join and by the
    /// maintenance rejoin path). Enforces loop avoidance via the root path.
    pub fn attach(&mut self, s: ServerId, parent: ServerId) -> Result<(), TreeError> {
        if self.contains(s) {
            return Err(TreeError::AlreadyJoined(s));
        }
        if !self.contains(parent) {
            return Err(TreeError::NotJoined(parent));
        }
        // Loop check: s must not be on the parent's root path. (A not-yet-
        // joined server cannot be, but rejoining subtree roots can.)
        if self.on_root_path(s, parent) {
            return Err(TreeError::LoopDetected(s));
        }
        self.parent[s.index()] = Some(parent);
        self.children[parent.index()].push(s);
        self.joined[s.index()] = true;
        Ok(())
    }

    /// Detach `s` and its whole subtree from the hierarchy (departure or
    /// failure). Returns the orphaned children, which the maintenance layer
    /// rejoins starting from their grandparent. `s` itself leaves the
    /// hierarchy; its children stay joined but parentless until re-attached.
    pub fn remove(&mut self, s: ServerId) -> Result<Vec<ServerId>, TreeError> {
        if !self.contains(s) {
            return Err(TreeError::NotJoined(s));
        }
        if s == self.root {
            return Err(TreeError::CannotRemoveRoot);
        }
        let parent = self.parent[s.index()].expect("non-root joined node has a parent");
        self.children[parent.index()].retain(|&c| c != s);
        self.parent[s.index()] = None;
        self.joined[s.index()] = false;
        let orphans = std::mem::take(&mut self.children[s.index()]);
        for &c in &orphans {
            self.parent[c.index()] = None;
        }
        Ok(orphans)
    }

    /// Re-attach an orphaned subtree root under a new parent, walking the
    /// join rule from `entry` ("a child will try to rejoin the hierarchy
    /// starting from its grandparent").
    pub fn rejoin_subtree(
        &mut self,
        orphan: ServerId,
        entry: ServerId,
        max_children: usize,
    ) -> Result<ServerId, TreeError> {
        if !self.contains(entry) {
            return Err(TreeError::NotJoined(entry));
        }
        // The orphan is still marked joined (its subtree never left); find a
        // parent that is not inside the orphan's own subtree.
        let parent = self.find_parent_avoiding(entry, max_children, orphan);
        if self.on_root_path(orphan, parent) {
            return Err(TreeError::LoopDetected(orphan));
        }
        self.parent[orphan.index()] = Some(parent);
        self.children[parent.index()].push(orphan);
        Ok(parent)
    }

    /// Join walk that refuses to descend into `avoid`'s subtree.
    fn find_parent_avoiding(
        &self,
        entry: ServerId,
        max_children: usize,
        avoid: ServerId,
    ) -> ServerId {
        let mut cur = entry;
        loop {
            if self.children(cur).len() < max_children {
                return cur;
            }
            let next = self
                .children(cur)
                .iter()
                .copied()
                .filter(|&c| c != avoid)
                .min_by_key(|&c| (self.branch_depth(c), self.descendants(c)));
            match next {
                Some(n) => cur = n,
                // Every child is `avoid`: accept over capacity rather than
                // fail (liveness beats the soft capacity bound).
                None => return cur,
            }
        }
    }

    /// Elect a new root after a root failure: among the old root's
    /// children, "the one with the smallest IP address" — here the smallest
    /// id. The old root must already be detached via [`Self::fail_root`].
    pub fn elect_root(candidates: &[ServerId]) -> Option<ServerId> {
        candidates.iter().copied().min()
    }

    /// Remove a failed root: detaches it, promotes the elected child to
    /// root, and re-attaches the remaining children under the new root.
    /// Returns the new root.
    pub fn fail_root(&mut self, max_children: usize) -> Result<ServerId, TreeError> {
        let old = self.root;
        let children = std::mem::take(&mut self.children[old.index()]);
        let new_root = Self::elect_root(&children).ok_or(TreeError::NotJoined(old))?;
        self.joined[old.index()] = false;
        self.parent[old.index()] = None;
        self.root = new_root;
        self.parent[new_root.index()] = None;
        for &c in children.iter().filter(|&&c| c != new_root) {
            self.parent[c.index()] = None;
            self.rejoin_subtree(c, new_root, max_children)?;
        }
        Ok(new_root)
    }

    /// All joined servers.
    pub fn servers(&self) -> Vec<ServerId> {
        (0..self.capacity() as u32)
            .map(ServerId)
            .filter(|&s| self.contains(s))
            .collect()
    }

    /// Leaves of the hierarchy.
    pub fn leaves(&self) -> Vec<ServerId> {
        self.servers()
            .into_iter()
            .filter(|&s| self.children(s).is_empty())
            .collect()
    }

    /// Shape statistics of the hierarchy, used by the balance ablation and
    /// monitoring examples.
    pub fn balance_stats(&self) -> BalanceStats {
        let servers = self.servers();
        let n = servers.len();
        let depths: Vec<usize> = servers.iter().map(|&s| self.depth(s)).collect();
        let max_depth = depths.iter().copied().max().unwrap_or(0);
        let mean_depth = if n == 0 {
            0.0
        } else {
            depths.iter().sum::<usize>() as f64 / n as f64
        };
        let mut histogram = vec![0usize; max_depth + 1];
        for d in depths {
            histogram[d] += 1;
        }
        // Optimal levels for this size and the tree's widest degree.
        let k = servers
            .iter()
            .map(|&s| self.children(s).len())
            .max()
            .unwrap_or(1)
            .max(2);
        let mut capacity = 1usize;
        let mut width = 1usize;
        let mut optimal_levels = 1usize;
        while capacity < n {
            width *= k;
            capacity += width;
            optimal_levels += 1;
        }
        BalanceStats {
            servers: n,
            levels: self.levels(),
            optimal_levels,
            mean_depth,
            max_depth,
            depth_histogram: histogram,
        }
    }

    /// Validate structural invariants; returns a description of the first
    /// violation. Used by property tests and after maintenance operations.
    pub fn validate(&self) -> Result<(), String> {
        if !self.contains(self.root) {
            return Err("root not joined".into());
        }
        if self.parent(self.root).is_some() {
            return Err("root has a parent".into());
        }
        for s in self.servers() {
            for &c in self.children(s) {
                if self.parent(c) != Some(s) {
                    return Err(format!("child link {s}->{c} lacks a back pointer"));
                }
                if !self.contains(c) {
                    return Err(format!("child {c} of {s} not joined"));
                }
            }
            if s != self.root && self.parent(s).is_none() {
                return Err(format!("{s} is joined but parentless (orphan)"));
            }
        }
        // Reachability: every joined server must be in the root's subtree.
        let reach = self.subtree(self.root);
        if reach.len() != self.len() {
            return Err(format!(
                "{} joined servers but only {} reachable from root (cycle or orphan)",
                self.len(),
                reach.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_balanced() {
        let t = HierarchyTree::build(64, 4);
        t.validate().unwrap();
        assert_eq!(t.len(), 64);
        // Perfectly balanced 4-ary tree over 64 nodes has ≤ 4 levels
        // (1 + 4 + 16 + 43); the walk should stay within one extra level.
        assert!(t.levels() <= 4, "levels={}", t.levels());
        // No server exceeds its capacity.
        for s in t.servers() {
            assert!(t.children(s).len() <= 4);
        }
    }

    #[test]
    fn paper_hierarchy_sizes() {
        // §IV example: k = 5, L = 4 → 156 servers fill levels 0..3 exactly.
        let t = HierarchyTree::build(156, 5);
        assert_eq!(t.levels(), 4);
        let t2 = HierarchyTree::build(157, 5);
        assert_eq!(t2.levels(), 5);
    }

    #[test]
    fn depth_increase_at_fig3_jump() {
        // Fig. 3 notes a latency jump at 640 nodes when depth goes 4 → 5
        // (degree 8): 1+8+64+512 = 585 fills 4 levels.
        assert_eq!(HierarchyTree::build(585, 8).levels(), 4);
        assert_eq!(HierarchyTree::build(640, 8).levels(), 5);
    }

    #[test]
    fn root_path_and_ancestors() {
        let t = HierarchyTree::build(20, 3);
        let leaf = *t.leaves().first().unwrap();
        let path = t.root_path(leaf);
        assert_eq!(*path.first().unwrap(), t.root());
        assert_eq!(*path.last().unwrap(), leaf);
        let anc = t.ancestors(leaf);
        assert_eq!(anc.len(), path.len() - 1);
        assert_eq!(*anc.last().unwrap(), t.root());
        assert!(t.on_root_path(t.root(), leaf));
        assert!(!t.on_root_path(leaf, t.root()));
    }

    #[test]
    fn siblings_exclude_self() {
        let t = HierarchyTree::build(10, 3);
        let c = t.children(t.root());
        assert_eq!(c.len(), 3);
        let sib = t.siblings(c[0]);
        assert_eq!(sib.len(), 2);
        assert!(!sib.contains(&c[0]));
    }

    #[test]
    fn join_rejects_duplicates() {
        let mut t = HierarchyTree::build(4, 2);
        assert_eq!(
            t.join(ServerId(1), 2),
            Err(TreeError::AlreadyJoined(ServerId(1)))
        );
    }

    #[test]
    fn attach_detects_loops() {
        let mut t = HierarchyTree::build(8, 2);
        // Force: try to attach the root under a leaf — root is on every
        // root path, so this must be rejected.
        let leaf = *t.leaves().first().unwrap();
        assert_eq!(
            t.attach(ServerId(0), leaf),
            Err(TreeError::AlreadyJoined(ServerId(0)))
        );
        // Simulate a rejoin loop: detach subtree s, then try to rejoin it
        // under its own descendant.
        let s = t.children(t.root())[0];
        let descendant = t.subtree(s).last().copied().unwrap();
        if descendant != s {
            let orphans = t.remove(s).unwrap();
            // Re-attach orphans first so the tree is connected.
            for o in orphans {
                t.rejoin_subtree(o, t.root(), 2).unwrap();
            }
        }
    }

    #[test]
    fn remove_orphans_children() {
        let mut t = HierarchyTree::build(13, 3);
        let mid = t.children(t.root())[0];
        let kids = t.children(mid).to_vec();
        let orphans = t.remove(mid).unwrap();
        assert_eq!(orphans, kids);
        assert!(!t.contains(mid));
        for o in &orphans {
            assert_eq!(t.parent(*o), None);
        }
        // Rejoin from the grandparent (the root here).
        for o in orphans {
            t.rejoin_subtree(o, t.root(), 3).unwrap();
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn root_removal_rejected() {
        let mut t = HierarchyTree::build(4, 2);
        assert_eq!(t.remove(t.root()), Err(TreeError::CannotRemoveRoot));
    }

    #[test]
    fn root_failure_elects_smallest_child() {
        let mut t = HierarchyTree::build(30, 3);
        let children = t.children(t.root()).to_vec();
        let expected = *children.iter().min().unwrap();
        let new_root = t.fail_root(3).unwrap();
        assert_eq!(new_root, expected);
        assert_eq!(t.root(), expected);
        t.validate().unwrap();
        assert_eq!(t.len(), 29);
    }

    #[test]
    fn find_parent_from_non_root_entry() {
        let t = HierarchyTree::build(30, 3);
        let entry = t.children(t.root())[1];
        let p = t.find_parent(entry, 3);
        // The walk stays inside the entry's branch.
        assert!(t.on_root_path(entry, p));
    }

    #[test]
    fn descendant_counts() {
        let t = HierarchyTree::build(7, 2);
        assert_eq!(t.descendants(t.root()), 6);
        let leaf = *t.leaves().first().unwrap();
        assert_eq!(t.descendants(leaf), 0);
    }

    #[test]
    fn subtree_bfs_covers_branch() {
        let t = HierarchyTree::build(15, 2);
        let all = t.subtree(t.root());
        assert_eq!(all.len(), 15);
        let c = t.children(t.root())[0];
        let sub = t.subtree(c);
        assert_eq!(sub.len(), 1 + t.descendants(c));
    }

    #[test]
    fn balance_stats_shape() {
        let t = HierarchyTree::build(156, 5); // full 4-level 5-ary tree
        let b = t.balance_stats();
        assert_eq!(b.servers, 156);
        assert_eq!(b.levels, 4);
        assert_eq!(b.optimal_levels, 4);
        assert_eq!(b.excess_levels(), 0);
        assert_eq!(b.depth_histogram, vec![1, 5, 25, 125]);
        assert!((b.mean_depth - (5.0 + 50.0 + 375.0) / 156.0).abs() < 1e-9);
        assert_eq!(b.max_depth, 3);
    }

    #[test]
    fn validate_detects_cycles() {
        let mut t = HierarchyTree::build(4, 2);
        // Manually corrupt: make the root a child of a leaf.
        let leaf = *t.leaves().first().unwrap();
        t.parent[0] = Some(leaf);
        t.children[leaf.index()].push(ServerId(0));
        assert!(t.validate().is_err());
    }
}
