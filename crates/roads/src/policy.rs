//! Voluntary-sharing policies (§II).
//!
//! "A participant's willingness to share resources by no means implies
//! surrendering the control over its resources. … based on who is
//! requesting resources, it may decide which types of resources will be
//! provided, thus presenting different 'views' to different parties. …
//! \[owners\] want to retain the final control over which resource records
//! are returned for a given query. For example, a company may provide more
//! resources to a business partner than arbitrary third parties."
//!
//! ROADS enables this structurally — only summaries leave the owner, and
//! the owner's server performs the final record search — and this module
//! supplies the decision point itself: a [`SharingPolicy`] is consulted for
//! every matching record before it is returned, and may disclose it fully,
//! redact attributes, or withhold it.

use roads_records::{AttrId, Record, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identity of a requesting party, as established by the (assumed, §II)
/// authentication layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequesterId(pub u32);

impl fmt::Display for RequesterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Trust class an owner assigns to a requester. Ordered: a higher class
/// sees at least what a lower one sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrustClass {
    /// Unauthenticated or unknown parties.
    Public,
    /// Members of the federation in good standing.
    Member,
    /// Business partners of this particular owner.
    Partner,
    /// The owner itself (full visibility).
    Owner,
}

/// The owner's decision for one matching record.
#[derive(Debug, Clone, PartialEq)]
pub enum Disclosure {
    /// Return the record unchanged.
    Full,
    /// Return the record with the listed attributes replaced by an opaque
    /// marker.
    Redacted(Vec<AttrId>),
    /// Do not return the record at all. The requester learns nothing — not
    /// even that a match existed.
    Withhold,
}

/// An owner's sharing policy: classifies requesters and decides disclosure
/// per matching record.
///
/// Policies run at the owner's attachment point only; ROADS never needs
/// them during summary aggregation or query forwarding, which is what lets
/// owners change policy without touching the rest of the federation.
pub trait SharingPolicy: Send + Sync {
    /// Trust class of a requester from this owner's point of view.
    fn classify(&self, requester: RequesterId) -> TrustClass;

    /// Disclosure decision for one record matching the query.
    fn disclose(&self, class: TrustClass, record: &Record) -> Disclosure;
}

/// Apply a policy to a matching record set, producing what the requester
/// actually receives.
pub fn apply_policy<'a>(
    policy: &dyn SharingPolicy,
    requester: RequesterId,
    matches: impl IntoIterator<Item = &'a Record>,
) -> Vec<Record> {
    let class = policy.classify(requester);
    matches
        .into_iter()
        .filter_map(|r| match policy.disclose(class, r) {
            Disclosure::Full => Some(r.clone()),
            Disclosure::Redacted(attrs) => Some(redact(r, &attrs)),
            Disclosure::Withhold => None,
        })
        .collect()
}

/// Replace the listed attributes with an opaque marker. Numeric attributes
/// become NaN, categorical/text become `"<redacted>"` — both chosen so a
/// redacted value never accidentally satisfies a later predicate.
pub fn redact(record: &Record, attrs: &[AttrId]) -> Record {
    let hide: HashSet<usize> = attrs.iter().map(|a| a.index()).collect();
    let values = record
        .values()
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if !hide.contains(&i) {
                return v.clone();
            }
            match v {
                Value::Float(_) => Value::Float(f64::NAN),
                Value::Int(_) => Value::Int(i64::MIN),
                Value::Timestamp(_) => Value::Timestamp(i64::MIN),
                Value::Text(_) => Value::Text("<redacted>".into()),
                Value::Cat(_) => Value::Cat("<redacted>".into()),
            }
        })
        .collect();
    Record::new_unchecked(record.id, record.owner, values)
}

/// Share everything with everyone — the degenerate policy the DHT baseline
/// forces on every participant.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenPolicy;

impl SharingPolicy for OpenPolicy {
    fn classify(&self, _requester: RequesterId) -> TrustClass {
        TrustClass::Partner
    }
    fn disclose(&self, _class: TrustClass, _record: &Record) -> Disclosure {
        Disclosure::Full
    }
}

/// The paper's motivating policy shape: partners see more than members,
/// members more than the public.
///
/// Each record carries a sensitivity *tier* derived by a configurable
/// attribute (e.g. a categorical `"tier"` column); requesters are placed
/// in classes by explicit allowlists. Disclosure:
///
/// | record tier ↓ / class → | Public | Member | Partner/Owner |
/// |---|---|---|---|
/// | public | full | full | full |
/// | member | withhold | full | full |
/// | partner | withhold | redacted | full |
#[derive(Debug, Clone)]
pub struct TieredPolicy {
    /// Requesters classified as partners.
    partners: HashSet<RequesterId>,
    /// Requesters classified as members.
    members: HashSet<RequesterId>,
    /// Attribute holding each record's sensitivity tier
    /// (`"public" | "member" | "partner"`); `None` treats all records as
    /// `member`-tier.
    tier_attr: Option<AttrId>,
    /// Attributes hidden when a record is returned redacted.
    sensitive_attrs: Vec<AttrId>,
}

/// Record sensitivity tiers understood by [`TieredPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Anyone may see the record.
    Public,
    /// Federation members may see the record.
    Member,
    /// Only partners (and the owner) may see the record un-redacted.
    Partner,
}

impl TieredPolicy {
    /// A policy with explicit partner/member allowlists.
    pub fn new(
        partners: impl IntoIterator<Item = RequesterId>,
        members: impl IntoIterator<Item = RequesterId>,
    ) -> Self {
        TieredPolicy {
            partners: partners.into_iter().collect(),
            members: members.into_iter().collect(),
            tier_attr: None,
            sensitive_attrs: Vec::new(),
        }
    }

    /// Derive each record's tier from a categorical attribute.
    pub fn with_tier_attr(mut self, attr: AttrId) -> Self {
        self.tier_attr = Some(attr);
        self
    }

    /// Attributes to hide in redacted disclosures.
    pub fn with_sensitive_attrs(mut self, attrs: Vec<AttrId>) -> Self {
        self.sensitive_attrs = attrs;
        self
    }

    fn tier_of(&self, record: &Record) -> Tier {
        let Some(attr) = self.tier_attr else {
            return Tier::Member;
        };
        match record.get(attr).as_str() {
            Some("public") => Tier::Public,
            Some("partner") => Tier::Partner,
            _ => Tier::Member,
        }
    }
}

impl SharingPolicy for TieredPolicy {
    fn classify(&self, requester: RequesterId) -> TrustClass {
        if self.partners.contains(&requester) {
            TrustClass::Partner
        } else if self.members.contains(&requester) {
            TrustClass::Member
        } else {
            TrustClass::Public
        }
    }

    fn disclose(&self, class: TrustClass, record: &Record) -> Disclosure {
        let tier = self.tier_of(record);
        match (tier, class) {
            (Tier::Public, _) => Disclosure::Full,
            (Tier::Member, TrustClass::Public) => Disclosure::Withhold,
            (Tier::Member, _) => Disclosure::Full,
            (Tier::Partner, TrustClass::Partner | TrustClass::Owner) => Disclosure::Full,
            (Tier::Partner, TrustClass::Member) => {
                Disclosure::Redacted(self.sensitive_attrs.clone())
            }
            (Tier::Partner, TrustClass::Public) => Disclosure::Withhold,
        }
    }
}

/// Per-requester rate/visibility quotas layered on another policy: at most
/// `max_records` records are disclosed per query to any requester below
/// `exempt_class`.
#[derive(Debug, Clone)]
pub struct QuotaPolicy<P> {
    inner: P,
    /// Maximum records disclosed per query.
    pub max_records: usize,
    /// Classes at or above this are not limited.
    pub exempt_class: TrustClass,
}

impl<P: SharingPolicy> QuotaPolicy<P> {
    /// Wrap `inner` with a per-query disclosure quota.
    pub fn new(inner: P, max_records: usize, exempt_class: TrustClass) -> Self {
        QuotaPolicy {
            inner,
            max_records,
            exempt_class,
        }
    }

    /// Apply the quota-aware policy to a match set.
    pub fn apply<'a>(
        &self,
        requester: RequesterId,
        matches: impl IntoIterator<Item = &'a Record>,
    ) -> Vec<Record> {
        let class = self.inner.classify(requester);
        let disclosed = apply_policy(&self.inner, requester, matches);
        if class >= self.exempt_class {
            disclosed
        } else {
            disclosed.into_iter().take(self.max_records).collect()
        }
    }
}

impl<P: SharingPolicy> SharingPolicy for QuotaPolicy<P> {
    fn classify(&self, requester: RequesterId) -> TrustClass {
        self.inner.classify(requester)
    }
    fn disclose(&self, class: TrustClass, record: &Record) -> Disclosure {
        self.inner.disclose(class, record)
    }
}

/// Audit log of disclosure decisions, for owners who want to review what
/// left their premises.
#[derive(Debug, Default, Clone)]
pub struct DisclosureAudit {
    entries: Vec<AuditEntry>,
}

/// One audited decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEntry {
    /// Who asked.
    pub requester: RequesterId,
    /// Their trust class at decision time.
    pub class: TrustClass,
    /// The record decided on.
    pub record: roads_records::RecordId,
    /// What was decided.
    pub decision: DecisionKind,
}

/// Disclosure decision category (audit view of [`Disclosure`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Returned in full.
    Full,
    /// Returned redacted.
    Redacted,
    /// Withheld.
    Withheld,
}

impl DisclosureAudit {
    /// Empty audit log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a policy while recording every decision.
    pub fn apply_audited<'a>(
        &mut self,
        policy: &dyn SharingPolicy,
        requester: RequesterId,
        matches: impl IntoIterator<Item = &'a Record>,
    ) -> Vec<Record> {
        let class = policy.classify(requester);
        let mut out = Vec::new();
        for r in matches {
            let decision = policy.disclose(class, r);
            let kind = match &decision {
                Disclosure::Full => DecisionKind::Full,
                Disclosure::Redacted(_) => DecisionKind::Redacted,
                Disclosure::Withhold => DecisionKind::Withheld,
            };
            self.entries.push(AuditEntry {
                requester,
                class,
                record: r.id,
                decision: kind,
            });
            match decision {
                Disclosure::Full => out.push(r.clone()),
                Disclosure::Redacted(attrs) => out.push(redact(r, &attrs)),
                Disclosure::Withhold => {}
            }
        }
        out
    }

    /// All recorded decisions.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Count of decisions of a kind.
    pub fn count(&self, kind: DecisionKind) -> usize {
        self.entries.iter().filter(|e| e.decision == kind).count()
    }

    /// Decisions grouped by requester.
    pub fn by_requester(&self) -> HashMap<RequesterId, usize> {
        let mut m = HashMap::new();
        for e in &self.entries {
            *m.entry(e.requester).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{AttrDef, OwnerId, RecordBuilder, RecordId, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            AttrDef::categorical("tier"),
            AttrDef::categorical("kind"),
            AttrDef::numeric("capacity", 0.0, 100.0),
        ])
        .unwrap()
    }

    fn record(s: &Schema, id: u64, tier: &str, cap: f64) -> Record {
        RecordBuilder::new(s, RecordId(id), OwnerId(1))
            .set("tier", tier)
            .set("kind", "gpu")
            .set("capacity", cap)
            .build()
            .unwrap()
    }

    fn policy(s: &Schema) -> TieredPolicy {
        TieredPolicy::new([RequesterId(1)], [RequesterId(2)])
            .with_tier_attr(s.id("tier").unwrap())
            .with_sensitive_attrs(vec![s.id("capacity").unwrap()])
    }

    #[test]
    fn partner_sees_everything() {
        let s = schema();
        let records = vec![
            record(&s, 1, "public", 10.0),
            record(&s, 2, "member", 20.0),
            record(&s, 3, "partner", 30.0),
        ];
        let got = apply_policy(&policy(&s), RequesterId(1), &records);
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].get_f64(s.id("capacity").unwrap()), Some(30.0));
    }

    #[test]
    fn member_gets_partner_records_redacted() {
        let s = schema();
        let records = vec![record(&s, 3, "partner", 30.0)];
        let got = apply_policy(&policy(&s), RequesterId(2), &records);
        assert_eq!(got.len(), 1);
        // Capacity redacted to NaN.
        assert!(got[0]
            .get_f64(s.id("capacity").unwrap())
            .expect("still numeric")
            .is_nan());
        // Non-sensitive attributes survive.
        assert_eq!(got[0].get(s.id("kind").unwrap()).as_str(), Some("gpu"));
    }

    #[test]
    fn public_is_walled_off_from_non_public_tiers() {
        let s = schema();
        let records = vec![
            record(&s, 1, "public", 10.0),
            record(&s, 2, "member", 20.0),
            record(&s, 3, "partner", 30.0),
        ];
        let got = apply_policy(&policy(&s), RequesterId(99), &records);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, RecordId(1));
    }

    #[test]
    fn open_policy_shares_all() {
        let s = schema();
        let records = vec![record(&s, 1, "partner", 1.0)];
        let got = apply_policy(&OpenPolicy, RequesterId(1234), &records);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn redacted_values_never_match_predicates() {
        let s = schema();
        let r = redact(
            &record(&s, 1, "partner", 50.0),
            &[s.id("capacity").unwrap()],
        );
        let q = roads_records::QueryBuilder::new(&s, roads_records::QueryId(0))
            .range("capacity", 0.0, 100.0)
            .build();
        assert!(!q.matches(&r), "NaN must fail every range predicate");
    }

    #[test]
    fn quota_limits_low_trust_requesters() {
        let s = schema();
        let records: Vec<Record> = (0..10).map(|i| record(&s, i, "public", i as f64)).collect();
        let p = QuotaPolicy::new(policy(&s), 3, TrustClass::Partner);
        assert_eq!(p.apply(RequesterId(99), &records).len(), 3, "public capped");
        assert_eq!(p.apply(RequesterId(2), &records).len(), 3, "member capped");
        assert_eq!(
            p.apply(RequesterId(1), &records).len(),
            10,
            "partner exempt"
        );
    }

    #[test]
    fn trust_classes_ordered() {
        assert!(TrustClass::Owner > TrustClass::Partner);
        assert!(TrustClass::Partner > TrustClass::Member);
        assert!(TrustClass::Member > TrustClass::Public);
    }

    #[test]
    fn audit_records_every_decision() {
        let s = schema();
        let records = vec![
            record(&s, 1, "public", 10.0),
            record(&s, 2, "member", 20.0),
            record(&s, 3, "partner", 30.0),
        ];
        let mut audit = DisclosureAudit::new();
        let p = policy(&s);
        let member_view = audit.apply_audited(&p, RequesterId(2), &records);
        let public_view = audit.apply_audited(&p, RequesterId(99), &records);
        assert_eq!(member_view.len(), 3); // full, full, redacted
        assert_eq!(public_view.len(), 1);
        assert_eq!(audit.entries().len(), 6);
        assert_eq!(audit.count(DecisionKind::Withheld), 2);
        assert_eq!(audit.count(DecisionKind::Redacted), 1);
        assert_eq!(audit.by_requester()[&RequesterId(2)], 3);
    }

    #[test]
    fn default_tier_is_member_without_tier_attr() {
        let s = schema();
        let p = TieredPolicy::new([RequesterId(1)], [RequesterId(2)]);
        let r = record(&s, 1, "partner", 5.0); // tier attr ignored
        assert_eq!(
            p.disclose(TrustClass::Public, &r),
            Disclosure::Withhold,
            "member-tier records are hidden from the public"
        );
        assert_eq!(p.disclose(TrustClass::Member, &r), Disclosure::Full);
    }
}
