//! Ground-truth auditing of the replication overlay.
//!
//! The converged [`RoadsNetwork`] stores exactly one branch summary per
//! server and lets every overlay holder *view* it, so by construction it
//! can never show a stale replica. Real deployments are not so lucky:
//! replica copies are pushed once per update round and then age until the
//! next push, while the underlying branches keep changing (records appear,
//! servers die and restart). This module materializes that gap as an
//! epoch-stamped [`ReplicaLedger`] — a physical copy of every overlay
//! entry, refreshed only on demand — and audits it against ground truth:
//!
//! * **staleness age** — update rounds since an entry was last refreshed;
//! * **divergence** — the fraction of overlay entries whose copy no longer
//!   equals the authoritative branch summary ([`authoritative_branch`]),
//!   with per-attribute drift from [`SummaryFidelity`];
//! * **ground-truth probes** ([`audit_probe`]) — evaluate real queries
//!   against each replica copy and against the live records it vouches
//!   for, tallying false positives (a stale copy still matches records
//!   that died with their server) and false negatives (a copy taken while
//!   a server was down misses its restored records) per tree level.
//!
//! The runtime crate's background `Auditor` drives these functions on a
//! sampling budget and exports the results through OpenMetrics and
//! `AUDIT.json`.

use crate::engine::RoadsNetwork;
use crate::overlay::ReplicaRole;
use crate::tree::ServerId;
use roads_records::Query;
use roads_summary::{Summary, SummaryFidelity};
use std::collections::BTreeMap;

/// One replicated branch summary held somewhere in the overlay.
#[derive(Debug, Clone)]
pub struct ReplicaEntry {
    /// The server storing the copy.
    pub holder: ServerId,
    /// The server whose branch the copy summarizes.
    pub target: ServerId,
    /// Why `holder` replicates `target` (overlay role).
    pub role: ReplicaRole,
    /// The copy itself, as pushed at `epoch`.
    pub copy: Summary,
    /// Update-round epoch at which the copy was last refreshed.
    pub epoch: u64,
}

/// Epoch-stamped physical copies of every overlay entry.
///
/// `new` snapshots the converged state at epoch 0; [`refresh`] advances the
/// epoch and re-pushes copies for entries whose holder *and* target are
/// live — exactly what a top-down replication wave does. Everything else
/// keeps its old copy and ages.
///
/// [`refresh`]: ReplicaLedger::refresh
#[derive(Debug, Clone)]
pub struct ReplicaLedger {
    epoch: u64,
    entries: Vec<ReplicaEntry>,
}

/// The authoritative branch summary of `target` under a liveness mask:
/// the bottom-up re-aggregate of the local summaries of every *live*
/// server in `target`'s subtree. With everyone live this equals
/// [`RoadsNetwork::branch_summary`]; with deaths it is what a fresh
/// aggregation wave would produce.
pub fn authoritative_branch(net: &RoadsNetwork, target: ServerId, live: &[bool]) -> Summary {
    let members = net.tree().subtree(target);
    let parts = members
        .iter()
        .filter(|s| live.get(s.index()).copied().unwrap_or(true))
        .map(|&s| net.local_summary(s));
    Summary::aggregate(net.schema(), &net.config().summary, parts)
        .expect("uniform schema/config across the federation")
}

/// Per-target authoritative summaries, computed once per distinct target.
fn authoritative_map(
    net: &RoadsNetwork,
    entries: &[ReplicaEntry],
    live: &[bool],
) -> BTreeMap<ServerId, Summary> {
    let mut map = BTreeMap::new();
    for e in entries {
        map.entry(e.target)
            .or_insert_with(|| authoritative_branch(net, e.target, live));
    }
    map
}

/// Overlay-wide divergence at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceReport {
    /// Ledger epoch the report was taken at.
    pub epoch: u64,
    /// Overlay entries audited (live holders only).
    pub entries: usize,
    /// Entries whose copy differs from the authoritative branch summary.
    pub diverged: usize,
    /// Worst per-attribute drift across diverged entries (0 when clean).
    pub max_drift: f64,
    /// Worst relative record-count error across diverged entries.
    pub max_record_drift: f64,
}

impl DivergenceReport {
    /// Diverged fraction in `[0, 1]` (0 for an empty overlay).
    pub fn score(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.diverged as f64 / self.entries as f64
        }
    }
}

/// Per-tree-level tally of ground-truth probe outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelAudit {
    /// Tree depth of the replicated branch's root (0 = hierarchy root).
    pub level: usize,
    /// Overlay entries at this level with a live holder.
    pub entries: usize,
    /// Query × entry probes evaluated.
    pub probes: u64,
    /// Copy said "may match" but no live record in the branch matches.
    pub false_positives: u64,
    /// Copy pruned the branch although a live record matches — the
    /// correctness-critical direction (a routed query misses results).
    pub false_negatives: u64,
    /// Entries whose copy differs from the authoritative branch summary.
    pub diverged: usize,
    /// Worst staleness age (epochs) among entries at this level.
    pub staleness_max: u64,
}

impl LevelAudit {
    /// False-positive rate over this level's probes.
    pub fn fp_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.probes as f64
        }
    }

    /// False-negative rate over this level's probes.
    pub fn fn_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.false_negatives as f64 / self.probes as f64
        }
    }
}

impl ReplicaLedger {
    /// Snapshot the converged overlay: one entry per (holder, target) pair,
    /// copies taken from the current branch summaries, epoch 0.
    pub fn new(net: &RoadsNetwork) -> Self {
        let mut entries = Vec::new();
        for holder in net.tree().servers() {
            for (target, role) in net.replica_set(holder).entries() {
                entries.push(ReplicaEntry {
                    holder,
                    target,
                    role,
                    copy: net.branch_summary(target).clone(),
                    epoch: 0,
                });
            }
        }
        ReplicaLedger { epoch: 0, entries }
    }

    /// Current epoch (update rounds since the snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All entries.
    pub fn entries(&self) -> &[ReplicaEntry] {
        &self.entries
    }

    /// Run one replication wave: advance the epoch, then re-push the copy
    /// of every entry whose holder and target are both live, stamping it
    /// with the new epoch. Entries touching a dead server keep their old
    /// copy and age — exactly the staleness the audit plane measures.
    pub fn refresh(&mut self, net: &RoadsNetwork, live: &[bool]) {
        self.epoch += 1;
        let is_live = |s: ServerId| live.get(s.index()).copied().unwrap_or(true);
        let fresh = authoritative_map(
            net,
            &self
                .entries
                .iter()
                .filter(|e| is_live(e.holder) && is_live(e.target))
                .cloned()
                .collect::<Vec<_>>(),
            live,
        );
        for e in &mut self.entries {
            if is_live(e.holder) && is_live(e.target) {
                e.copy = fresh[&e.target].clone();
                e.epoch = self.epoch;
            }
        }
    }

    /// Staleness age (epochs since last refresh) of every entry.
    pub fn staleness_ages(&self) -> Vec<u64> {
        self.entries.iter().map(|e| self.epoch - e.epoch).collect()
    }

    /// The p99 staleness age (0 for an empty overlay).
    pub fn staleness_p99(&self) -> u64 {
        let mut ages = self.staleness_ages();
        if ages.is_empty() {
            return 0;
        }
        ages.sort_unstable();
        let idx = ((ages.len() as f64) * 0.99).ceil() as usize;
        ages[idx.clamp(1, ages.len()) - 1]
    }

    /// Compare every live-holder copy against the authoritative branch
    /// summary under `live` and fold the worst drift into one report.
    pub fn divergence(&self, net: &RoadsNetwork, live: &[bool]) -> DivergenceReport {
        let is_live = |s: ServerId| live.get(s.index()).copied().unwrap_or(true);
        let audited: Vec<ReplicaEntry> = self
            .entries
            .iter()
            .filter(|e| is_live(e.holder))
            .cloned()
            .collect();
        let fresh = authoritative_map(net, &audited, live);
        let mut out = DivergenceReport {
            epoch: self.epoch,
            entries: audited.len(),
            diverged: 0,
            max_drift: 0.0,
            max_record_drift: 0.0,
        };
        for e in &audited {
            let exact = &fresh[&e.target];
            if e.copy != *exact {
                out.diverged += 1;
                let f = SummaryFidelity::probe(&e.copy, exact);
                out.max_drift = out.max_drift.max(f.max_drift());
                out.max_record_drift = out.max_record_drift.max(f.record_drift);
            }
        }
        out
    }
}

/// Evaluate `queries` against every live-holder overlay entry and against
/// the ground truth its copy vouches for, tallied per tree level of the
/// replicated branch.
///
/// For each (entry, query) pair: the copy *says* match/prune via
/// [`Summary::may_match`]; the *truth* is whether any live server in the
/// branch holds a matching record. Says-without-truth is a false positive
/// (wasted redirect); truth-without-says is a false negative (missed
/// results — the audit plane's alarm condition).
pub fn audit_probe(
    net: &RoadsNetwork,
    ledger: &ReplicaLedger,
    live: &[bool],
    queries: &[Query],
) -> Vec<LevelAudit> {
    let tree = net.tree();
    let is_live = |s: ServerId| live.get(s.index()).copied().unwrap_or(true);
    let mut levels: Vec<LevelAudit> = (0..tree.levels())
        .map(|l| LevelAudit {
            level: l,
            ..LevelAudit::default()
        })
        .collect();
    let audited: Vec<ReplicaEntry> = ledger
        .entries()
        .iter()
        .filter(|e| is_live(e.holder))
        .cloned()
        .collect();
    let fresh = authoritative_map(net, &audited, live);
    // Ground truth per (target, query), computed once per distinct target.
    let mut truth_cache: BTreeMap<ServerId, Vec<bool>> = BTreeMap::new();
    for e in &audited {
        let lvl = &mut levels[tree.depth(e.target)];
        lvl.entries += 1;
        lvl.staleness_max = lvl.staleness_max.max(ledger.epoch() - e.epoch);
        if e.copy != fresh[&e.target] {
            lvl.diverged += 1;
        }
        let truths = truth_cache.entry(e.target).or_insert_with(|| {
            let members = tree.subtree(e.target);
            queries
                .iter()
                .map(|q| {
                    members
                        .iter()
                        .any(|&s| is_live(s) && net.records(s).iter().any(|r| q.matches(r)))
                })
                .collect()
        });
        for (q, &truth) in queries.iter().zip(truths.iter()) {
            let says = e.copy.may_match(q);
            lvl.probes += 1;
            if says && !truth {
                lvl.false_positives += 1;
            }
            if !says && truth {
                lvl.false_negatives += 1;
            }
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoadsConfig;
    use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;

    /// 13 servers, one record each at x0 = s/13 — every server's record is
    /// uniquely addressable by a narrow range query.
    fn network() -> RoadsNetwork {
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(128),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..13)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / 13.0)],
                )]
            })
            .collect();
        RoadsNetwork::build(schema, cfg, records)
    }

    fn probe_for(net: &RoadsNetwork, s: ServerId) -> Query {
        let v = s.index() as f64 / 13.0;
        QueryBuilder::new(net.schema(), QueryId(s.0 as u64))
            .range("x0", v - 0.002, v + 0.002)
            .build()
    }

    fn totals(levels: &[LevelAudit]) -> (u64, u64, usize) {
        levels.iter().fold((0, 0, 0), |(fp, fneg, div), l| {
            (
                fp + l.false_positives,
                fneg + l.false_negatives,
                div + l.diverged,
            )
        })
    }

    #[test]
    fn converged_overlay_is_clean() {
        let net = network();
        let ledger = ReplicaLedger::new(&net);
        let live = vec![true; net.len()];
        assert!(!ledger.entries().is_empty());
        let d = ledger.divergence(&net, &live);
        assert_eq!(d.diverged, 0);
        assert_eq!(d.score(), 0.0);
        assert_eq!(ledger.staleness_p99(), 0);
        let queries: Vec<Query> = net
            .tree()
            .servers()
            .iter()
            .map(|&s| probe_for(&net, s))
            .collect();
        let (fp, fneg, div) = totals(&audit_probe(&net, &ledger, &live, &queries));
        assert_eq!((fp, fneg, div), (0, 0, 0));
    }

    #[test]
    fn authoritative_branch_matches_converged_state_when_all_live() {
        let net = network();
        let live = vec![true; net.len()];
        for s in net.tree().servers() {
            assert_eq!(
                &authoritative_branch(&net, s, &live),
                net.branch_summary(s),
                "server {s}"
            );
        }
    }

    #[test]
    fn kill_diverges_then_refresh_reconverges() {
        let net = network();
        let mut ledger = ReplicaLedger::new(&net);
        let mut live = vec![true; net.len()];
        // Kill a deep leaf so several ancestors' branches change.
        let victim = *net.tree().leaves().iter().max().unwrap();
        live[victim.index()] = false;
        let d = ledger.divergence(&net, &live);
        assert!(d.diverged > 0, "stale copies must be flagged: {d:?}");
        assert!(d.score() > 0.0);
        assert!(d.max_record_drift > 0.0);
        // A query for the dead server's record: stale copies still vouch
        // for it → false positives, zero false negatives.
        let q = vec![probe_for(&net, victim)];
        let (fp, fneg, _) = totals(&audit_probe(&net, &ledger, &live, &q));
        assert!(fp > 0, "stale copy must produce false positives");
        assert_eq!(fneg, 0);
        // A replication wave while the victim is down: live branches
        // (its ancestors') re-push and reconverge, but nobody can re-push
        // the dead branch itself — its copies stay stale at the victim's
        // siblings, so divergence shrinks without clearing.
        ledger.refresh(&net, &live);
        let d2 = ledger.divergence(&net, &live);
        assert!(d2.diverged > 0, "{d2:?}");
        assert!(d2.diverged < d.diverged, "{d2:?} vs {d:?}");
        // Restart + one more wave: everything reconverges.
        live[victim.index()] = true;
        ledger.refresh(&net, &live);
        let d3 = ledger.divergence(&net, &live);
        assert_eq!(d3.diverged, 0, "{d3:?}");
        let (fp3, fneg3, _) = totals(&audit_probe(&net, &ledger, &live, &q));
        assert_eq!((fp3, fneg3), (0, 0));
    }

    #[test]
    fn restart_causes_false_negatives_until_refresh() {
        let net = network();
        let mut ledger = ReplicaLedger::new(&net);
        let mut live = vec![true; net.len()];
        let victim = *net.tree().leaves().iter().max().unwrap();
        // Kill, refresh (copies now exclude the victim), then restart.
        live[victim.index()] = false;
        ledger.refresh(&net, &live);
        live[victim.index()] = true;
        let q = vec![probe_for(&net, victim)];
        let (fp, fneg, div) = totals(&audit_probe(&net, &ledger, &live, &q));
        assert_eq!(fp, 0);
        assert!(
            fneg > 0,
            "copies taken while the server was down must miss its restored records"
        );
        assert!(div > 0);
        // The next wave restores conservatism.
        ledger.refresh(&net, &live);
        let (fp2, fneg2, div2) = totals(&audit_probe(&net, &ledger, &live, &q));
        assert_eq!((fp2, fneg2, div2), (0, 0, 0));
    }

    #[test]
    fn staleness_ages_only_for_dead_endpoints() {
        let net = network();
        let mut ledger = ReplicaLedger::new(&net);
        let mut live = vec![true; net.len()];
        let victim = *net.tree().leaves().iter().max().unwrap();
        live[victim.index()] = false;
        for _ in 0..5 {
            ledger.refresh(&net, &live);
        }
        assert_eq!(ledger.epoch(), 5);
        let ages = ledger.staleness_ages();
        let stale = ages.iter().filter(|&&a| a > 0).count();
        let fresh = ages.iter().filter(|&&a| a == 0).count();
        assert!(stale > 0, "entries touching the dead server must age");
        assert!(fresh > 0, "live-to-live entries must stay fresh");
        // Every stale entry involves the victim.
        for (e, &age) in ledger.entries().iter().zip(&ages) {
            if age > 0 {
                assert!(
                    e.holder == victim || e.target == victim,
                    "{} -> {} aged without touching the victim",
                    e.holder,
                    e.target
                );
            }
        }
        assert_eq!(ledger.staleness_p99(), 5);
    }

    #[test]
    fn level_tallies_index_by_target_depth() {
        let net = network();
        let ledger = ReplicaLedger::new(&net);
        let live = vec![true; net.len()];
        let q = vec![probe_for(&net, net.tree().root())];
        let levels = audit_probe(&net, &ledger, &live, &q);
        assert_eq!(levels.len(), net.tree().levels());
        let by_depth: usize = levels.iter().map(|l| l.entries).sum();
        let total: usize = ledger.entries().len();
        assert_eq!(by_depth, total);
        for l in &levels {
            assert_eq!(l.probes, l.entries as u64 * q.len() as u64);
        }
    }
}
