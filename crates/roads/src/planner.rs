//! Replica-aware query planning: greedy set-cover source selection over
//! the entry server's replicated branch summaries.
//!
//! The greedy execution in [`crate::queryexec`] expands the entry's overlay
//! view hop-by-hop: every child, sibling, ancestor-sibling and ancestor
//! whose replicated *branch* summary may match is contacted. Two of those
//! decisions are systematically wasteful:
//!
//! * **Ancestor probes.** An ancestor's branch summary includes the entry's
//!   own branch, so on any query the entry itself can answer, every
//!   ancestor's branch summary matches too — greedy pays O(depth)
//!   local-only probes per query. The entry also replicates each ancestor's
//!   summaries, so the planner evaluates the ancestor's **local** summary
//!   instead: still conservative (a local summary over-approximates the
//!   ancestor's attached records, nothing else), so recall is unchanged,
//!   but probes of ancestors holding provably-irrelevant local data are
//!   pruned before any message is sent.
//! * **Redundant covers.** Federated source selection over replicated
//!   fragments (Fedra) shows a minimal covering subset of endpoints
//!   answers the same query. The planner runs greedy set-cover over the
//!   candidate covers (each candidate covers the subtree it is responsible
//!   for), preferring fresher copies — higher [`ReplicaLedger`] epoch
//!   stamps — and closer ones (smaller delay from the entry) among equal
//!   gains. In a converged ROADS overlay the covers are disjoint by
//!   construction (`overlay::coverage` proves they partition the
//!   hierarchy), so every matching candidate is selected; the machinery
//!   exists for degraded or custom topologies where copies overlap.
//!
//! The resulting [`QueryPlan`] is dispatched as one batch from the entry
//! ([`crate::queryexec::execute_query_planned`]) instead of re-deriving
//! targets hop-by-hop.

use crate::audit::ReplicaLedger;
use crate::engine::RoadsNetwork;
use crate::queryexec::SearchScope;
use crate::tree::ServerId;
use roads_netsim::DelaySpace;
use roads_records::Query;
use std::collections::BTreeSet;

/// What a planned contact is asked to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAction {
    /// Search local records and keep descending the branch (a child or an
    /// overlay redirect target).
    Descend,
    /// Search locally attached records only (an ancestor probe).
    Probe,
}

/// One server the plan dispatches to, with the cover that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedContact {
    /// The server to contact.
    pub server: ServerId,
    /// What it is asked to do.
    pub action: PlanAction,
    /// Servers this contact is responsible for (its branch for descents,
    /// itself for probes) that were still uncovered when it was chosen.
    pub covers: Vec<ServerId>,
    /// Epoch stamp of the summary copy that justified the contact
    /// (freshness preference; `0` when planning without a ledger).
    pub epoch: u64,
}

/// A batch dispatch plan for one query from one entry server.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The entry server the plan was computed at.
    pub entry: ServerId,
    /// Chosen contacts, in greedy selection order.
    pub contacts: Vec<PlannedContact>,
    /// Candidate contacts considered before set-cover selection.
    pub candidates: usize,
    /// Servers the chosen contacts jointly cover.
    pub covered: usize,
    /// Ancestor probes greedy would have paid for that the ancestor's
    /// replicated *local* summary proved pointless.
    pub pruned_probes: usize,
}

impl QueryPlan {
    /// Servers the plan dispatches to, in selection order.
    pub fn servers(&self) -> Vec<ServerId> {
        self.contacts.iter().map(|c| c.server).collect()
    }

    /// Number of branch-descent contacts.
    pub fn descents(&self) -> usize {
        self.contacts
            .iter()
            .filter(|c| c.action == PlanAction::Descend)
            .count()
    }

    /// Number of local-only ancestor probes.
    pub fn probes(&self) -> usize {
        self.contacts
            .iter()
            .filter(|c| c.action == PlanAction::Probe)
            .count()
    }
}

/// A set-cover candidate: a server able to answer for `covers`, with the
/// freshness and proximity used to break ties between equal gains.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverCandidate {
    /// The server that would be contacted.
    pub server: ServerId,
    /// Servers whose records this contact can account for.
    pub covers: Vec<ServerId>,
    /// Freshness stamp of the justifying summary copy (higher = fresher).
    pub epoch: u64,
    /// Contact cost from the entry, in microseconds (lower = closer).
    pub cost_us: u64,
}

/// Greedy weighted set-cover: repeatedly choose the candidate covering the
/// most still-uncovered servers, preferring (in order) larger gain, fresher
/// epoch, lower cost, then smaller server id. Returns indices into
/// `candidates` in selection order. Stops when the universe is covered or
/// no remaining candidate adds coverage.
pub fn greedy_set_cover(
    mut uncovered: BTreeSet<ServerId>,
    candidates: &[CoverCandidate],
) -> Vec<usize> {
    use std::cmp::Reverse;
    let mut chosen = Vec::new();
    let mut used = vec![false; candidates.len()];
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if used[i] {
                continue;
            }
            let gain = c.covers.iter().filter(|s| uncovered.contains(s)).count();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bi, bg)) => {
                    let b = &candidates[bi];
                    (gain, c.epoch, Reverse(c.cost_us), Reverse(c.server))
                        > (bg, b.epoch, Reverse(b.cost_us), Reverse(b.server))
                }
            };
            if better {
                best = Some((i, gain));
            }
        }
        let Some((i, _)) = best else {
            break;
        };
        used[i] = true;
        for s in &candidates[i].covers {
            uncovered.remove(s);
        }
        chosen.push(i);
    }
    chosen
}

/// Plan `query` from `entry` using only the converged network state (no
/// epoch stamps, no delay preference).
pub fn plan_query(
    net: &RoadsNetwork,
    query: &Query,
    entry: ServerId,
    scope: SearchScope,
) -> QueryPlan {
    plan_query_with(net, query, entry, scope, None, None)
}

/// Plan `query` from `entry`, preferring fresher summary copies (per
/// `ledger` epoch stamps) and closer servers (per `delays`) among
/// equal-gain candidates.
pub fn plan_query_with(
    net: &RoadsNetwork,
    query: &Query,
    entry: ServerId,
    scope: SearchScope,
    ledger: Option<&ReplicaLedger>,
    delays: Option<&DelaySpace>,
) -> QueryPlan {
    let tree = net.tree();
    let entry_depth = tree.depth(entry);
    // Epoch of the summary copy the entry holds for `target`. Children's
    // summaries are received directly (not via the overlay wave), so they
    // carry the ledger's current epoch; overlay copies carry their entry's
    // stamp.
    let epoch_of = |target: ServerId| -> u64 {
        let Some(l) = ledger else { return 0 };
        l.entries()
            .iter()
            .find(|e| e.holder == entry && e.target == target)
            .map(|e| e.epoch)
            .unwrap_or_else(|| l.epoch())
    };
    let cost_of = |target: ServerId| -> u64 {
        delays
            .map(|d| d.delay(entry.index(), target.index()).as_micros())
            .unwrap_or(0)
    };

    let mut candidates: Vec<CoverCandidate> = Vec::new();
    let mut actions: Vec<PlanAction> = Vec::new();

    // Children: the entry holds their branch summaries directly.
    for &c in tree.children(entry) {
        if net.branch_summary(c).may_match(query) {
            candidates.push(CoverCandidate {
                server: c,
                covers: tree.subtree(c),
                epoch: epoch_of(c),
                cost_us: cost_of(c),
            });
            actions.push(PlanAction::Descend);
        }
    }
    // Overlay redirect targets: siblings and ancestors' siblings, each
    // responsible for its whole branch.
    let rset = net.replica_set(entry);
    for t in rset.redirect_targets() {
        if scope.admits_replica(entry_depth, tree.depth(t))
            && net.branch_summary(t).may_match(query)
        {
            candidates.push(CoverCandidate {
                server: t,
                covers: tree.subtree(t),
                epoch: epoch_of(t),
                cost_us: cost_of(t),
            });
            actions.push(PlanAction::Descend);
        }
    }
    // Ancestors: greedy probes every ancestor whose *branch* summary
    // matches — which includes the entry's own branch, so it matches far
    // too often. The replicated *local* summary decides instead; both are
    // conservative over the ancestor's attached records, so pruning here
    // cannot lose a match.
    let mut pruned_probes = 0usize;
    for &a in &rset.ancestors {
        if !scope.admits_ancestor(entry_depth, tree.depth(a)) {
            continue;
        }
        if !net.branch_summary(a).may_match(query) {
            continue; // greedy would not have probed it either
        }
        if net.local_summary(a).may_match(query) {
            candidates.push(CoverCandidate {
                server: a,
                covers: vec![a],
                epoch: epoch_of(a),
                cost_us: cost_of(a),
            });
            actions.push(PlanAction::Probe);
        } else {
            pruned_probes += 1;
        }
    }

    let universe: BTreeSet<ServerId> = candidates
        .iter()
        .flat_map(|c| c.covers.iter().copied())
        .collect();
    let covered = universe.len();
    let n_candidates = candidates.len();
    let chosen = greedy_set_cover(universe, &candidates);
    let contacts = chosen
        .into_iter()
        .map(|i| PlannedContact {
            server: candidates[i].server,
            action: actions[i],
            covers: candidates[i].covers.clone(),
            epoch: candidates[i].epoch,
        })
        .collect();
    QueryPlan {
        entry,
        contacts,
        candidates: n_candidates,
        covered,
        pruned_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoadsConfig;
    use crate::queryexec::{execute_query, execute_query_planned};
    use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;

    fn network(n: usize, degree: usize) -> (RoadsNetwork, DelaySpace) {
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: degree,
            summary: SummaryConfig::with_buckets(200),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect();
        let net = RoadsNetwork::build(schema, cfg, records);
        let delays = DelaySpace::paper(n, 77);
        (net, delays)
    }

    fn point_query(net: &RoadsNetwork, v: f64) -> Query {
        QueryBuilder::new(net.schema(), QueryId(1))
            .range("x0", v - 1e-4, v + 1e-4)
            .build()
    }

    #[test]
    fn set_cover_prefers_gain_then_epoch_then_cost() {
        let s = |i: u32| ServerId(i);
        let universe: BTreeSet<ServerId> = [1, 2, 3, 4].map(s).into();
        let candidates = vec![
            CoverCandidate {
                server: s(10),
                covers: vec![s(1), s(2)],
                epoch: 1,
                cost_us: 50,
            },
            CoverCandidate {
                server: s(11),
                covers: vec![s(1), s(2), s(3)],
                epoch: 0,
                cost_us: 90,
            },
            // Same cover as 10 but fresher: must win the residual {4}? No —
            // covers {4} only via candidate 13. Candidate 12 ties 10 on
            // gain for {1,2} but is fresher.
            CoverCandidate {
                server: s(12),
                covers: vec![s(1), s(2)],
                epoch: 5,
                cost_us: 80,
            },
            CoverCandidate {
                server: s(13),
                covers: vec![s(4)],
                epoch: 0,
                cost_us: 10,
            },
        ];
        let chosen = greedy_set_cover(universe, &candidates);
        // Largest gain first (11 covers 3), then {4} via 13; 10/12 add
        // nothing afterwards.
        assert_eq!(chosen, vec![1, 3]);

        // Without 11, the {1,2} tie goes to the fresher copy (12), despite
        // its higher cost.
        let universe: BTreeSet<ServerId> = [1, 2].map(s).into();
        let pair = vec![candidates[0].clone(), candidates[2].clone()];
        assert_eq!(greedy_set_cover(universe, &pair), vec![1]);

        // Equal gain and epoch: the cheaper contact wins.
        let universe: BTreeSet<ServerId> = [1, 2].map(s).into();
        let mut a = candidates[0].clone();
        let mut b = candidates[2].clone();
        a.epoch = 5;
        a.cost_us = 80;
        b.cost_us = 20;
        assert_eq!(greedy_set_cover(universe, &[a, b]), vec![1]);
    }

    #[test]
    fn set_cover_stops_when_residual_uncoverable() {
        let s = |i: u32| ServerId(i);
        let universe: BTreeSet<ServerId> = [1, 2, 99].map(s).into();
        let candidates = vec![CoverCandidate {
            server: s(10),
            covers: vec![s(1), s(2)],
            epoch: 0,
            cost_us: 0,
        }];
        assert_eq!(greedy_set_cover(universe, &candidates), vec![0]);
    }

    #[test]
    fn plan_covers_whole_hierarchy_on_broad_query() {
        let (net, _delays) = network(30, 3);
        let q = QueryBuilder::new(net.schema(), QueryId(2))
            .range("x0", 0.0, 1.0)
            .build();
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let plan = plan_query(&net, &q, leaf, SearchScope::full());
        // Everything except the entry itself is covered by the plan.
        let mut covered: BTreeSet<ServerId> = plan
            .contacts
            .iter()
            .flat_map(|c| c.covers.clone())
            .collect();
        covered.insert(leaf);
        assert_eq!(covered.len(), 30, "plan + entry covers the federation");
        // In a converged overlay the covers partition: descents are
        // disjoint branches, probes are the ancestors themselves.
        let total: usize = plan.contacts.iter().map(|c| c.covers.len()).sum();
        assert_eq!(total + 1, 30, "covers are disjoint");
    }

    #[test]
    fn plan_prunes_ancestor_probes_on_selective_query() {
        let (net, delays) = network(30, 3);
        // A query matching only the entry leaf's own record: every
        // ancestor's branch summary matches (it contains the leaf), but no
        // ancestor's local summary does.
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let q = point_query(&net, leaf.0 as f64 / 30.0);
        let greedy = execute_query(&net, &delays, &q, leaf, SearchScope::full());
        let plan = plan_query(&net, &q, leaf, SearchScope::full());
        assert!(
            plan.pruned_probes > 0,
            "ancestor branch summaries over-approximate; local summaries must prune"
        );
        let planned = execute_query_planned(&net, &delays, &q, leaf, SearchScope::full(), &plan);
        assert!(
            planned.servers_contacted < greedy.servers_contacted,
            "planned {} !< greedy {}",
            planned.servers_contacted,
            greedy.servers_contacted
        );
        assert!(planned.query_bytes < greedy.query_bytes);
        // Recall identical.
        assert_eq!(planned.matching_servers, greedy.matching_servers);
        assert_eq!(planned.matching_records, greedy.matching_records);
    }

    #[test]
    fn planned_equals_greedy_results_from_every_entry() {
        let (net, delays) = network(30, 3);
        for target in [0usize, 7, 15, 29] {
            let q = point_query(&net, target as f64 / 30.0);
            for start in 0..30u32 {
                let start = ServerId(start);
                let greedy = execute_query(&net, &delays, &q, start, SearchScope::full());
                let plan = plan_query(&net, &q, start, SearchScope::full());
                let planned =
                    execute_query_planned(&net, &delays, &q, start, SearchScope::full(), &plan);
                assert_eq!(
                    planned.matching_servers, greedy.matching_servers,
                    "start {start} target {target}"
                );
                assert_eq!(planned.matching_records, greedy.matching_records);
                assert!(planned.servers_contacted <= greedy.servers_contacted);
            }
        }
    }

    #[test]
    fn ledger_epochs_thread_into_contacts() {
        use crate::audit::ReplicaLedger;
        let (net, delays) = network(20, 3);
        let mut ledger = ReplicaLedger::new(&net);
        ledger.refresh(&net, &[true; 20]);
        ledger.refresh(&net, &[true; 20]);
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let q = QueryBuilder::new(net.schema(), QueryId(3))
            .range("x0", 0.0, 1.0)
            .build();
        let plan = plan_query_with(
            &net,
            &q,
            leaf,
            SearchScope::full(),
            Some(&ledger),
            Some(&delays),
        );
        assert!(!plan.contacts.is_empty());
        assert!(
            plan.contacts.iter().all(|c| c.epoch == ledger.epoch()),
            "fully refreshed ledger stamps every copy with the current epoch"
        );
    }

    #[test]
    fn scoped_plan_respects_levels() {
        let (net, _delays) = network(30, 2);
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let q = QueryBuilder::new(net.schema(), QueryId(4))
            .range("x0", 0.0, 1.0)
            .build();
        let full = plan_query(&net, &q, leaf, SearchScope::full());
        let scoped = plan_query(&net, &q, leaf, SearchScope::levels(1));
        assert!(scoped.contacts.len() < full.contacts.len());
        // levels(0): the search stays within the entry's own branch.
        let own = plan_query(&net, &q, leaf, SearchScope::levels(0));
        let tree = net.tree();
        assert!(own
            .contacts
            .iter()
            .all(|c| tree.parent(c.server) == Some(leaf)));
    }
}
