//! ROADS system configuration.

use roads_summary::SummaryConfig;

/// Configuration shared by every ROADS server in a federation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadsConfig {
    /// Maximum children a server accepts (the paper's node degree `k`;
    /// simulation default 8).
    pub max_children: usize,
    /// Summary parameters (bucket count etc.).
    pub summary: SummaryConfig,
    /// Summary refresh period `ts` in milliseconds — how often summaries
    /// are re-exported, re-aggregated bottom-up and re-replicated top-down.
    pub ts_ms: u64,
    /// Record refresh period `tr` in milliseconds (how often raw records
    /// change; `ts >> tr` in the paper's analysis — summaries change an
    /// order of magnitude *slower* than records).
    pub tr_ms: u64,
    /// Heartbeat period in milliseconds (parent↔child liveness).
    pub heartbeat_ms: u64,
    /// Heartbeats missed before declaring the peer failed.
    pub heartbeat_loss_threshold: u32,
    /// TTL applied to soft-state summaries, in milliseconds.
    pub summary_ttl_ms: u64,
}

impl RoadsConfig {
    /// The paper's simulation defaults: degree 8, 1000-bucket histograms,
    /// summaries refreshed 10× less often than records.
    pub fn paper_default() -> Self {
        RoadsConfig {
            max_children: 8,
            summary: SummaryConfig::paper_default(),
            // §IV: summaries change "on the order of several minutes at
            // least"; records an order of magnitude faster.
            ts_ms: 60_000,
            tr_ms: 6_000,
            heartbeat_ms: 5_000,
            heartbeat_loss_threshold: 3,
            summary_ttl_ms: 180_000,
        }
    }

    /// Default with a different node degree (Fig. 10 sweep).
    pub fn with_degree(max_children: usize) -> Self {
        RoadsConfig {
            max_children,
            ..Self::paper_default()
        }
    }

    /// Default with a different histogram resolution (ablation).
    pub fn with_buckets(buckets: usize) -> Self {
        RoadsConfig {
            summary: SummaryConfig::with_buckets(buckets),
            ..Self::paper_default()
        }
    }
}

impl Default for RoadsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = RoadsConfig::paper_default();
        assert_eq!(c.max_children, 8);
        assert_eq!(c.summary.buckets, 1000);
        assert_eq!(c.ts_ms / c.tr_ms, 10, "tr/ts = 0.1 per the analysis");
    }

    #[test]
    fn degree_override() {
        assert_eq!(RoadsConfig::with_degree(4).max_children, 4);
    }

    #[test]
    fn bucket_override() {
        assert_eq!(RoadsConfig::with_buckets(64).summary.buckets, 64);
    }
}
