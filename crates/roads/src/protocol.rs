//! The live ROADS data plane over the discrete-event simulator.
//!
//! [`crate::engine::RoadsNetwork`] materializes the *converged* state of a
//! federation; this module runs the actual protocol that converges to it
//! (§III-B/C): every `ts` each server re-summarizes its attached records,
//! sends its branch summary to its parent, and fans replication payloads
//! out to its children; summaries are soft state with TTLs, so a server
//! that stops refreshing simply fades out of everyone's view; queries are
//! real messages evaluated against whatever (possibly stale) summaries a
//! server currently holds.
//!
//! The membership plane (joins, heartbeats, elections) lives in
//! [`crate::maintenance`]; here the hierarchy is taken as given, which is
//! how the paper's own evaluation separates the two concerns.

use crate::config::RoadsConfig;
use crate::tree::{HierarchyTree, ServerId};
use roads_netsim::{Ctx, NodeId, Protocol, SimTime, Simulator, TimerTag, TrafficClass};
use roads_records::{wire::MSG_HEADER_BYTES, Query, QueryId, Record, Schema, WireSize};
use roads_summary::{SoftStateTable, Summary};
use roads_telemetry::{EventKind, SpanId, Timeline, TraceId};
use std::collections::HashMap;

/// Periodic aggregation/replication tick.
const TIMER_AGG: TimerTag = 10;

/// Messages of the data plane.
#[derive(Debug, Clone)]
pub enum DataMsg {
    /// Child → parent: the sender's current branch summary.
    BranchSummary {
        /// The branch summary.
        summary: Summary,
    },
    /// Parent → child: replicated summaries, each tagged with the server
    /// whose branch it describes.
    Replicate {
        /// `(origin server, branch summary)` pairs.
        entries: Vec<(u32, Summary)>,
    },
    /// A query traveling through the federation.
    Query {
        /// The query itself.
        query: Query,
        /// The client node awaiting results.
        origin: NodeId,
        /// True at the entry server (overlay shortcuts apply).
        entry: bool,
        /// Local-records-only probe (ancestor coverage).
        local_only: bool,
    },
    /// Server → client: local matches found for a query.
    Matches {
        /// The answered query.
        query: QueryId,
        /// Matching records at the reporting server.
        count: u32,
    },
}

fn msg_bytes(m: &DataMsg) -> usize {
    MSG_HEADER_BYTES
        + match m {
            DataMsg::BranchSummary { summary } => summary.wire_size(),
            DataMsg::Replicate { entries } => entries
                .iter()
                .map(|(_, s)| 4 + s.wire_size())
                .sum::<usize>(),
            DataMsg::Query { query, .. } => query.wire_size() + 6,
            DataMsg::Matches { .. } => 12,
        }
}

/// One server running the live data plane.
pub struct DataNode {
    cfg: RoadsConfig,
    schema: Schema,
    /// Static topology (from the membership plane).
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Siblings/ancestors this node expects replicas from (overlay spec).
    records: Vec<Record>,
    local_summary: Summary,
    /// Fresh branch summaries of children (TTL soft state).
    child_summaries: SoftStateTable<NodeId, Summary>,
    /// Replicated remote branch summaries by origin server id.
    replicas: SoftStateTable<u32, Summary>,
    /// Whether this node still participates (crash injection).
    alive: bool,
    /// Client-side: per query, (reporting servers, records) received.
    results: HashMap<QueryId, (u32, u32)>,
    /// Queries this server has already processed (duplicate suppression),
    /// bounded FIFO so long-lived servers don't grow without limit.
    seen_queries: HashMap<QueryId, ()>,
    seen_order: std::collections::VecDeque<QueryId>,
}

impl DataNode {
    fn new(
        cfg: RoadsConfig,
        schema: Schema,
        parent: Option<NodeId>,
        children: Vec<NodeId>,
        records: Vec<Record>,
    ) -> Self {
        let local_summary = Summary::from_records(&schema, &cfg.summary, &records);
        DataNode {
            child_summaries: SoftStateTable::new(cfg.summary_ttl_ms),
            replicas: SoftStateTable::new(cfg.summary_ttl_ms),
            cfg,
            schema,
            parent,
            children,
            records,
            local_summary,
            alive: true,
            results: HashMap::new(),
            seen_queries: HashMap::new(),
            seen_order: std::collections::VecDeque::new(),
        }
    }

    /// Duplicate-suppression window: queries older than this many distinct
    /// ids are forgotten (re-delivery after that window re-answers, which
    /// is harmless — the client dedups by server).
    const SEEN_WINDOW: usize = 4096;

    /// Stop participating: no more refreshes, no more replies. Soft state
    /// held by others will expire on its own.
    pub fn crash(&mut self) {
        self.alive = false;
    }

    /// Replace the attached records (owners re-export every `tr`); the next
    /// aggregation tick propagates the change.
    pub fn set_records(&mut self, records: Vec<Record>) {
        self.local_summary = Summary::from_records(&self.schema, &self.cfg.summary, &records);
        self.records = records;
    }

    /// Client view: `(servers reporting, records found)` for a query this
    /// node issued.
    pub fn result(&self, q: QueryId) -> Option<(u32, u32)> {
        self.results.get(&q).copied()
    }

    /// Number of fresh replicas currently held.
    pub fn fresh_replicas(&self, now_ms: u64) -> usize {
        self.replicas.iter_fresh(now_ms).count()
    }

    /// Number of fresh child branch summaries currently held.
    pub fn fresh_child_summaries(&self, now_ms: u64) -> usize {
        self.child_summaries.iter_fresh(now_ms).count()
    }

    /// Whether the fresh child-summary view still contains `child`.
    pub fn sees_child(&self, child: NodeId, now_ms: u64) -> bool {
        self.child_summaries.get(&child, now_ms).is_some()
    }

    /// Branch summary from current (possibly stale) state.
    fn branch_summary(&self, now_ms: u64) -> Summary {
        let mut branch = self.local_summary.clone();
        for (_, s) in self.child_summaries.iter_fresh(now_ms) {
            branch
                .merge(s)
                .expect("uniform schema/config across the federation");
        }
        branch
    }

    fn send(&self, ctx: &mut Ctx<'_, DataMsg>, to: NodeId, msg: DataMsg, class: TrafficClass) {
        let bytes = msg_bytes(&msg);
        ctx.send(to, msg, bytes, class);
    }

    fn aggregation_tick(&mut self, ctx: &mut Ctx<'_, DataMsg>) {
        let now_ms = ctx.now().as_micros() / 1000;
        let expired = self.child_summaries.sweep(now_ms).len() + self.replicas.sweep(now_ms).len();
        if expired > 0 {
            ctx.record(EventKind::TtlExpire, expired as u64);
        }

        // Bottom-up: branch summary to the parent.
        if let Some(p) = self.parent {
            let summary = self.branch_summary(now_ms);
            ctx.record(EventKind::SummaryPublish, summary.wire_size() as u64);
            self.send(
                ctx,
                p,
                DataMsg::BranchSummary { summary },
                TrafficClass::Update,
            );
        }

        // Top-down: to each child send its siblings' branch summaries, our
        // own branch summary, and everything we replicate from above.
        let me = ctx.self_id().0;
        let my_branch = self.branch_summary(now_ms);
        let mut fresh_children: Vec<(NodeId, Summary)> = self
            .child_summaries
            .iter_fresh(now_ms)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        fresh_children.sort_by_key(|(k, _)| *k);
        let mut from_above: Vec<(u32, Summary)> = self
            .replicas
            .iter_fresh(now_ms)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        from_above.sort_by_key(|(k, _)| *k);
        for &c in &self.children {
            let mut entries: Vec<(u32, Summary)> = fresh_children
                .iter()
                .filter(|(sib, _)| *sib != c)
                .map(|(sib, s)| (sib.0, s.clone()))
                .collect();
            entries.push((me, my_branch.clone()));
            entries.extend(from_above.iter().cloned());
            self.send(ctx, c, DataMsg::Replicate { entries }, TrafficClass::Update);
        }
    }

    fn handle_query(
        &mut self,
        ctx: &mut Ctx<'_, DataMsg>,
        query: Query,
        origin: NodeId,
        entry: bool,
        local_only: bool,
    ) {
        let me = ctx.self_id();
        if self.seen_queries.insert(query.id, ()).is_some() {
            return; // duplicate delivery
        }
        self.seen_order.push_back(query.id);
        if self.seen_order.len() > Self::SEEN_WINDOW {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen_queries.remove(&old);
            }
        }
        let now_ms = ctx.now().as_micros() / 1000;

        // Local search and report.
        let matches = self.records.iter().filter(|r| query.matches(r)).count() as u32;
        ctx.record(EventKind::QueryHop, matches as u64);
        if matches > 0 {
            let report = DataMsg::Matches {
                query: query.id,
                count: matches,
            };
            if origin == me {
                self.record_result(query.id, matches);
            } else {
                self.send(ctx, origin, report, TrafficClass::Data);
            }
        } else if origin == me {
            self.results.entry(query.id).or_insert((0, 0));
        }
        if local_only {
            return;
        }

        // Forward down matching child branches.
        let targets: Vec<NodeId> = self
            .children
            .iter()
            .copied()
            .filter(|c| {
                self.child_summaries
                    .get(c, now_ms)
                    .is_some_and(|s| s.may_match(&query))
            })
            .collect();
        for c in targets {
            let msg = DataMsg::Query {
                query: query.clone(),
                origin,
                entry: false,
                local_only: false,
            };
            self.send(ctx, c, msg, TrafficClass::Query);
        }

        // At the entry server: overlay shortcuts to matching replicas.
        if entry {
            let mut replica_targets: Vec<(u32, bool)> = self
                .replicas
                .iter_fresh(now_ms)
                .filter(|(_, s)| s.may_match(&query))
                .map(|(origin_server, _)| (*origin_server, false))
                .collect();
            replica_targets.sort_by_key(|(k, _)| *k);
            for (target, _) in replica_targets {
                let target = NodeId(target);
                if target == me {
                    continue;
                }
                // Ancestor targets are those on our root path; we cannot
                // see the tree here, so the sender marks local_only for
                // targets that are our direct ancestors — detected by the
                // replica having been learned as "from above" via the
                // parent chain. Conservatively: forward as branch query;
                // duplicate suppression keeps re-visits cheap.
                let msg = DataMsg::Query {
                    query: query.clone(),
                    origin,
                    entry: false,
                    local_only: false,
                };
                self.send(ctx, target, msg, TrafficClass::Query);
            }
        }
    }

    fn record_result(&mut self, q: QueryId, records: u32) {
        let entry = self.results.entry(q).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += records;
    }
}

impl Protocol for DataNode {
    type Msg = DataMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, DataMsg>, from: NodeId, msg: DataMsg) {
        if !self.alive {
            return;
        }
        let now_ms = ctx.now().as_micros() / 1000;
        match msg {
            DataMsg::BranchSummary { summary } => {
                if self.children.contains(&from) {
                    ctx.record(EventKind::SummaryMerge, from.0 as u64);
                    self.child_summaries.insert(from, summary, now_ms);
                }
            }
            DataMsg::Replicate { entries } => {
                if self.parent == Some(from) {
                    let mut installed = 0u64;
                    let mut refreshed = 0u64;
                    for (origin, summary) in entries {
                        if self.replicas.get_ignoring_ttl(&origin).is_some() {
                            refreshed += 1;
                        } else {
                            installed += 1;
                        }
                        self.replicas.insert(origin, summary, now_ms);
                    }
                    if installed > 0 {
                        ctx.record(EventKind::ReplicaInstall, installed);
                    }
                    if refreshed > 0 {
                        ctx.record(EventKind::ReplicaRefresh, refreshed);
                    }
                }
            }
            DataMsg::Query {
                query,
                origin,
                entry,
                local_only,
            } => self.handle_query(ctx, query, origin, entry, local_only),
            DataMsg::Matches { query, count } => self.record_result(query, count),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DataMsg>, tag: TimerTag) {
        if !self.alive || tag != TIMER_AGG {
            return;
        }
        self.aggregation_tick(ctx);
        ctx.set_timer(SimTime::from_millis(self.cfg.ts_ms), TIMER_AGG);
    }
}

/// Assemble the data plane over an existing hierarchy: one [`DataNode`] per
/// server, aggregation timers staggered across the first `ts`.
pub fn build_data_simulation(
    tree: &HierarchyTree,
    cfg: RoadsConfig,
    schema: Schema,
    records_per_server: Vec<Vec<Record>>,
    delays: roads_netsim::DelaySpace,
) -> Simulator<DataNode> {
    let n = records_per_server.len();
    assert_eq!(tree.capacity(), n, "one record set per server");
    let mut nodes = Vec::with_capacity(n);
    for (i, records) in records_per_server.into_iter().enumerate() {
        let s = ServerId(i as u32);
        let parent = tree.parent(s).map(|p| NodeId(p.0));
        let children = tree.children(s).iter().map(|c| NodeId(c.0)).collect();
        nodes.push(DataNode::new(
            cfg,
            schema.clone(),
            parent,
            children,
            records,
        ));
    }
    let mut sim = Simulator::new(nodes, delays);
    for i in 0..n {
        let offset = (cfg.ts_ms * i as u64 / n as u64).max(1);
        sim.schedule_timer(SimTime::from_millis(offset), NodeId(i as u32), TIMER_AGG);
    }
    sim
}

/// Issue a query into a running data-plane simulation at `entry`,
/// originating from the same node (client co-located). With a flight
/// recorder attached the query gets a fresh trace id automatically.
pub fn issue_query(sim: &mut Simulator<DataNode>, entry: NodeId, query: Query) {
    let trace = match sim.recorder() {
        Some(rec) => rec.next_trace_id(),
        None => TraceId::NONE,
    };
    issue_query_traced(sim, entry, query, trace);
}

/// [`issue_query`] under a caller-chosen trace id; returns the root span
/// of the query's causal tree ([`SpanId::NONE`] without a recorder).
pub fn issue_query_traced(
    sim: &mut Simulator<DataNode>,
    entry: NodeId,
    query: Query,
    trace: TraceId,
) -> SpanId {
    let bytes = query.wire_size() + MSG_HEADER_BYTES + 6;
    sim.inject_traced(
        sim.now(),
        entry,
        entry,
        DataMsg::Query {
            query,
            origin: entry,
            entry: true,
            local_only: false,
        },
        bytes,
        TrafficClass::Query,
        trace,
    )
}

/// Run the data plane until `until`, sampling federation-wide gauges into
/// `timeline` at its configured interval: fresh child summaries
/// (`live_summaries`), overlay replicas (`overlay_replicas`), the busiest
/// server's share of all deliveries (`load_share_max`) and total
/// deliveries (`deliveries`). Returns events processed.
pub fn run_with_timeline(
    sim: &mut Simulator<DataNode>,
    until: SimTime,
    timeline: &mut Timeline,
) -> u64 {
    let mut processed = 0;
    loop {
        let now = sim.now();
        let now_ms = now.as_millis_f64();
        if timeline.due(now_ms) {
            let t_ms = now.as_micros() / 1000;
            let live: usize = sim
                .nodes()
                .map(|(_, n)| n.fresh_child_summaries(t_ms))
                .sum();
            let replicas: usize = sim.nodes().map(|(_, n)| n.fresh_replicas(t_ms)).sum();
            let deliveries = sim.deliveries();
            let total: u64 = deliveries.iter().sum();
            let max = deliveries.iter().copied().max().unwrap_or(0);
            let share = if total == 0 {
                0.0
            } else {
                max as f64 / total as f64
            };
            timeline.sample(
                now_ms,
                [
                    ("live_summaries", live as f64),
                    ("overlay_replicas", replicas as f64),
                    ("load_share_max", share),
                    ("deliveries", total as f64),
                ],
            );
        }
        if now >= until {
            break;
        }
        let step_to = SimTime::from_millis_f64(now_ms + timeline.interval_ms())
            .min(until)
            .max(now + SimTime(1));
        processed += sim.run_until(step_to);
    }
    processed
}

/// Snapshot a data-plane simulation's counters into a telemetry registry:
/// processed events plus the per-class traffic totals under `protocol.*`.
/// Additive — call once at the end of a run (or per measurement window
/// after [`Simulator::clear_stats`]).
pub fn record_simulation_telemetry(reg: &roads_telemetry::Registry, sim: &Simulator<DataNode>) {
    reg.counter("protocol.events").add(sim.events_processed());
    reg.counter("protocol.messages_dropped")
        .add(sim.messages_dropped());
    sim.stats().record_into(reg, "protocol");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoadsNetwork;
    use roads_netsim::DelaySpace;
    use roads_records::{OwnerId, QueryBuilder, RecordId, Value};
    use roads_summary::SummaryConfig;

    fn records(n: usize) -> Vec<Vec<Record>> {
        (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect()
    }

    fn config() -> RoadsConfig {
        RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(100),
            ts_ms: 2_000,
            summary_ttl_ms: 7_000,
            ..RoadsConfig::paper_default()
        }
    }

    fn converged_sim(n: usize) -> (HierarchyTree, Simulator<DataNode>, Schema) {
        let schema = Schema::unit_numeric(1);
        let cfg = config();
        let tree = HierarchyTree::build(n, cfg.max_children);
        let mut sim = build_data_simulation(
            &tree,
            cfg,
            schema.clone(),
            records(n),
            DelaySpace::paper(n, 17),
        );
        // A few aggregation rounds: summaries need depth-many rounds to
        // reach the root and depth-many more to replicate back down.
        sim.run_until(SimTime::from_millis(30_000));
        (tree, sim, schema)
    }

    #[test]
    fn replicas_converge_to_overlay_spec() {
        let (tree, sim, _) = converged_sim(27);
        let now_ms = sim.now().as_micros() / 1000;
        for s in tree.servers() {
            let expected = crate::overlay::replication_set(&tree, s).len();
            let node = sim.node(NodeId(s.0));
            assert_eq!(
                node.fresh_replicas(now_ms),
                expected,
                "server {s} replica count"
            );
        }
    }

    #[test]
    fn live_query_matches_converged_engine() {
        let (tree, mut sim, schema) = converged_sim(27);
        let net = RoadsNetwork::with_tree(schema.clone(), config(), tree, records(27));
        for target in [0usize, 9, 26] {
            let v = target as f64 / 27.0;
            let q = QueryBuilder::new(&schema, QueryId(1000 + target as u64))
                .range("x0", v - 1e-4, v + 1e-4)
                .build();
            let gt = net.matching_servers(&q);
            let entry = NodeId(((target + 5) % 27) as u32);
            issue_query(&mut sim, entry, q.clone());
            let deadline = sim.now() + SimTime::from_secs(20);
            sim.run_until(deadline);
            let (servers, recs) = sim
                .node(entry)
                .result(q.id)
                .expect("query issued from entry");
            assert_eq!(servers as usize, gt.len(), "target {target}");
            assert_eq!(recs as usize, gt.len(), "one record per matching server");
        }
    }

    #[test]
    fn simulation_telemetry_snapshot() {
        let (_, sim, _) = converged_sim(9);
        let reg = roads_telemetry::Registry::new();
        record_simulation_telemetry(&reg, &sim);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["protocol.events"], sim.events_processed());
        assert_eq!(
            snap.counters["protocol.bytes.update"],
            sim.stats().bytes(TrafficClass::Update)
        );
        assert!(snap.counters["protocol.bytes.update"] > 0);
    }

    #[test]
    fn crashed_server_fades_from_parent_view() {
        let (tree, mut sim, _) = converged_sim(27);
        let leaf = *tree.leaves().iter().max().unwrap();
        let parent = tree.parent(leaf).unwrap();
        let now_ms = sim.now().as_micros() / 1000;
        assert!(sim
            .node(NodeId(parent.0))
            .sees_child(NodeId(leaf.0), now_ms));
        sim.node_mut(NodeId(leaf.0)).crash();
        // TTL is 7s; run well past it.
        let deadline = sim.now() + SimTime::from_secs(20);
        sim.run_until(deadline);
        let now_ms = sim.now().as_micros() / 1000;
        assert!(
            !sim.node(NodeId(parent.0))
                .sees_child(NodeId(leaf.0), now_ms),
            "soft state must expire without explicit teardown"
        );
    }

    #[test]
    fn record_update_propagates_to_root_view() {
        let (tree, mut sim, schema) = converged_sim(12);
        // Give a leaf a brand-new record value no one else has.
        let leaf = *tree.leaves().iter().max().unwrap();
        sim.node_mut(NodeId(leaf.0))
            .set_records(vec![Record::new_unchecked(
                RecordId(999),
                OwnerId(leaf.0),
                vec![Value::Float(0.987_654)],
            )]);
        let deadline = sim.now() + SimTime::from_secs(20);
        sim.run_until(deadline);
        // Query for the new value from an unrelated entry.
        let q = QueryBuilder::new(&schema, QueryId(77))
            .range("x0", 0.987, 0.988)
            .build();
        let entry = NodeId(tree.root().0);
        issue_query(&mut sim, entry, q.clone());
        let deadline = sim.now() + SimTime::from_secs(20);
        sim.run_until(deadline);
        let (servers, _) = sim.node(entry).result(q.id).expect("result recorded");
        assert_eq!(servers, 1, "the updated leaf must be discoverable");
    }

    #[test]
    fn flight_recorder_captures_data_plane_events() {
        use roads_telemetry::Recorder;
        use std::sync::Arc;
        let schema = Schema::unit_numeric(1);
        let cfg = config();
        let tree = HierarchyTree::build(27, cfg.max_children);
        let mut sim = build_data_simulation(
            &tree,
            cfg,
            schema.clone(),
            records(27),
            DelaySpace::paper(27, 17),
        );
        let rec = Arc::new(Recorder::new(1 << 16));
        sim.set_recorder(rec.clone());
        sim.run_until(SimTime::from_millis(30_000));
        let events = rec.events();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert!(count(EventKind::SummaryPublish) > 0, "publishes recorded");
        assert!(count(EventKind::SummaryMerge) > 0, "merges recorded");
        assert!(count(EventKind::ReplicaInstall) > 0, "installs recorded");
        assert!(
            count(EventKind::ReplicaRefresh) > 0,
            "repeat rounds refresh replicas"
        );
        // Crash a leaf: its soft state must visibly expire.
        let leaf = *tree.leaves().iter().max().unwrap();
        sim.node_mut(NodeId(leaf.0)).crash();
        let deadline = sim.now() + SimTime::from_secs(20);
        sim.run_until(deadline);
        assert!(
            rec.events().iter().any(|e| e.kind == EventKind::TtlExpire),
            "crash must surface as ttl-expire events"
        );
    }

    #[test]
    fn timeline_tracks_convergence() {
        let schema = Schema::unit_numeric(1);
        let cfg = config();
        let tree = HierarchyTree::build(27, cfg.max_children);
        let mut sim =
            build_data_simulation(&tree, cfg, schema, records(27), DelaySpace::paper(27, 17));
        let mut timeline = Timeline::new(2_000.0);
        run_with_timeline(&mut sim, SimTime::from_millis(30_000), &mut timeline);
        let series = timeline.series();
        let live = series
            .iter()
            .find(|s| s.name == "live_summaries")
            .expect("live_summaries sampled");
        assert!(live.points.len() >= 10, "one sample per interval");
        // Before the first aggregation round nothing is live; once
        // converged every parent sees every child (26 edges in a 27-tree).
        assert_eq!(live.points.first().unwrap().1, 0.0);
        assert_eq!(live.points.last().unwrap().1, 26.0);
        assert!(timeline
            .series()
            .iter()
            .any(|s| s.name == "overlay_replicas"));
        assert!(timeline.series().iter().any(|s| s.name == "load_share_max"));
    }

    #[test]
    fn update_traffic_flows_every_period() {
        let (_, sim, _) = converged_sim(12);
        let update_bytes = sim.stats().bytes(TrafficClass::Update);
        assert!(update_bytes > 0);
        // ~15 aggregation rounds for 12 nodes: 11 bottom-up + 11 top-down
        // messages per round, give or take staggering.
        let msgs = sim.stats().messages(TrafficClass::Update);
        assert!(msgs > 100, "sustained periodic traffic, got {msgs}");
    }
}
