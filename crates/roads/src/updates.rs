//! Update-round overhead accounting (§IV-B, Figures 4 and 8).
//!
//! Every `ts` seconds ROADS refreshes its soft state in three waves:
//!
//! 1. **Summary export** — each resource owner exports one summary of its
//!    records to its attachment point (`O(rmN)` bytes total).
//! 2. **Bottom-up aggregation** — each non-root server sends its branch
//!    summary to its parent (`n − 1` messages, one per tree link).
//! 3. **Top-down replication** — each parent sends every child the branch
//!    summaries of that child's siblings plus all replicas the parent holds
//!    from above (its own branch summary, its siblings', its ancestors' and
//!    their siblings') — `O(k·n·log n)` summaries in total.
//!
//! The functions below count those bytes over a converged
//! [`RoadsNetwork`], using each summary's real wire size, so Figures 4 and
//! 8 regenerate from the same code path that answers queries.

use crate::engine::RoadsNetwork;
use crate::tree::ServerId;
use roads_records::wire::MSG_HEADER_BYTES;
use roads_records::WireSize;
use roads_telemetry::{Event, EventKind, Recorder, SpanId, TraceId};
use std::collections::BTreeMap;

/// Byte/message counts for one ROADS update round, split by wave.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateBreakdown {
    /// Owner → attachment-point summary exports.
    pub export_bytes: u64,
    /// Owner → attachment-point messages.
    pub export_messages: u64,
    /// Child → parent branch-summary aggregation.
    pub aggregation_bytes: u64,
    /// Child → parent messages.
    pub aggregation_messages: u64,
    /// Parent → child replication fan-out.
    pub replication_bytes: u64,
    /// Parent → child messages.
    pub replication_messages: u64,
    /// Summaries carried by replication messages (the paper's
    /// `O(k·n·log n)` term).
    pub replication_summaries: u64,
}

impl UpdateBreakdown {
    /// Total bytes in the round.
    pub fn total_bytes(&self) -> u64 {
        self.export_bytes + self.aggregation_bytes + self.replication_bytes
    }

    /// Total messages in the round.
    pub fn total_messages(&self) -> u64 {
        self.export_messages + self.aggregation_messages + self.replication_messages
    }

    /// Per-second byte rate given the summary refresh period `ts`.
    /// A zero period means "no periodic refresh", so the rate is 0 —
    /// not the `inf`/`NaN` a bare division would produce.
    pub fn bytes_per_second(&self, ts_ms: u64) -> f64 {
        if ts_ms == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / (ts_ms as f64 / 1000.0)
    }
}

/// Account one full update round over a converged network.
pub fn update_round(net: &RoadsNetwork) -> UpdateBreakdown {
    let mut out = UpdateBreakdown::default();
    let tree = net.tree();

    for s in tree.servers() {
        // Wave 1: each server's attached owners export one summary. In the
        // simulation every server has one attached owner (itself); the
        // export crosses the owner→server edge even when co-located,
        // matching the analysis' O(rmN) term.
        let local = net.local_summary(s).wire_size() + MSG_HEADER_BYTES;
        out.export_bytes += local as u64;
        out.export_messages += 1;

        // Wave 2: branch summary to the parent.
        if tree.parent(s).is_some() {
            let branch = net.branch_summary(s).wire_size() + MSG_HEADER_BYTES;
            out.aggregation_bytes += branch as u64;
            out.aggregation_messages += 1;
        }

        // Wave 3: replication fan-out to each child. The message to child c
        // carries: branch summaries of c's siblings, the parent's own
        // branch summary (c's first ancestor), and everything the parent
        // replicates from above (its siblings, ancestors, ancestors'
        // siblings) — which become c's ancestor/ancestor-sibling replicas.
        let parent_replicas = net.replica_set(s).all();
        for &c in tree.children(s) {
            let mut summaries = 0u64;
            let mut bytes = MSG_HEADER_BYTES as u64;
            for &sib in tree.children(s).iter().filter(|&&x| x != c) {
                bytes += net.branch_summary(sib).wire_size() as u64;
                summaries += 1;
            }
            bytes += net.branch_summary(s).wire_size() as u64;
            summaries += 1;
            for &r in &parent_replicas {
                bytes += net.branch_summary(r).wire_size() as u64;
                summaries += 1;
            }
            out.replication_bytes += bytes;
            out.replication_messages += 1;
            out.replication_summaries += summaries;
        }
    }
    out
}

/// One *full* (non-incremental) update round: re-derive every summary from
/// raw records — rebuild all shard summaries, refresh local summaries,
/// re-aggregate every branch — then account the three waves over the whole
/// federation. This is what a system without the delta plane pays every
/// refresh period, no matter how little changed.
pub fn update_round_full(net: &mut RoadsNetwork) -> UpdateBreakdown {
    net.refresh_all_summaries();
    update_round(net)
}

/// Apply `delta` and account one *incremental* update round: only dirty
/// servers re-export their local summary (wave 1), only dirty branches
/// re-send to their parents (wave 2), and the replication fan-out (wave 3)
/// carries only summaries that actually changed — a parent→child message
/// (and its header) is counted only when it carries at least one dirty
/// summary. With `d` changed subtrees in a tree of depth `L`, the round
/// costs O(d·L) summary transmissions instead of [`update_round`]'s O(n)
/// plus [`update_round_full`]'s O(records) re-aggregation.
pub fn update_round_delta(
    net: &mut RoadsNetwork,
    delta: &crate::store::RecordDelta,
) -> (UpdateBreakdown, crate::store::DeltaOutcome) {
    let outcome = net.apply(delta);
    let n = net.len();
    let mut local_dirty = vec![false; n];
    for &s in &outcome.dirty {
        local_dirty[s.index()] = true;
    }
    let mut branch_dirty = vec![false; n];
    for &s in &outcome.dirty_branches {
        branch_dirty[s.index()] = true;
    }

    let mut out = UpdateBreakdown::default();
    let tree = net.tree();
    for s in tree.servers() {
        // Wave 1: only servers whose attached records changed re-export.
        if local_dirty[s.index()] {
            out.export_bytes += (net.local_summary(s).wire_size() + MSG_HEADER_BYTES) as u64;
            out.export_messages += 1;
        }

        // Wave 2: only recomputed branch summaries flow to the parent.
        if branch_dirty[s.index()] && tree.parent(s).is_some() {
            out.aggregation_bytes += (net.branch_summary(s).wire_size() + MSG_HEADER_BYTES) as u64;
            out.aggregation_messages += 1;
        }

        // Wave 3: the fan-out message to child c carries only the *dirty*
        // subset of what a full round would send (c's siblings, this
        // server's own branch, the replicas held from above). Clean rounds
        // send nothing — no summaries, no header.
        let parent_replicas = net.replica_set(s).all();
        for &c in tree.children(s) {
            let mut summaries = 0u64;
            let mut bytes = 0u64;
            for &sib in tree.children(s).iter().filter(|&&x| x != c) {
                if branch_dirty[sib.index()] {
                    bytes += net.branch_summary(sib).wire_size() as u64;
                    summaries += 1;
                }
            }
            if branch_dirty[s.index()] {
                bytes += net.branch_summary(s).wire_size() as u64;
                summaries += 1;
            }
            for &r in &parent_replicas {
                if branch_dirty[r.index()] {
                    bytes += net.branch_summary(r).wire_size() as u64;
                    summaries += 1;
                }
            }
            if summaries > 0 {
                out.replication_bytes += bytes + MSG_HEADER_BYTES as u64;
                out.replication_messages += 1;
                out.replication_summaries += summaries;
            }
        }
    }
    (out, outcome)
}

/// Account one update round *and* apply its replication wave to an
/// epoch-stamped [`ReplicaLedger`](crate::audit::ReplicaLedger): the
/// ledger's epoch advances by one and every overlay entry whose holder and
/// target are both live re-pushes its copy. Entries touching a dead server
/// keep their stale copy — the staleness the audit plane measures.
pub fn update_round_stamped(
    net: &RoadsNetwork,
    ledger: &mut crate::audit::ReplicaLedger,
    live: &[bool],
) -> UpdateBreakdown {
    let out = update_round(net);
    ledger.refresh(net, live);
    out
}

/// Record one analytic update round into the flight recorder as a
/// synthetic span tree: a root `Mark` span covering the round, one
/// `SummaryPublish` span per non-root server parented on its tree
/// parent's span (detail = branch-summary wire bytes), and a final
/// `SummaryMerge` instant at the root. Timestamps are synthetic — deeper
/// servers publish earlier, mirroring the bottom-up aggregation wave —
/// so the exported trace shows the wave structure, not wall time.
pub fn record_update_round_events(rec: &Recorder, net: &RoadsNetwork) -> TraceId {
    let tree = net.tree();
    let trace = rec.next_trace_id();
    let levels = tree.levels() as u64;
    let root = tree.root();
    let root_span = rec.record_span(
        trace,
        SpanId::NONE,
        root.0,
        EventKind::Mark,
        0,
        (levels + 1) * 1_000,
        0,
    );
    let mut spans: BTreeMap<ServerId, SpanId> = BTreeMap::new();
    spans.insert(root, root_span);
    // Parents before children so every publish span has its parent's span.
    let mut order = tree.servers();
    order.sort_by_key(|&s| tree.depth(s));
    let mut merged = 0u64;
    for s in order {
        if s == root {
            continue;
        }
        let parent = tree.parent(s).expect("non-root server has a parent");
        let depth = tree.depth(s) as u64;
        let at_us = levels.saturating_sub(depth) * 1_000;
        let bytes = net.branch_summary(s).wire_size() as u64;
        let span = rec.record_span(
            trace,
            spans[&parent],
            s.0,
            EventKind::SummaryPublish,
            at_us,
            1_000,
            bytes,
        );
        spans.insert(s, span);
        merged += 1;
    }
    rec.record(Event {
        at_us: (levels + 1) * 1_000,
        dur_us: 0,
        node: root.0,
        trace,
        span: root_span,
        parent: SpanId::NONE,
        kind: EventKind::SummaryMerge,
        detail: merged,
    });
    trace
}

/// Summaries replicated *to* one server per round (its replication-set
/// size) — the per-node maintenance load of Eq. (4), worst-case
/// `O(k² log n)` at the deepest level.
pub fn per_node_replication_load(net: &RoadsNetwork, s: ServerId) -> usize {
    // The parent's fan-out message to `s` carries exactly `s`'s replication
    // set; `s` in turn forwards to each of its children.
    let inbound = net.replica_set(s).len();
    let outbound: usize = net
        .tree()
        .children(s)
        .iter()
        .map(|&c| net.replica_set(c).len())
        .sum();
    inbound + outbound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoadsConfig;
    use roads_records::{OwnerId, Record, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;

    fn network(n: usize, degree: usize, records_per_node: usize, buckets: usize) -> RoadsNetwork {
        let schema = Schema::unit_numeric(4);
        let cfg = RoadsConfig {
            max_children: degree,
            summary: SummaryConfig::with_buckets(buckets),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                (0..records_per_node)
                    .map(|i| {
                        Record::new_unchecked(
                            RecordId((s * records_per_node + i) as u64),
                            OwnerId(s as u32),
                            (0..4)
                                .map(|a| Value::Float(((s + i + a) % 100) as f64 / 100.0))
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect();
        RoadsNetwork::build(schema, cfg, records)
    }

    #[test]
    fn recorded_update_round_spans_mirror_the_tree() {
        let net = network(40, 3, 2, 32);
        let rec = Recorder::new(4096);
        let trace = record_update_round_events(&rec, &net);
        let events = rec.events();
        let tree_events = roads_telemetry::trace_events(&events, trace);
        // One Mark root + one publish per non-root + one merge instant.
        assert_eq!(tree_events.len(), 40 + 1);
        let root = roads_telemetry::span_tree_root(&tree_events, trace)
            .expect("update-round trace forms a valid span tree");
        let root_ev = tree_events.iter().find(|e| e.span == root).unwrap();
        assert_eq!(root_ev.node, net.tree().root().0);
        let publishes = tree_events
            .iter()
            .filter(|e| e.kind == EventKind::SummaryPublish)
            .count();
        assert_eq!(publishes, 39);
        assert!(tree_events
            .iter()
            .any(|e| e.kind == EventKind::SummaryMerge && e.detail == 39));
    }

    #[test]
    fn message_counts_match_structure() {
        let net = network(40, 3, 5, 64);
        let b = update_round(&net);
        assert_eq!(b.export_messages, 40);
        assert_eq!(b.aggregation_messages, 39, "one per tree link");
        assert_eq!(b.replication_messages, 39, "one per tree link");
    }

    #[test]
    fn update_bytes_independent_of_record_count() {
        // The heart of Fig. 8: constant-size summaries make the round cost
        // independent of how many records each node stores.
        let small = update_round(&network(30, 3, 2, 64));
        let large = update_round(&network(30, 3, 200, 64));
        assert_eq!(small.total_bytes(), large.total_bytes());
    }

    #[test]
    fn update_bytes_scale_with_buckets() {
        let coarse = update_round(&network(30, 3, 5, 32));
        let fine = update_round(&network(30, 3, 5, 512));
        assert!(fine.total_bytes() > coarse.total_bytes() * 8);
    }

    #[test]
    fn replication_summary_count_matches_knlogn_shape() {
        // Total replicated summaries per round = Σ_children |replica_set(c)|;
        // for a full k-ary tree of L levels that is Θ(k·n·L).
        let net = network(156, 5, 1, 32); // full 4-level 5-ary tree
        let b = update_round(&net);
        let direct: u64 = net
            .tree()
            .servers()
            .iter()
            .filter(|&&s| net.tree().parent(s).is_some())
            .map(|&s| net.replica_set(s).len() as u64)
            .sum();
        assert_eq!(b.replication_summaries, direct);
        // Θ(k·n·L) ballpark: between n and k·n·L.
        let (k, n, l) = (5u64, 156u64, 4u64);
        assert!(b.replication_summaries > n);
        assert!(b.replication_summaries <= k * n * l);
    }

    #[test]
    fn per_node_load_peaks_at_depth() {
        let net = network(156, 5, 1, 32);
        let tree = net.tree();
        let leaf = *tree.leaves().iter().max().unwrap();
        let root_load = per_node_replication_load(&net, tree.root());
        let leaf_load = per_node_replication_load(&net, leaf);
        // Leaves have the largest replica sets (deepest level), but no
        // children to forward to; mid-tree nodes carry both. The worst case
        // §IV places at the leaves' parents — just check monotonic growth
        // of inbound load with depth.
        assert!(net.replica_set(leaf).len() > net.replica_set(tree.root()).len());
        let _ = (root_load, leaf_load);
    }

    #[test]
    fn stamped_round_advances_ledger_epoch() {
        let net = network(40, 3, 2, 64);
        let mut ledger = crate::audit::ReplicaLedger::new(&net);
        let live = vec![true; net.len()];
        let plain = update_round(&net);
        let stamped = update_round_stamped(&net, &mut ledger, &live);
        assert_eq!(plain, stamped, "accounting unchanged by stamping");
        assert_eq!(ledger.epoch(), 1);
        assert_eq!(ledger.staleness_p99(), 0, "all-live wave refreshes all");
    }

    #[test]
    fn bytes_per_second_scales_with_ts() {
        let net = network(20, 3, 2, 32);
        let b = update_round(&net);
        let fast = b.bytes_per_second(1_000);
        let slow = b.bytes_per_second(10_000);
        assert!((fast / slow - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_per_second_zero_period_is_zero_not_inf() {
        let net = network(10, 3, 1, 32);
        let b = update_round(&net);
        assert!(b.total_bytes() > 0);
        let rate = b.bytes_per_second(0);
        assert_eq!(rate, 0.0);
        assert!(rate.is_finite());
    }

    #[test]
    fn full_round_matches_plain_accounting_on_converged_state() {
        let mut net = network(40, 3, 5, 64);
        let plain = update_round(&net);
        let full = update_round_full(&mut net);
        assert_eq!(
            plain, full,
            "re-deriving converged summaries changes nothing"
        );
    }

    #[test]
    fn empty_delta_round_costs_nothing() {
        let mut net = network(40, 3, 5, 64);
        let (b, outcome) = update_round_delta(&mut net, &crate::store::RecordDelta::new());
        assert_eq!(b, UpdateBreakdown::default());
        assert!(outcome.dirty.is_empty());
    }

    #[test]
    fn delta_round_touches_only_the_dirty_paths() {
        let mut net = network(40, 3, 5, 64);
        let schema = net.schema().clone();
        let leaf = *net.tree().leaves().iter().max().unwrap();
        let depth = net.tree().depth(leaf);
        let mut delta = crate::store::RecordDelta::new();
        delta.insert(
            leaf,
            Record::new_unchecked(
                RecordId(9_000),
                OwnerId(leaf.0),
                (0..4).map(|_| Value::Float(0.5)).collect(),
            ),
        );
        let full = update_round(&net);
        let (b, outcome) = update_round_delta(&mut net, &delta);
        assert_eq!(outcome.dirty, vec![leaf]);
        // One export; one aggregation hop per non-root dirty branch (the
        // leaf's root path).
        assert_eq!(b.export_messages, 1);
        assert_eq!(b.aggregation_messages, depth as u64);
        assert_eq!(outcome.dirty_branches.len(), depth + 1);
        // The incremental round moves far fewer bytes than a full one.
        assert!(b.total_bytes() < full.total_bytes() / 4);
        assert!(b.replication_summaries < full.replication_summaries);
        // And the network still answers for the new record.
        let q = roads_records::QueryBuilder::new(&schema, roads_records::QueryId(1))
            .range("x0", 0.499, 0.501)
            .build();
        assert!(net.branch_summary(net.tree().root()).may_match(&q));
        let _ = schema;
    }

    #[test]
    fn delta_round_state_matches_full_round_state() {
        let mut incremental = network(40, 3, 5, 64);
        let mut full = incremental.clone();
        let mk = |id: u64, v: f64| {
            Record::new_unchecked(
                RecordId(id),
                OwnerId(0),
                (0..4).map(|_| Value::Float(v)).collect(),
            )
        };
        let mut delta = crate::store::RecordDelta::new();
        delta
            .insert(ServerId(3), mk(10_000, 0.11))
            .remove(ServerId(7), RecordId(35)) // server 7 holds ids 35..40
            .update(ServerId(12), mk(61, 0.99)); // server 12 holds ids 60..65
        let (_, _) = update_round_delta(&mut incremental, &delta);
        full.apply(&delta);
        let _ = update_round_full(&mut full);
        for s in incremental.tree().servers() {
            assert_eq!(incremental.local_summary(s), full.local_summary(s), "{s}");
            assert_eq!(incremental.branch_summary(s), full.branch_summary(s), "{s}");
        }
    }
}
