//! Property tests: hierarchy, overlay and query-execution invariants.

use proptest::prelude::*;
use roads_core::overlay::coverage;
use roads_core::{
    execute_query, execute_query_mode, replication_set, ForwardingMode, HierarchyTree, RoadsConfig,
    RoadsNetwork, SearchScope, ServerId,
};
use roads_netsim::DelaySpace;
use roads_records::{AttrId, OwnerId, Predicate, Query, QueryId, Record, RecordId, Schema, Value};
use roads_summary::SummaryConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn built_trees_always_valid(n in 1usize..200, k in 1usize..12) {
        let t = HierarchyTree::build(n, k);
        prop_assert!(t.validate().is_ok());
        prop_assert_eq!(t.len(), n);
        for s in t.servers() {
            prop_assert!(t.children(s).len() <= k);
        }
    }

    #[test]
    fn build_depth_near_optimal(n in 2usize..300, k in 2usize..9) {
        let t = HierarchyTree::build(n, k);
        // A perfect k-ary tree needs ceil(log_k(n(k-1)+1)) levels; the
        // greedy walk may add one.
        let optimal = {
            let mut cap = 1usize;
            let mut width = 1usize;
            let mut levels = 1usize;
            while cap < n {
                width *= k;
                cap += width;
                levels += 1;
            }
            levels
        };
        prop_assert!(
            t.levels() <= optimal + 1,
            "levels {} vs optimal {optimal} (n={n}, k={k})",
            t.levels()
        );
    }

    #[test]
    fn overlay_coverage_complete(n in 1usize..150, k in 2usize..8) {
        let t = HierarchyTree::build(n, k);
        for s in t.servers() {
            prop_assert_eq!(coverage(&t, s).len(), n, "server {} (n={}, k={})", s, n, k);
        }
    }

    #[test]
    fn replication_set_disjoint_categories(n in 2usize..120, k in 2usize..8) {
        let t = HierarchyTree::build(n, k);
        for s in t.servers() {
            let rs = replication_set(&t, s);
            let all = rs.all();
            let mut dedup = all.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(all.len(), dedup.len(), "overlapping replica categories at {}", s);
            prop_assert!(!all.contains(&s), "a server never replicates itself");
        }
    }

    #[test]
    fn removal_and_rejoin_preserve_validity(
        n in 5usize..80,
        k in 2usize..6,
        removals in prop::collection::vec(any::<u32>(), 1..8),
    ) {
        let mut t = HierarchyTree::build(n, k);
        for seed in removals {
            let victims: Vec<ServerId> = t
                .servers()
                .into_iter()
                .filter(|&s| s != t.root())
                .collect();
            if victims.is_empty() {
                break;
            }
            let victim = victims[seed as usize % victims.len()];
            let grandparent = t.parent(victim).and_then(|p| t.parent(p)).unwrap_or(t.root());
            let orphans = t.remove(victim).unwrap();
            for o in orphans {
                let entry = if t.contains(grandparent) { grandparent } else { t.root() };
                t.rejoin_subtree(o, entry, k).unwrap();
            }
            prop_assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn query_execution_complete_and_exact(
        n in 2usize..60,
        k in 2usize..6,
        points in prop::collection::vec(0.0f64..1.0, 2..60),
        lo in 0.0f64..1.0,
        w in 0.0f64..0.4,
        entry_seed in any::<u32>(),
    ) {
        // Server i holds one record at points[i % points.len()].
        let schema = Schema::unit_numeric(1);
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| vec![Record::new_unchecked(
                RecordId(s as u64),
                OwnerId(s as u32),
                vec![Value::Float(points[s % points.len()])],
            )])
            .collect();
        let cfg = RoadsConfig {
            max_children: k,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        };
        let net = RoadsNetwork::build(schema, cfg, records.clone());
        let delays = DelaySpace::paper(n, 5);
        let hi = (lo + w).min(1.0);
        let q = Query::new(QueryId(0), vec![Predicate::Range { attr: AttrId(0), lo, hi }]);
        let expected: Vec<ServerId> = (0..n)
            .filter(|&s| {
                let v = points[s % points.len()];
                lo <= v && v <= hi
            })
            .map(|s| ServerId(s as u32))
            .collect();
        let entry = ServerId(entry_seed % n as u32);
        let out = execute_query(&net, &delays, &q, entry, SearchScope::full());
        prop_assert_eq!(&out.matching_servers, &expected, "entry {}", entry);

        // Both forwarding modes find the same match set; client redirects
        // can only be slower.
        let redirect = execute_query_mode(
            &net, &delays, &q, entry, SearchScope::full(), ForwardingMode::ClientRedirect,
        );
        prop_assert_eq!(&redirect.matching_servers, &expected);
        prop_assert!(redirect.latency_ms + 1e-9 >= out.latency_ms);
    }

    #[test]
    fn root_path_is_consistent(n in 2usize..150, k in 2usize..8, pick in any::<u32>()) {
        let t = HierarchyTree::build(n, k);
        let servers = t.servers();
        let s = servers[pick as usize % servers.len()];
        let path = t.root_path(s);
        prop_assert_eq!(path[0], t.root());
        prop_assert_eq!(*path.last().unwrap(), s);
        for w in path.windows(2) {
            prop_assert_eq!(t.parent(w[1]), Some(w[0]));
        }
        prop_assert_eq!(path.len(), t.depth(s) + 1);
    }
}
