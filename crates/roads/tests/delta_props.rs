//! Property tests: the incremental delta update path is equivalent to a
//! full rebuild.
//!
//! For random trees, record populations and insert/remove/update schedules
//! — including the empty-delta and whole-population-churn extremes — a
//! network maintained by [`update_round_delta`] must be indistinguishable
//! from one built from scratch over the final record sets: identical local
//! summaries, identical branch summaries, identical replica sets, and
//! byte-identical query recall.

use proptest::prelude::*;
use roads_core::{
    execute_query, update_round_delta, RecordDelta, RoadsConfig, RoadsNetwork, SearchScope,
    ServerId,
};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_summary::SummaryConfig;

const ATTRS: usize = 2;

fn mk_record(id: u64, v: f64) -> Record {
    // Spread the second attribute deterministically off the first so both
    // histograms see churn.
    let w = (v * 7.0).fract();
    Record::new_unchecked(
        RecordId(id),
        OwnerId((id % 1000) as u32),
        vec![Value::Float(v), Value::Float(w)],
    )
}

fn build_net(n_servers: usize, max_children: usize, seeds: &[(u8, u16)]) -> RoadsNetwork {
    let schema = Schema::unit_numeric(ATTRS);
    let cfg = RoadsConfig {
        max_children,
        summary: SummaryConfig::with_buckets(64),
        ..RoadsConfig::paper_default()
    };
    let mut records: Vec<Vec<Record>> = vec![Vec::new(); n_servers];
    for (i, &(srv, val)) in seeds.iter().enumerate() {
        let s = srv as usize % n_servers;
        records[s].push(mk_record(i as u64, val as f64 / u16::MAX as f64));
    }
    RoadsNetwork::build(schema, cfg, records)
}

/// One randomly generated mutation: 0 = insert fresh, 1 = remove some
/// existing (or absent) id, 2 = update some existing (or absent) id.
fn schedule_to_delta(net: &RoadsNetwork, ops: &[(u8, u8, u16)], next_id: &mut u64) -> RecordDelta {
    let n = net.len();
    // Collect the currently attached ids so removals/updates mostly hit.
    let mut attached: Vec<(ServerId, RecordId)> = Vec::new();
    for s in 0..n as u32 {
        for r in net.records(ServerId(s)) {
            attached.push((ServerId(s), r.id));
        }
    }
    let mut delta = RecordDelta::new();
    for &(kind, srv, val) in ops {
        let v = val as f64 / u16::MAX as f64;
        match kind % 3 {
            0 => {
                *next_id += 1;
                delta.insert(ServerId(srv as u32 % n as u32), mk_record(*next_id, v));
            }
            1 => {
                if attached.is_empty() {
                    // Nothing to remove: exercise the rejected-change path.
                    delta.remove(ServerId(srv as u32 % n as u32), RecordId(u64::MAX));
                } else {
                    let (s, id) = attached[(srv as usize + val as usize) % attached.len()];
                    delta.remove(s, id);
                }
            }
            _ => {
                if attached.is_empty() {
                    *next_id += 1;
                    delta.update(ServerId(srv as u32 % n as u32), mk_record(*next_id, v));
                } else {
                    let (s, id) = attached[(srv as usize + val as usize) % attached.len()];
                    delta.update(s, mk_record(id.0, v));
                }
            }
        }
    }
    delta
}

/// Assert the incrementally maintained network is indistinguishable from a
/// from-scratch build over its final record sets.
fn assert_equivalent(incremental: &RoadsNetwork, queries: &[Query]) -> Result<(), TestCaseError> {
    let records: Vec<Vec<Record>> = (0..incremental.len() as u32)
        .map(|s| incremental.records(ServerId(s)))
        .collect();
    let rebuilt = RoadsNetwork::build(incremental.schema().clone(), *incremental.config(), records);
    for s in incremental.tree().servers() {
        prop_assert_eq!(
            incremental.local_summary(s),
            rebuilt.local_summary(s),
            "local summary diverged at {}",
            s
        );
        prop_assert_eq!(
            incremental.branch_summary(s),
            rebuilt.branch_summary(s),
            "branch summary diverged at {}",
            s
        );
        prop_assert_eq!(
            incremental.replica_set(s),
            rebuilt.replica_set(s),
            "replica set diverged at {}",
            s
        );
    }
    let delays = DelaySpace::paper(incremental.len(), 11);
    for q in queries {
        for entry in [
            incremental.tree().root(),
            *incremental.tree().leaves().iter().max().unwrap(),
        ] {
            let a = execute_query(incremental, &delays, q, entry, SearchScope::full());
            let b = execute_query(&rebuilt, &delays, q, entry, SearchScope::full());
            prop_assert_eq!(
                &a.matching_servers,
                &b.matching_servers,
                "recall diverged (entry {})",
                entry
            );
            prop_assert_eq!(a.matching_records, b.matching_records);
        }
    }
    Ok(())
}

fn probe_queries(schema: &Schema) -> Vec<Query> {
    [(0.0, 1.0), (0.2, 0.3), (0.48, 0.52), (0.9, 0.95)]
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| {
            QueryBuilder::new(schema, QueryId(i as u64))
                .range("x0", lo, hi)
                .build()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn delta_rounds_equal_full_rebuild(
        n_servers in 2usize..24,
        max_children in 2usize..5,
        seeds in prop::collection::vec((any::<u8>(), any::<u16>()), 0..60),
        rounds in prop::collection::vec(
            prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 0..20),
            1..4,
        ),
    ) {
        let mut net = build_net(n_servers, max_children, &seeds);
        let queries = probe_queries(&net.schema().clone());
        let mut next_id = 1_000_000u64;
        for ops in &rounds {
            let delta = schedule_to_delta(&net, ops, &mut next_id);
            let (breakdown, outcome) = update_round_delta(&mut net, &delta);
            // Accounting sanity: a round that dirtied nothing costs nothing;
            // a dirty round exports exactly its dirty servers.
            prop_assert_eq!(breakdown.export_messages, outcome.dirty.len() as u64);
            prop_assert_eq!(
                outcome.applied + outcome.rejected,
                delta.len() as u64
            );
            assert_equivalent(&net, &queries)?;
        }
    }

    #[test]
    fn whole_population_churn_still_converges(
        n_servers in 2usize..12,
        seeds in prop::collection::vec((any::<u8>(), any::<u16>()), 1..40),
    ) {
        let mut net = build_net(n_servers, 3, &seeds);
        // Remove *every* attached record, then repopulate every server —
        // the whole-shard-churn extreme.
        let mut delta = RecordDelta::new();
        for s in 0..n_servers as u32 {
            for r in net.records(ServerId(s)) {
                delta.remove(ServerId(s), r.id);
            }
        }
        for s in 0..n_servers as u32 {
            delta.insert(ServerId(s), mk_record(2_000_000 + s as u64, 0.5));
        }
        let (_, outcome) = update_round_delta(&mut net, &delta);
        prop_assert_eq!(outcome.rejected, 0);
        prop_assert_eq!(outcome.dirty.len(), n_servers);
        let queries = probe_queries(&net.schema().clone());
        assert_equivalent(&net, &queries)?;
    }

    #[test]
    fn empty_delta_is_free_and_preserves_state(
        n_servers in 2usize..16,
        seeds in prop::collection::vec((any::<u8>(), any::<u16>()), 0..40),
    ) {
        let mut net = build_net(n_servers, 3, &seeds);
        let root_before = net.branch_summary(net.tree().root()).clone();
        let (breakdown, outcome) = update_round_delta(&mut net, &RecordDelta::new());
        prop_assert_eq!(breakdown.total_bytes(), 0);
        prop_assert_eq!(breakdown.total_messages(), 0);
        prop_assert!(outcome.dirty.is_empty());
        prop_assert_eq!(net.branch_summary(net.tree().root()), &root_before);
        let queries = probe_queries(&net.schema().clone());
        assert_equivalent(&net, &queries)?;
    }
}
