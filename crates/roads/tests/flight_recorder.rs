//! End-to-end flight-recorder check (§III-C replication overlay):
//! a leaf-entry query with the overlay enabled must produce a valid span
//! tree rooted at the entry server, containing at least one
//! overlay-shortcut edge (an edge whose child hop was reached from a
//! non-parent server), and — with a level-1 scope — never visit the root.

use roads_core::{
    execute_query_recorded, execute_query_traced, record_query_events, trace_to_telemetry,
    RoadsConfig, RoadsNetwork, SearchScope, ServerId,
};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_summary::SummaryConfig;
use roads_telemetry::{span_tree_root, trace_events, EventKind, HopReason, Recorder};

fn network(n: usize, degree: usize) -> (RoadsNetwork, DelaySpace) {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: degree,
        summary: SummaryConfig::with_buckets(200),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            vec![Record::new_unchecked(
                RecordId(s as u64),
                OwnerId(s as u32),
                vec![Value::Float(s as f64 / n as f64)],
            )]
        })
        .collect();
    let net = RoadsNetwork::build(schema, cfg, records);
    let delays = DelaySpace::paper(n, 77);
    (net, delays)
}

fn broad_query(net: &RoadsNetwork) -> Query {
    QueryBuilder::new(net.schema(), QueryId(42))
        .range("x0", 0.0, 1.0)
        .build()
}

#[test]
fn leaf_entry_query_span_tree_takes_overlay_shortcut_and_skips_root() {
    let (net, delays) = network(40, 3);
    let leaf = *net.tree().leaves().iter().max().unwrap();
    let root = net.tree().root();
    assert_ne!(leaf, root);
    let q = broad_query(&net);

    // Level-1 scope: the entry searches its own branch, its overlay
    // shortcuts (siblings + ancestors' siblings) and climbs at most one
    // level — the root stays out of the picture.
    let scope = SearchScope::levels(1);
    let (out, trace) = execute_query_traced(&net, &delays, &q, leaf, scope);
    assert!(out.servers_contacted > 1);
    assert!(
        trace.iter().all(|e| e.server != root),
        "a level-1 scoped leaf query must never visit the root"
    );

    // The telemetry hop classification must show an overlay-shortcut edge.
    let t = trace_to_telemetry(&net, 42, &trace);
    assert!(
        t.count_reason(HopReason::OverlayShortcut) > 0,
        "leaf entry with the overlay enabled must take an overlay shortcut"
    );

    // Recorded as flight-recorder events, the same execution forms a
    // valid (acyclic, single-rooted) span tree rooted at the entry.
    let rec = Recorder::new(4096);
    let trace_id = rec.next_trace_id();
    record_query_events(&rec, trace_id, &trace).expect("non-empty trace records a root span");
    let events = rec.events();
    let tree_events = trace_events(&events, trace_id);
    let root_span = span_tree_root(&tree_events, trace_id).expect("span tree is valid");
    let root_hop = tree_events
        .iter()
        .find(|e| e.span == root_span && e.kind == EventKind::QueryHop)
        .expect("root span has a QueryHop event");
    assert_eq!(root_hop.node, leaf.0, "span tree is rooted at the entry");
    assert!(
        tree_events.iter().all(|e| e.node != root.0),
        "no recorded event may touch the root server"
    );

    // The overlay-shortcut edge exists in the span tree: some hop's span
    // parent belongs to a server that is NOT its tree parent.
    let overlay_edge = tree_events
        .iter()
        .filter(|e| e.kind == EventKind::QueryHop && !e.parent.is_none())
        .any(|e| {
            let parent_node = tree_events
                .iter()
                .find(|p| p.span == e.parent && p.kind == EventKind::QueryHop)
                .map(|p| ServerId(p.node));
            parent_node.is_some() && net.tree().parent(ServerId(e.node)) != parent_node
        });
    assert!(
        overlay_edge,
        "span tree must contain an overlay-shortcut edge (non-tree-parent forwarder)"
    );
}

#[test]
fn recorded_execution_agrees_with_plain_execution() {
    let (net, delays) = network(40, 3);
    let leaf = *net.tree().leaves().iter().max().unwrap();
    let q = broad_query(&net);
    let rec = Recorder::new(4096);
    let plain = roads_core::execute_query(&net, &delays, &q, leaf, SearchScope::full());
    let recorded = execute_query_recorded(&net, &delays, &q, leaf, SearchScope::full(), Some(&rec));
    assert_eq!(plain.matching_records, recorded.matching_records);
    assert_eq!(plain.servers_contacted, recorded.servers_contacted);
    assert!(!rec.is_empty(), "recorded execution must emit events");
}
