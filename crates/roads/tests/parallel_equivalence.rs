//! Property: the parallel build is observationally identical to the
//! sequential one.
//!
//! [`BuildOptions::with_threads`] only changes how the work is scheduled —
//! local summaries fan out over contiguous server chunks and branch
//! summaries aggregate level-by-level with a fixed child merge order — so
//! for every server the local summary, branch summary, replica set,
//! summary wire sizes and storage accounting must come out bit-identical
//! at any thread count, including thread counts far above the server
//! count.

use proptest::prelude::*;
use roads_core::{BuildOptions, RoadsConfig, RoadsNetwork, ServerId};
use roads_records::{OwnerId, Record, RecordId, Schema, Value, WireSize};
use roads_summary::SummaryConfig;

fn build_inputs(
    n: usize,
    k: usize,
    attrs: usize,
    points: &[f64],
) -> (Schema, RoadsConfig, Vec<Vec<Record>>) {
    let schema = Schema::unit_numeric(attrs);
    let cfg = RoadsConfig {
        max_children: k,
        summary: SummaryConfig::with_buckets(64),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..3)
                .map(|i| {
                    let values = (0..attrs)
                        .map(|a| Value::Float(points[(s * 3 + i + a * 7) % points.len()]))
                        .collect();
                    Record::new_unchecked(RecordId((s * 3 + i) as u64), OwnerId(s as u32), values)
                })
                .collect()
        })
        .collect();
    (schema, cfg, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_build_equals_sequential(
        n in 1usize..60,
        k in 2usize..7,
        attrs in 1usize..4,
        threads in 2usize..70,
        points in prop::collection::vec(0.0f64..1.0, 4..40),
    ) {
        let (schema, cfg, records) = build_inputs(n, k, attrs, &points);
        let seq = RoadsNetwork::build_with(
            schema.clone(),
            cfg,
            records.clone(),
            BuildOptions::sequential(),
        );
        let par = RoadsNetwork::build_with(schema, cfg, records, BuildOptions::with_threads(threads));
        prop_assert_eq!(seq.tree(), par.tree());
        for s in (0..n as u32).map(ServerId) {
            prop_assert_eq!(
                seq.local_summary(s), par.local_summary(s),
                "local summary differs at {}", s
            );
            prop_assert_eq!(
                seq.branch_summary(s), par.branch_summary(s),
                "branch summary differs at {}", s
            );
            prop_assert_eq!(
                seq.branch_summary(s).wire_size(), par.branch_summary(s).wire_size(),
                "wire size differs at {}", s
            );
            prop_assert_eq!(
                seq.replica_set(s), par.replica_set(s),
                "replica set differs at {}", s
            );
            prop_assert_eq!(
                seq.storage_bytes(s), par.storage_bytes(s),
                "storage accounting differs at {}", s
            );
        }
        prop_assert_eq!(seq.max_storage_bytes(), par.max_storage_bytes());
    }
}
