//! Integration test: the replication overlay's effect on traced query
//! paths (§III-C).
//!
//! Without the overlay every query enters at the root, so every trace must
//! visit it. With the overlay a leaf-entry query jumps straight to sibling
//! branches via replicated summaries, so its trace contains overlay
//! shortcuts — hops whose forwarder is not the tree parent.

use roads_core::{
    execute_query_traced, trace_to_telemetry, RoadsConfig, RoadsNetwork, SearchScope,
};
use roads_netsim::DelaySpace;
use roads_records::{AttrId, OwnerId, Predicate, Query, QueryId, Record, RecordId, Schema, Value};
use roads_summary::SummaryConfig;
use roads_telemetry::{aggregate_traces, HopReason};

const NODES: usize = 27;

/// A 27-server network (degree 3, three full levels) where every server
/// owns records spread over [0,1]² so broad queries match many branches.
fn network() -> (RoadsNetwork, Schema, DelaySpace) {
    let schema = Schema::unit_numeric(2);
    let records: Vec<Vec<Record>> = (0..NODES)
        .map(|s| {
            (0..8)
                .map(|i| {
                    Record::new_unchecked(
                        RecordId((s * 8 + i) as u64),
                        OwnerId(s as u32),
                        vec![
                            Value::Float(s as f64 / NODES as f64),
                            Value::Float(i as f64 / 8.0),
                        ],
                    )
                })
                .collect()
        })
        .collect();
    let net = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        },
        records,
    );
    let delays = DelaySpace::paper(NODES, 11);
    (net, schema, delays)
}

fn broad_query(id: u64) -> Query {
    Query::new(
        QueryId(id),
        vec![Predicate::Range {
            attr: AttrId(0),
            lo: 0.0,
            hi: 1.0,
        }],
    )
}

#[test]
fn root_entry_traces_always_visit_root() {
    let (net, _schema, delays) = network();
    let root = net.tree().root();
    let mut traces = Vec::new();
    for id in 0..20u64 {
        let q = broad_query(id);
        let (_, trace) = execute_query_traced(&net, &delays, &q, root, SearchScope::full());
        let t = trace_to_telemetry(&net, id, &trace);
        assert!(
            t.visits(root.0),
            "query {id}: overlay-off (root entry) trace skipped the root"
        );
        assert_eq!(t.entry, root.0, "entry hop must be the root");
        // Entered at the top of the tree: nothing above to climb to and no
        // replicated sibling summaries to shortcut through.
        assert_eq!(t.count_reason(HopReason::OverlayShortcut), 0);
        traces.push(t);
    }
    let report = aggregate_traces(&traces, root.0, NODES);
    assert_eq!(report.queries, 20);
    assert_eq!(report.root_visits, 20, "every trace touches the root");
    assert_eq!(report.overlay_shortcuts, 0);
}

#[test]
fn leaf_entry_traces_use_overlay_shortcuts() {
    let (net, _schema, delays) = network();
    let root = net.tree().root();
    // A deepest-level server: its replication set spans sibling branches.
    let leaf = *net
        .tree()
        .servers()
        .iter()
        .max_by_key(|&&s| net.tree().depth(s))
        .expect("non-empty tree");
    assert!(net.tree().depth(leaf) >= 2, "need a true leaf entry");

    let mut traces = Vec::new();
    for id in 0..20u64 {
        let q = broad_query(id);
        let (out, trace) = execute_query_traced(&net, &delays, &q, leaf, SearchScope::full());
        let t = trace_to_telemetry(&net, id, &trace);
        assert!(
            t.count_reason(HopReason::OverlayShortcut) >= 1,
            "query {id}: broad leaf-entry query used no overlay shortcut"
        );
        assert_eq!(t.hop_count(), out.servers_contacted);
        traces.push(t);
    }
    let report = aggregate_traces(&traces, root.0, NODES);
    assert!(report.overlay_shortcuts >= 20);
    // The root is at most probed locally, never the fan-out hub: its share
    // of hops stays far below the overlay-off regime where it forwards
    // every query.
    assert!(
        report.root_load_share < 0.5,
        "root load share {} too high with overlay on",
        report.root_load_share
    );
}
