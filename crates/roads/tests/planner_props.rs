//! Property tests: the replica-aware planner never changes recall.
//!
//! The planner's only licensed optimisations are (a) pruning ancestor
//! probes whose replicated *local* summary rules them out (conservative:
//! summaries never produce false negatives) and (b) batching the greedy
//! expansion into one client-side dispatch wave. Neither may change the
//! match set, and neither may ever contact *more* servers or push more
//! query bytes than greedy expansion — across random hierarchies, data
//! placements, fan-outs (which set the overlay replication degree),
//! selectivities, entry points and `levels_up` scopes.

use proptest::prelude::*;
use roads_core::{
    execute_query, execute_query_planned, plan_query, PlanAction, RoadsConfig, RoadsNetwork,
    SearchScope, ServerId,
};
use roads_netsim::DelaySpace;
use roads_records::{AttrId, OwnerId, Predicate, Query, QueryId, Record, RecordId, Schema, Value};
use roads_summary::SummaryConfig;
use std::collections::HashSet;

/// One record per server at `points[s % points.len()]`, fan-out `k`.
fn build(n: usize, k: usize, points: &[f64]) -> (RoadsNetwork, DelaySpace) {
    let schema = Schema::unit_numeric(1);
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            vec![Record::new_unchecked(
                RecordId(s as u64),
                OwnerId(s as u32),
                vec![Value::Float(points[s % points.len()])],
            )]
        })
        .collect();
    let cfg = RoadsConfig {
        max_children: k,
        summary: SummaryConfig::with_buckets(64),
        ..RoadsConfig::paper_default()
    };
    (
        RoadsNetwork::build(schema, cfg, records),
        DelaySpace::paper(n, 11),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planned_execution_matches_greedy_recall(
        n in 2usize..60,
        k in 2usize..7,
        points in prop::collection::vec(0.0f64..1.0, 2..40),
        lo in 0.0f64..1.0,
        w in 0.0f64..0.5,
        seed in any::<u32>(),
    ) {
        let (net, delays) = build(n, k, &points);
        let hi = (lo + w).min(1.0);
        let q = Query::new(QueryId(0), vec![Predicate::Range { attr: AttrId(0), lo, hi }]);
        let entry = ServerId(seed % n as u32);
        let scope = match (seed >> 16) % 4 {
            0 => SearchScope::full(),
            s => SearchScope::levels((s - 1) as usize),
        };
        let plan = plan_query(&net, &q, entry, scope);
        let greedy = execute_query(&net, &delays, &q, entry, scope);
        let planned = execute_query_planned(&net, &delays, &q, entry, scope, &plan);

        let mut a = greedy.matching_servers.clone();
        let mut b = planned.matching_servers.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "recall drift (entry {}, scope {:?})", entry, scope);
        prop_assert_eq!(greedy.matching_records, planned.matching_records);
        prop_assert!(
            planned.servers_contacted <= greedy.servers_contacted,
            "planner contacted more servers ({} vs {}, entry {}, scope {:?})",
            planned.servers_contacted, greedy.servers_contacted, entry, scope
        );
        prop_assert!(
            planned.query_bytes <= greedy.query_bytes,
            "planner pushed more bytes ({} vs {})",
            planned.query_bytes, greedy.query_bytes
        );
        prop_assert!(
            planned.query_messages <= greedy.query_messages,
            "planner sent more messages ({} vs {})",
            planned.query_messages, greedy.query_messages
        );
    }

    #[test]
    fn plans_are_well_formed(
        n in 2usize..60,
        k in 2usize..7,
        points in prop::collection::vec(0.0f64..1.0, 2..40),
        lo in 0.0f64..1.0,
        w in 0.0f64..0.3,
        entry_seed in any::<u32>(),
    ) {
        let (net, _) = build(n, k, &points);
        let hi = (lo + w).min(1.0);
        let q = Query::new(QueryId(0), vec![Predicate::Range { attr: AttrId(0), lo, hi }]);
        let entry = ServerId(entry_seed % n as u32);
        let plan = plan_query(&net, &q, entry, SearchScope::full());

        prop_assert_eq!(plan.entry, entry);
        let mut seen = HashSet::new();
        for pc in &plan.contacts {
            prop_assert!(seen.insert(pc.server), "duplicate planned contact {}", pc.server);
            prop_assert!(pc.server != entry, "the entry is contacted implicitly, never planned");
            prop_assert!(!pc.covers.is_empty(), "a contact must cover something");
            // Every planned contact was vouched for by the entry's
            // replicated summaries: descents by the target's branch
            // summary, probes by its local summary (the planner's
            // pruning criterion).
            match pc.action {
                PlanAction::Descend => prop_assert!(
                    net.branch_summary(pc.server).may_match(&q),
                    "descent into {} without a branch-summary match", pc.server
                ),
                PlanAction::Probe => prop_assert!(
                    net.local_summary(pc.server).may_match(&q),
                    "probe of {} without a local-summary match", pc.server
                ),
            }
        }
        // Pruning is conservative: every ancestor probe the planner
        // skipped really holds no matching record.
        let mut anc = net.tree().parent(entry);
        let mut prunable = 0usize;
        while let Some(a) = anc {
            if net.branch_summary(a).may_match(&q)
                && !net.local_summary(a).may_match(&q)
                && !seen.contains(&a)
            {
                prunable += 1;
                prop_assert!(
                    net.records(a).iter().all(|r| !q.matches(r)),
                    "pruned ancestor {} holds a matching record", a
                );
            }
            anc = net.tree().parent(a);
        }
        prop_assert!(
            plan.pruned_probes >= prunable,
            "plan reports {} pruned probes, at least {} were prunable",
            plan.pruned_probes, prunable
        );
    }
}
