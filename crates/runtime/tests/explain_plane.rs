//! The query explain plane against the live runtime: per-hop provenance
//! must reconcile exactly with the [`RuntimeOutcome`] it explains, and a
//! tail-retained query's explain record must reconstruct the same hop
//! sequence the flight recorder saw — healthy, and under kill/restart
//! fault injection.

use roads_core::{RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{RoadsCluster, RuntimeConfig};
use roads_summary::SummaryConfig;
use roads_telemetry::{
    span_tree_root, trace_events, EventKind, ExplainDecision, HopOutcome, QueryExplain, Recorder,
    RetainReason, TailConfig, TailSampler, TraceId,
};
use std::collections::BTreeSet;
use std::sync::Arc;

const RECORDS_PER_SERVER: usize = 20;

fn build_net(n: usize, max_children: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children,
        summary: SummaryConfig::with_buckets(64),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * RECORDS_PER_SERVER) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

fn build_cluster(n: usize, cfg: RuntimeConfig) -> RoadsCluster {
    RoadsCluster::start(build_net(n, 3), DelaySpace::paper(n, 77), cfg)
}

fn full_query(c: &RoadsCluster, id: u64) -> Query {
    QueryBuilder::new(c.network().schema(), QueryId(id))
        .range("x0", 0.0, 1.0)
        .build()
}

fn a_leaf(c: &RoadsCluster) -> ServerId {
    let tree = c.network().tree();
    (0..c.network().len() as u32)
        .map(ServerId)
        .find(|&s| tree.children(s).is_empty())
        .expect("every finite tree has a leaf")
}

/// The invariants tying an explain record to the outcome it explains.
fn assert_consistent(out: &roads_runtime::RuntimeOutcome, ex: &QueryExplain) {
    assert_eq!(
        ex.distinct_responders(),
        out.servers_contacted,
        "distinct Replied hops must equal servers_contacted"
    );
    assert_eq!(
        ex.retry_count() as usize,
        out.retries,
        "Retry hops must equal the outcome's retry count"
    );
    assert_eq!(ex.records, out.records.len() as u64, "record count");
    assert_eq!(ex.complete, out.complete, "completeness verdict");
    assert!((ex.response_us / 1_000.0 - out.response_ms).abs() < 1e-6);
    // Causality is well-founded: the entry hop is first and uncaused,
    // every other hop is caused by an earlier one.
    assert_eq!(ex.hops[0].decision, ExplainDecision::Entry);
    assert_eq!(ex.hops[0].caused_by, None);
    for (i, h) in ex.hops.iter().enumerate().skip(1) {
        let c = h.caused_by.expect("non-entry hops have a cause");
        assert!(c < i, "hop {i} caused by later hop {c}");
    }
}

#[test]
fn explain_matches_outcome_on_healthy_cluster() {
    let n = 13;
    let c = build_cluster(n, RuntimeConfig::test_fast());
    let entry = a_leaf(&c);
    let (out, ex) = c.query_explained(&full_query(&c, 1), entry);

    assert_eq!(out.records.len(), n * RECORDS_PER_SERVER);
    assert_consistent(&out, &ex);
    assert_eq!(ex.entry, entry.0);
    assert!(!ex.deadline_hit);
    assert!(
        ex.hops.iter().all(|h| h.outcome == HopOutcome::Replied),
        "healthy cluster: every hop replies"
    );
    assert!(
        ex.hops
            .iter()
            .any(|h| h.decision == ExplainDecision::SummaryDescent),
        "a full-range query descends the hierarchy"
    );
    // Every server holds matching data, so every descent hop was
    // vouched for by some summary structure and found local records.
    for h in &ex.hops {
        if h.decision == ExplainDecision::SummaryDescent {
            assert!(h.summary.is_some(), "descent hops carry a summary kind");
            assert!(!h.false_positive);
        }
    }
    // Attribution: simulated links make network time dominate; nothing
    // was retried or failed over.
    let attr = ex.attribution();
    assert!(attr.network_us > 0.0);
    assert_eq!(attr.retry_us, 0.0);
    assert_eq!(attr.failover_us, 0.0);
    assert!(attr.total_us() > 0.0);
    c.shutdown();
}

#[test]
fn explain_consistency_under_kill_and_restart() {
    let n = 13;
    let c = build_cluster(n, RuntimeConfig::test_faulty());
    let tree = c.network().tree();
    let victim = *tree
        .children(tree.root())
        .iter()
        .find(|&&s| !tree.children(s).is_empty())
        .expect("13 servers at degree 3 have an interior non-root child");
    assert!(c.kill_server(victim));

    let (out, ex) = c.query_explained(&full_query(&c, 2), tree.root());
    assert_eq!(out.failed_servers, vec![victim]);
    assert_consistent(&out, &ex);
    // The dead server's hop records the closed mailbox, and the overlay
    // stand-in hop points back at it as its cause.
    let dead_hop = ex
        .hops
        .iter()
        .position(|h| h.server == victim.0)
        .expect("the dead server was dispatched to");
    assert_eq!(ex.hops[dead_hop].outcome, HopOutcome::MailboxDown);
    let failover = ex
        .hops
        .iter()
        .find(|h| h.decision == ExplainDecision::Failover)
        .expect("an overlay stand-in was nominated");
    assert_eq!(failover.caused_by, Some(dead_hop));
    assert_eq!(failover.outcome, HopOutcome::Replied);
    let attr = ex.attribution();
    assert!(attr.failover_us > 0.0, "failover time must be attributed");

    // After a restart the same query explains cleanly again.
    assert!(c.restart_server(victim));
    let (healed, hex) = c.query_explained(&full_query(&c, 3), tree.root());
    assert!(healed.complete);
    assert_consistent(&healed, &hex);
    assert!(hex.hops.iter().all(|h| h.outcome == HopOutcome::Replied));
    assert_eq!(hex.attribution().failover_us, 0.0);
    c.shutdown();
}

#[test]
fn explain_counts_real_retries() {
    // One slow-but-alive server: the dispatch timeout fires, the driver
    // retries, and the explain record must show the same retry the
    // outcome counts — with its backoff attributed to retry time.
    let cfg = RuntimeConfig {
        base_query_cost_us: 400_000,
        dispatch_timeout_ms: 250,
        max_retries: 1,
        backoff_base_ms: 5,
        query_deadline_ms: 8_000,
        ..RuntimeConfig::test_fast()
    };
    let c = build_cluster(1, cfg);
    let only = c.network().tree().root();
    let (out, ex) = c.query_explained(&full_query(&c, 4), only);
    assert!(out.retries >= 1);
    assert_consistent(&out, &ex);
    let retry = ex
        .hops
        .iter()
        .find(|h| h.decision == ExplainDecision::Retry)
        .expect("a retry hop was dispatched");
    assert!(retry.split.backoff_us > 0.0, "retries carry their backoff");
    assert!(ex.attribution().retry_us > 0.0);
    c.shutdown();
}

/// Acceptance: a tail-retained query's explain record reconstructs its
/// full hop sequence, verified against the flight-recorder span tree
/// captured for the same trace.
#[test]
fn retained_query_explain_reconstructs_span_tree() {
    let n = 13;
    let mut c = build_cluster(n, RuntimeConfig::test_faulty());
    let rec = Arc::new(Recorder::new(65_536));
    c.set_recorder(Arc::clone(&rec));
    let tail = Arc::new(TailSampler::new(TailConfig {
        capacity: 16,
        min_samples: 1_000_000, // stay on the floor threshold
        floor_ms: 1e9,          // retain only failed/incomplete queries
    }));
    c.set_tail_sampler(Arc::clone(&tail));

    // Warm-up query: healthy, fast, below the floor — observed, dropped.
    let healthy = c.query(&full_query(&c, 5), a_leaf(&c));
    assert!(healthy.complete);

    // Kill a leaf: the next query fails partially and must be retained.
    let victim = a_leaf(&c);
    assert!(c.kill_server(victim));
    let out = c.query(&full_query(&c, 6), c.network().tree().root());
    assert_eq!(out.failed_servers, vec![victim]);

    assert_eq!(tail.observed(), 2);
    assert_eq!(tail.dropped(), 1, "the healthy query folds and drops");
    let retained = tail.retained();
    assert_eq!(retained.len(), 1);
    let kept = &retained[0];
    assert_eq!(kept.reason, RetainReason::Failed);
    let ex = &kept.explain;
    assert_consistent(&out, ex);

    // The retained flight-recorder events belong to this trace and form
    // a valid span tree.
    assert!(ex.trace_id != 0, "recorder attached ⇒ real trace id");
    let trace = TraceId(ex.trace_id);
    assert!(!kept.events.is_empty());
    assert!(kept.events.iter().all(|e| e.trace == trace));
    assert_eq!(kept.events, trace_events(&rec.events(), trace));
    span_tree_root(&kept.events, trace).expect("retained events form a span tree");

    // Hop-by-hop reconstruction: the explain record and the span tree
    // describe the same execution. Every Replied hop is a QueryHop event
    // on the same server; timeouts/mailbox failures are DispatchTimeout
    // events; Retry and Failover decisions match their event kinds.
    let replied: BTreeSet<u32> = ex
        .hops
        .iter()
        .filter(|h| h.outcome == HopOutcome::Replied)
        .map(|h| h.server)
        .collect();
    let hop_events: BTreeSet<u32> = kept
        .events
        .iter()
        .filter(|e| e.kind == EventKind::QueryHop)
        .map(|e| e.node)
        .collect();
    assert_eq!(replied, hop_events, "Replied hops ⇔ QueryHop events");
    let failures = ex
        .hops
        .iter()
        .filter(|h| matches!(h.outcome, HopOutcome::TimedOut | HopOutcome::MailboxDown))
        .count();
    let timeout_events = kept
        .events
        .iter()
        .filter(|e| e.kind == EventKind::DispatchTimeout)
        .count();
    assert_eq!(failures, timeout_events, "failed hops ⇔ timeout events");
    let failover_hops = ex
        .hops
        .iter()
        .filter(|h| h.decision == ExplainDecision::Failover)
        .count();
    let failover_events = kept
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Failover)
        .count();
    assert_eq!(failover_hops, failover_events);
    assert_eq!(
        ex.retry_count(),
        kept.events
            .iter()
            .filter(|e| e.kind == EventKind::Retry)
            .count() as u64
    );

    // Exemplar: the latency bucket this query fell into links back to
    // the retained trace.
    assert_eq!(tail.exemplar(out.response_ms), Some(ex.trace_id));
    c.shutdown();
}

/// Deadline-abandoned hops stay `Abandoned` and the query is retained as
/// incomplete even though nothing failed outright.
#[test]
fn deadline_cutoff_retains_incomplete_with_abandoned_hops() {
    let cfg = RuntimeConfig {
        base_query_cost_us: 800_000,
        query_deadline_ms: 200,
        dispatch_timeout_ms: 0,
        ..RuntimeConfig::test_fast()
    };
    let mut c = build_cluster(4, cfg);
    let tail = Arc::new(TailSampler::new(TailConfig {
        capacity: 4,
        min_samples: 1_000_000,
        floor_ms: 1e9,
    }));
    c.set_tail_sampler(Arc::clone(&tail));
    let root = c.network().tree().root();
    let (out, ex) = c.query_explained(&full_query(&c, 7), root);
    assert!(!out.complete);
    assert!(ex.deadline_hit);
    assert_consistent(&out, &ex);
    assert!(
        ex.hops
            .iter()
            .any(|h| h.outcome == HopOutcome::Abandoned && h.dur_us > 0.0),
        "deadline-cut hops must be recorded as abandoned with their age"
    );
    // The sampler saw the same query once more (query_explained also
    // feeds an attached sampler) and kept it.
    let retained = tail.retained();
    assert!(!retained.is_empty());
    assert!(retained
        .iter()
        .all(|q| q.reason == RetainReason::Failed || q.reason == RetainReason::Incomplete));
    c.shutdown();
}
