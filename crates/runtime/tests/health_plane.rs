//! Live cluster health plane acceptance tests: an instrumented
//! [`RoadsCluster`] must expose per-server queue-depth gauges,
//! deadline-miss counters and dispatch-latency histogram buckets through
//! the OpenMetrics exposition, show kill/restart/failover fault events as
//! labeled series, render byte-identically for identical snapshots, and
//! summarize itself through [`RoadsCluster::health`].

use roads_core::{RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{RoadsCluster, RuntimeConfig};
use roads_summary::SummaryConfig;
use roads_telemetry::{labeled, parse_openmetrics, OpenMetricsSnapshot, Registry};

const RECORDS_PER_SERVER: usize = 10;

fn build_net(n: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(64),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * RECORDS_PER_SERVER) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

fn full_query(c: &RoadsCluster) -> Query {
    QueryBuilder::new(c.network().schema(), QueryId(1))
        .range("x0", 0.0, 1.0)
        .build()
}

/// First non-root server with children: killing it exercises replica
/// failover (a sibling/ancestor stands in for its branch).
fn a_branch(c: &RoadsCluster) -> ServerId {
    let tree = c.network().tree();
    (0..c.network().len() as u32)
        .map(ServerId)
        .find(|&s| s != tree.root() && !tree.children(s).is_empty())
        .expect("hierarchy of 13 has an internal non-root server")
}

#[test]
fn scrape_exposes_queue_gauges_deadline_counters_and_latency_buckets() {
    let n = 13;
    let reg = Registry::new();
    let c = RoadsCluster::start_instrumented(
        build_net(n),
        DelaySpace::paper(n, 77),
        RuntimeConfig::test_faulty(),
        &reg,
    );
    let q = full_query(&c);
    let root = c.network().tree().root();

    // Healthy query first, then kill a branch server and query again so
    // timeout → failover paths run, then restart it.
    let out = c.query(&q, root);
    assert_eq!(out.records.len(), n * RECORDS_PER_SERVER);
    let victim = a_branch(&c);
    assert!(c.kill_server(victim));

    // The kill is visible immediately, before any more traffic.
    let mid = OpenMetricsSnapshot::from_registry(&reg).render();
    let vid = victim.0.to_string();
    assert!(mid.contains(&format!("runtime_server_alive{{server=\"{vid}\"}} 0\n")));
    assert!(mid.contains("runtime_fault_events_total{kind=\"kill\"} 1\n"));

    let faulted = c.query(&q, root);
    assert!(faulted.failed_servers.contains(&victim));
    assert!(c.restart_server(victim));
    let recovered = c.query(&q, root);
    assert_eq!(recovered.records.len(), n * RECORDS_PER_SERVER);

    let snap = OpenMetricsSnapshot::from_registry(&reg);
    let text = snap.render();

    // Acceptance: per-server queue-depth gauges for every server (all
    // drained back to 0), deadline-miss counter family, dispatch-latency
    // histogram buckets.
    for s in 0..n {
        assert!(
            text.contains(&format!("runtime_server_queue_depth{{server=\"{s}\"}} 0\n")),
            "queue gauge for server {s} missing or non-zero:\n{text}"
        );
    }
    assert!(text.contains("# TYPE runtime_deadline_miss counter\n"));
    assert!(text.contains("runtime_deadline_miss_total 0\n"));
    assert!(text.contains("# TYPE runtime_dispatch_latency_ms histogram\n"));
    assert!(
        text.contains("runtime_dispatch_latency_ms_bucket{mode=\"entry\",le=\""),
        "entry-mode latency buckets missing:\n{text}"
    );
    assert!(text.contains("runtime_dispatch_latency_ms_bucket{mode=\"branch\",le=\""));

    // Fault events show as labeled series: the kill, the restart, and at
    // least one failover nomination for the dead branch.
    assert!(text.contains("runtime_fault_events_total{kind=\"kill\"} 1\n"));
    assert!(text.contains("runtime_fault_events_total{kind=\"restart\"} 1\n"));
    let scrape = parse_openmetrics(&text).expect("scrape parses");
    let failovers = scrape
        .family("runtime_failovers")
        .expect("failover counter family")
        .sample_with("_total", &[])
        .expect("failover sample");
    assert!(failovers.value >= 1.0, "killing a branch must fail over");
    let timeouts = scrape
        .family("runtime_dispatch_timeouts")
        .unwrap()
        .sample_with("_total", &[])
        .unwrap();
    assert!(timeouts.value >= 1.0, "dead server must time out");

    // The restarted server is back, and replies were attributed per
    // server.
    assert!(text.contains(&format!("runtime_server_alive{{server=\"{vid}\"}} 1\n")));
    let replies = scrape.family("runtime_server_replies").unwrap();
    let root_replies = replies
        .sample_with("_total", &[("server", &root.0.to_string())])
        .unwrap();
    assert!(root_replies.value >= 3.0, "entry server replied per query");

    // Determinism acceptance: identical snapshots render byte-identically.
    assert_eq!(text, snap.render());
    assert_eq!(text, OpenMetricsSnapshot::from_registry(&reg).render());
    c.shutdown();
}

#[test]
fn health_snapshot_tracks_kill_restart_and_counts() {
    let n = 13;
    let reg = Registry::new();
    let c = RoadsCluster::start_instrumented(
        build_net(n),
        DelaySpace::paper(n, 21),
        RuntimeConfig::test_faulty(),
        &reg,
    );
    let q = full_query(&c);
    let root = c.network().tree().root();
    c.query(&q, root);

    let healthy = c.health().expect("instrumented cluster has health");
    assert_eq!(healthy.servers.len(), n);
    assert_eq!(healthy.alive_count(), n);
    assert_eq!(healthy.queries, 1);
    assert_eq!(healthy.inflight_queries, 0, "no query in flight now");
    let root_row = &healthy.servers[root.index()];
    assert!(root_row.alive);
    assert!(root_row.replies >= 1);
    assert!(root_row.dispatch_p99_ms.is_some());
    assert_eq!(root_row.queue_depth, 0);

    let victim = a_branch(&c);
    c.kill_server(victim);
    c.query(&q, root);
    let degraded = c.health().unwrap();
    assert_eq!(degraded.alive_count(), n - 1);
    assert!(!degraded.servers[victim.index()].alive);
    assert_eq!(degraded.queries, 2);
    assert!(degraded.failovers >= 1);
    // The text rendering carries the down marker.
    let table = degraded.to_string();
    assert!(
        table.contains("DOWN"),
        "table must flag the dead server:\n{table}"
    );
    assert!(table.contains(&format!("{}/{} alive", n - 1, n)));

    c.restart_server(victim);
    assert_eq!(c.health().unwrap().alive_count(), n);
    c.shutdown();
}

#[test]
fn uninstrumented_cluster_has_no_health() {
    let n = 4;
    let c = RoadsCluster::start(
        build_net(n),
        DelaySpace::paper(n, 5),
        RuntimeConfig::test_fast(),
    );
    assert!(c.health().is_none());
    c.shutdown();
}

#[test]
fn slo_burn_counter_fires_on_slow_queries() {
    let n = 6;
    let reg = Registry::new();
    // A 1 ms SLO that every real query (emulated backend costs, network
    // delays) must blow through, without affecting execution.
    let cfg = RuntimeConfig {
        slo_response_ms: 1,
        ..RuntimeConfig::test_fast()
    };
    let c = RoadsCluster::start_instrumented(build_net(n), DelaySpace::paper(n, 9), cfg, &reg);
    let q = full_query(&c);
    let root = c.network().tree().root();
    for _ in 0..3 {
        let out = c.query(&q, root);
        assert_eq!(out.records.len(), n * RECORDS_PER_SERVER);
        assert!(out.complete, "SLO misses never change execution");
    }
    c.shutdown();
    let counters = reg.counter_values();
    assert_eq!(counters["runtime.queries"], 3);
    assert_eq!(counters["runtime.slo_violations"], 3);
    assert_eq!(counters["runtime.incomplete_queries"], 0);
    // And the response-time histogram saw every query.
    assert_eq!(
        reg.histogram_snapshots()["runtime.query_response_ms"].count,
        3
    );
}

#[test]
fn queue_depth_rises_under_backlog_and_drains() {
    let n = 9;
    let reg = Registry::new();
    // Slow backend so requests visibly queue behind busy servers.
    let cfg = RuntimeConfig {
        base_query_cost_us: 20_000,
        max_inflight_queries: 8,
        ..RuntimeConfig::test_fast()
    };
    let c = std::sync::Arc::new(RoadsCluster::start_instrumented(
        build_net(n),
        DelaySpace::paper(n, 13),
        cfg,
        &reg,
    ));
    let q = full_query(&c);
    let root = c.network().tree().root();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let c = std::sync::Arc::clone(&c);
            let q = q.clone();
            std::thread::spawn(move || c.query(&q, root).records.len())
        })
        .collect();
    // Sample queue depths while the burst is in flight; with 6 concurrent
    // full-fan-out queries and a 20 ms busy period per request, some
    // mailbox must be observed non-empty at least once.
    let mut saw_backlog = false;
    for _ in 0..200 {
        let gauges = reg.gauge_values();
        if (0..n).any(|s| {
            gauges[&labeled("runtime.server.queue_depth", &[("server", &s.to_string())])] > 0
        }) {
            saw_backlog = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), n * RECORDS_PER_SERVER);
    }
    assert!(
        saw_backlog,
        "burst of 6 queries never showed a queued request"
    );
    // Drained: every mailbox gauge is back to zero.
    let gauges = reg.gauge_values();
    for s in 0..n {
        assert_eq!(
            gauges[&labeled("runtime.server.queue_depth", &[("server", &s.to_string())])],
            0,
            "server {s} mailbox not drained"
        );
    }
}
