//! Fault injection against the live query plane: crashed servers, panicking
//! owner policies, deadlines, and replica-overlay failover (§III-C).
//!
//! Every test drives a real [`RoadsCluster`] — OS threads, channels, the
//! bounded dispatcher — and kills pieces of it mid-flight. The invariant
//! under test throughout: `query_as` always returns within the query
//! deadline, and [`RuntimeOutcome::complete`]/`failed_servers` tell the
//! truth about what the result may be missing.

use proptest::prelude::*;
use roads_core::policy::{Disclosure, RequesterId, SharingPolicy, TrustClass};
use roads_core::{RoadsConfig, RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{RoadsCluster, RuntimeConfig, RuntimeOutcome};
use roads_summary::SummaryConfig;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RECORDS_PER_SERVER: usize = 20;

/// `n` servers in a degree-`max_children` hierarchy, each holding 20
/// records with distinct ids; record values spread server `s`'s data
/// across `x0 ∈ [s/n, (s+1)/n)` so a full-range query matches everything
/// and every server holds matching local data.
fn build_net(n: usize, max_children: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children,
        summary: SummaryConfig::with_buckets(64),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * RECORDS_PER_SERVER) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

fn build_cluster(n: usize, max_children: usize, cfg: RuntimeConfig) -> RoadsCluster {
    RoadsCluster::start(build_net(n, max_children), DelaySpace::paper(n, 77), cfg)
}

fn full_query(c: &RoadsCluster) -> Query {
    QueryBuilder::new(c.network().schema(), QueryId(1))
        .range("x0", 0.0, 1.0)
        .build()
}

/// Sorted, deduplicated record ids of an outcome.
fn unique_ids(out: &RuntimeOutcome) -> Vec<u64> {
    let before = out.records.len();
    let ids: BTreeSet<u64> = out.records.iter().map(|r| r.id.0).collect();
    assert_eq!(
        ids.len(),
        before,
        "duplicate records merged into the result"
    );
    ids.into_iter().collect()
}

/// Some leaf server (deterministic: lowest id with no children).
fn a_leaf(c: &RoadsCluster) -> ServerId {
    let tree = c.network().tree();
    (0..c.network().len() as u32)
        .map(ServerId)
        .find(|&s| tree.children(s).is_empty())
        .expect("every finite tree has a leaf")
}

/// An owner whose backend crashes the server thread on any query:
/// regression for the runtime hang, where each such dispatch leaked a
/// helper thread blocked forever on a reply that could never come.
struct PanicPolicy;

impl SharingPolicy for PanicPolicy {
    fn classify(&self, _requester: RequesterId) -> TrustClass {
        panic!("owner backend crashed (injected)")
    }

    fn disclose(&self, _class: TrustClass, _record: &Record) -> Disclosure {
        Disclosure::Full
    }
}

#[test]
fn panicking_policy_cannot_hang_the_client() {
    let n = 9;
    let net = build_net(n, 3);
    let victim = {
        let tree = net.tree();
        (0..n as u32)
            .map(ServerId)
            .find(|&s| tree.children(s).is_empty())
            .unwrap()
    };
    let mut policies: Vec<Arc<dyn SharingPolicy>> = (0..n)
        .map(|_| Arc::new(roads_core::policy::OpenPolicy) as Arc<_>)
        .collect();
    policies[victim.index()] = Arc::new(PanicPolicy);
    let cfg = RuntimeConfig::test_faulty();
    let c = RoadsCluster::start_with_policies(net, DelaySpace::paper(n, 77), cfg, policies);
    let q = full_query(&c);

    let t0 = Instant::now();
    let out = c.query(&q, c.network().tree().root());
    assert!(
        t0.elapsed() < Duration::from_millis(cfg.query_deadline_ms),
        "client must not hang on a panicked server"
    );
    assert!(
        !out.complete,
        "a crashed matching server ⇒ possibly missing"
    );
    assert_eq!(out.failed_servers, vec![victim]);
    assert_eq!(unique_ids(&out).len(), (n - 1) * RECORDS_PER_SERVER);
    c.shutdown();
}

#[test]
fn branch_crash_recovers_subtree_via_failover() {
    let n = 13;
    let c = build_cluster(n, 3, RuntimeConfig::test_faulty());
    let tree = c.network().tree();
    let victim = *tree
        .children(tree.root())
        .iter()
        .find(|&&s| !tree.children(s).is_empty())
        .expect("13 servers at degree 3 have an interior non-root node");
    let in_subtree = tree.subtree(victim).len();
    assert!(in_subtree >= 2, "victim must gate other servers");
    assert!(c.kill_server(victim));

    let out = c.query(&full_query(&c), tree.root());
    // The overlay stand-in recovers every *descendant* of the crashed
    // branch server; only its own locally attached records are lost.
    assert_eq!(unique_ids(&out).len(), (n - 1) * RECORDS_PER_SERVER);
    assert_eq!(out.failed_servers, vec![victim]);
    assert!(!out.complete);
    assert_eq!(
        out.retries, 0,
        "a closed mailbox fails over immediately without burning the retry budget"
    );
    c.shutdown();
}

#[test]
fn failover_disabled_loses_the_whole_subtree() {
    let n = 13;
    let cfg = RuntimeConfig {
        enable_failover: false,
        ..RuntimeConfig::test_faulty()
    };
    let c = build_cluster(n, 3, cfg);
    let tree = c.network().tree();
    let victim = *tree
        .children(tree.root())
        .iter()
        .find(|&&s| !tree.children(s).is_empty())
        .unwrap();
    let in_subtree = tree.subtree(victim).len();
    assert!(c.kill_server(victim));

    let out = c.query(&full_query(&c), tree.root());
    assert_eq!(
        unique_ids(&out).len(),
        (n - in_subtree) * RECORDS_PER_SERVER,
        "without failover the victim's descendants are unreachable"
    );
    assert_eq!(out.failed_servers, vec![victim]);
    assert!(!out.complete);
    c.shutdown();
}

/// Regression for the mode-insensitive visited-set dedup. The helper that
/// can stand in for the dead uncle is the entry's own parent — a server the
/// query has *already visited* as a `LocalOnly` ancestor probe. The old
/// `HashSet<ServerId>` dedup refused to contact it again, silently
/// abandoning the dead server's children.
#[test]
fn localonly_probed_ancestor_still_serves_as_failover_helper() {
    let n = 7;
    let c = build_cluster(n, 2, RuntimeConfig::test_faulty());
    let tree = c.network().tree();
    let root = tree.root();
    assert_eq!(tree.children(root).len(), 2, "test needs a binary root");
    // U: a child of the root with its own children; P: the root's other
    // child; entry: a leaf under P. Then U's failover candidates are
    // exactly [P, root] — both already probed LocalOnly as the entry's
    // ancestors by the time U's death is detected.
    let u = *tree
        .children(root)
        .iter()
        .find(|&&s| !tree.children(s).is_empty())
        .expect("7 servers at degree 2 have an interior node");
    let p = *tree.children(root).iter().find(|&&s| s != u).unwrap();
    let entry = *tree
        .children(p)
        .iter()
        .find(|&&s| tree.children(s).is_empty())
        .expect("p must have a leaf child for this topology");
    assert_eq!(
        c.network().replica_set(u).failover_candidates(),
        vec![p, root],
        "precondition: every helper for u is an ancestor of the entry"
    );
    assert!(c.kill_server(u));

    let out = c.query(&full_query(&c), entry);
    assert_eq!(
        unique_ids(&out).len(),
        (n - 1) * RECORDS_PER_SERVER,
        "the LocalOnly-probed parent must be re-contacted as a stand-in"
    );
    assert_eq!(out.failed_servers, vec![u]);
    c.shutdown();
}

#[test]
fn dead_entry_fails_over_to_replica_entry() {
    let n = 9;
    let cfg = RuntimeConfig::test_faulty();
    let c = build_cluster(n, 3, cfg);
    let entry = a_leaf(&c);
    assert!(c.kill_server(entry));

    let t0 = Instant::now();
    let out = c.query(&full_query(&c), entry);
    assert!(
        t0.elapsed() < Duration::from_millis(cfg.query_deadline_ms),
        "entry failover must finish well before the deadline"
    );
    assert_eq!(
        unique_ids(&out).len(),
        (n - 1) * RECORDS_PER_SERVER,
        "a replica entry must take over the whole query"
    );
    assert_eq!(out.failed_servers, vec![entry]);
    assert!(!out.complete);
    c.shutdown();
}

#[test]
fn deadline_cuts_off_slow_cluster() {
    // Every server takes ~800 ms of emulated backend time per query; the
    // deadline is 200 ms. The client must give up on time, not wait.
    let cfg = RuntimeConfig {
        base_query_cost_us: 800_000,
        query_deadline_ms: 200,
        dispatch_timeout_ms: 0, // only the deadline bounds this query
        ..RuntimeConfig::test_fast()
    };
    let c = build_cluster(4, 3, cfg);
    let root = c.network().tree().root();
    let out = c.query(&full_query(&c), root);
    assert!(!out.complete, "a deadline cutoff is never complete");
    assert!(
        out.response_ms >= 200.0 && out.response_ms < 700.0,
        "returned at the deadline, not after the backend: {} ms",
        out.response_ms
    );
    assert!(out.failed_servers.contains(&root), "pending ⇒ failed");
    c.shutdown();
}

/// A query provably missing `entry`'s local data while matching records
/// elsewhere (both asserted as preconditions).
fn query_missing_entry(c: &RoadsCluster, entry: ServerId, lo: f64, hi: f64) -> Query {
    let q = QueryBuilder::new(c.network().schema(), QueryId(2))
        .range("x0", lo, hi)
        .build();
    assert!(
        !c.network().local_summary(entry).may_match(&q),
        "precondition: the query must provably miss the entry's local data"
    );
    assert!(
        !c.network().matching_servers(&q).is_empty(),
        "precondition: matching records must exist elsewhere"
    );
    q
}

/// Regression for unsound completeness on a dead entry. The entry role
/// covers the overlay evaluation for the *whole hierarchy* (ancestor
/// probes, replica shortcuts), but the old completeness check only
/// examined the dead entry's local summary and direct children: with
/// failover disabled, a query started at a dead leaf entry returned zero
/// records with `complete = true` while matching records existed
/// elsewhere.
#[test]
fn dead_entry_without_replacement_is_never_complete() {
    let n = 9;
    let cfg = RuntimeConfig {
        enable_failover: false,
        ..RuntimeConfig::test_faulty()
    };
    let c = build_cluster(n, 3, cfg);
    let entry = a_leaf(&c);
    let q = query_missing_entry(&c, entry, 0.8, 0.95);
    assert!(c.kill_server(entry));

    let out = c.query(&q, entry);
    assert!(out.records.is_empty(), "a dead entry alone returns nothing");
    assert!(
        !out.complete,
        "no replacement entry ran the overlay evaluation — matching \
         records elsewhere are unaccounted for"
    );
    assert_eq!(out.failed_servers, vec![entry]);
    c.shutdown();
}

/// Counterpart guarding against over-correction: when a replica entry
/// takes over and the summaries prove the dead entry held nothing
/// matching, the result is still *provably* complete.
#[test]
fn replacement_entry_restores_provable_completeness() {
    let n = 9;
    let c = build_cluster(n, 3, RuntimeConfig::test_faulty());
    let entry = a_leaf(&c);
    let q = query_missing_entry(&c, entry, 0.8, 0.95);
    let expected: usize = (0..n as u32)
        .map(ServerId)
        .filter(|&s| s != entry)
        .map(|s| c.network().search_local(s, &q).len())
        .sum();
    assert!(expected > 0);
    assert!(c.kill_server(entry));

    let out = c.query(&q, entry);
    assert_eq!(
        unique_ids(&out).len(),
        expected,
        "the replacement entry reaches every matching record"
    );
    assert!(
        out.complete,
        "dead entry provably empty for this query + replacement entry \
         covered the rest ⇒ complete"
    );
    assert_eq!(out.failed_servers, vec![entry]);
    c.shutdown();
}

/// Regression for the Down fast-path: a mailbox found closed is
/// definitively dead until restarted, so the driver must fail over
/// immediately instead of burning `max_retries` backoff cycles on it.
#[test]
fn closed_mailbox_skips_retry_budget() {
    let n = 9;
    let c = build_cluster(n, 3, RuntimeConfig::test_faulty());
    let victim = a_leaf(&c);
    let root = c.network().tree().root();
    assert!(c.kill_server(victim));

    let out = c.query(&full_query(&c), root);
    assert_eq!(out.retries, 0, "closed mailboxes must not consume retries");
    assert_eq!(out.failed_servers, vec![victim]);
    assert_eq!(unique_ids(&out).len(), (n - 1) * RECORDS_PER_SERVER);
    c.shutdown();
}

/// Regression for `servers_contacted`: a reply racing a retry used to be
/// counted twice. A single slow-but-alive server answers after the
/// dispatch timeout already triggered a retry; it is one server,
/// contacted once, and its records merge once.
#[test]
fn late_reply_counts_each_server_once() {
    let cfg = RuntimeConfig {
        base_query_cost_us: 400_000, // slower than the dispatch timeout
        dispatch_timeout_ms: 250,
        max_retries: 1,
        backoff_base_ms: 5,
        query_deadline_ms: 8_000,
        ..RuntimeConfig::test_fast()
    };
    let c = build_cluster(1, 3, cfg);
    let only = c.network().tree().root();

    let out = c.query(&full_query(&c), only);
    assert_eq!(unique_ids(&out).len(), RECORDS_PER_SERVER);
    assert_eq!(
        out.servers_contacted, 1,
        "late/duplicate replies must not inflate the distinct server count"
    );
    assert!(
        out.retries >= 1,
        "the slow server timed out and was retried"
    );
    assert!(out.complete, "its reply landed in the end — nothing failed");
    assert!(out.failed_servers.is_empty());
    c.shutdown();
}

/// Regression for stand-in helper bookkeeping: a helper that died while
/// standing in for one dead server must not be nominated again when a
/// *different* dead server fails over later — its death is already known
/// and re-contacting it only burns another failure cycle.
#[test]
fn failed_standin_helper_is_not_renominated() {
    use roads_telemetry::{EventKind, Recorder};
    let n = 13;
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(64),
        ..RoadsConfig::paper_default()
    };
    // Root children: `a` and `b` (both killed/crashed, both needing
    // failover for their subtrees) and `h`, whose whole subtree holds
    // records far outside the query range — so `h` is never a direct
    // query target, only ever a failover stand-in. The hierarchy layout
    // comes from the balance-aware join walk, so read `h`'s subtree off a
    // probe network before assigning record values.
    let (a, h, b, shielded) = {
        let probe = build_net(n, 3);
        let tree = probe.tree();
        let ch = tree.children(tree.root()).to_vec();
        assert_eq!(ch.len(), 3, "root of 13 @ degree 3 has three children");
        let shielded: Vec<usize> = tree.subtree(ch[1]).iter().map(|s| s.index()).collect();
        (ch[0], ch[1], ch[2], shielded)
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    let v = if shielded.contains(&s) {
                        0.9 + i as f64 * 0.003
                    } else {
                        id as f64 / (n * RECORDS_PER_SERVER) as f64 * 0.5
                    };
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(v)],
                    )
                })
                .collect()
        })
        .collect();
    let net = RoadsNetwork::build(schema, cfg, records);
    {
        let tree = net.tree();
        let root = tree.root();
        assert!(!tree.children(a).is_empty(), "a gates a subtree");
        assert!(!tree.children(b).is_empty(), "b gates a subtree");
        assert!(
            !net.branch_summary(h).may_match(
                &QueryBuilder::new(net.schema(), QueryId(99))
                    .range("x0", 0.0, 0.5)
                    .build()
            ),
            "h's branch must be provably outside the query range"
        );
        // Sibling order makes h the first candidate for a, and a (already
        // failed by then) then h the leading candidates for b.
        assert_eq!(net.replica_set(a).failover_candidates(), vec![h, b, root]);
        assert_eq!(net.replica_set(b).failover_candidates(), vec![a, h, root]);
    }
    // `b` panics on its first direct query, so its failure is detected by
    // dispatch timeout — long after `h`'s death as a stand-in resolved.
    let mut policies: Vec<Arc<dyn SharingPolicy>> = (0..n)
        .map(|_| Arc::new(roads_core::policy::OpenPolicy) as Arc<_>)
        .collect();
    policies[b.index()] = Arc::new(PanicPolicy);
    let mut c = RoadsCluster::start_with_policies(
        net,
        DelaySpace::paper(n, 77),
        RuntimeConfig::test_faulty(),
        policies,
    );
    let rec = Arc::new(Recorder::new(4096));
    c.set_recorder(Arc::clone(&rec));
    assert!(c.kill_server(a));
    assert!(c.kill_server(h));

    let q = QueryBuilder::new(c.network().schema(), QueryId(3))
        .range("x0", 0.0, 0.5)
        .build();
    let root = c.network().tree().root();
    let out = c.query(&q, root);

    // Both dead branches' children were recovered through stand-ins; only
    // the records held by the dead servers themselves (and `h`'s subtree,
    // which lies outside the range) are absent.
    let expect: Vec<u64> = (0..n)
        .filter(|&s| !shielded.contains(&s) && s != a.index() && s != b.index())
        .flat_map(|s| (0..RECORDS_PER_SERVER).map(move |i| (s * RECORDS_PER_SERVER + i) as u64))
        .collect();
    assert_eq!(unique_ids(&out), expect);
    let mut dead = vec![a, b];
    dead.sort();
    assert_eq!(out.failed_servers, dead);
    assert!(!out.complete, "a's and b's own records are lost");
    assert!(out.retries >= 1, "the panicked server consumed its retry");
    // `h` was nominated exactly once (standing in for `a`); after dying
    // there, `b`'s later failover skipped straight past it.
    let events = rec.events();
    let nominations: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Failover && e.node == h.0)
        .collect();
    assert_eq!(
        nominations.len(),
        1,
        "a helper that died standing in must not be re-nominated"
    );
    assert_eq!(nominations[0].detail, a.0 as u64);
    c.shutdown();
}

/// Per-query attribution under concurrent churn. Four client threads
/// share one dispatcher pool, one admission gate (capacity 2) and one
/// flight recorder across three waves — healthy, after killing a leaf,
/// after restarting it — while a second, panicking leaf dies for good in
/// wave one. Every outcome must blame only servers that were actually
/// dead during its wave, and the recorder's per-trace bookkeeping must
/// reconcile exactly with what the outcomes report: concurrency must not
/// pool retries or events across in-flight queries.
#[test]
fn concurrent_queries_attribute_faults_during_churn() {
    use roads_telemetry::{EventKind, Recorder};
    let n = 13;
    let clients = 4usize;
    let cfg = RuntimeConfig {
        max_inflight_queries: 2, // force queries to queue on the gate
        ..RuntimeConfig::test_faulty()
    };
    let net = build_net(n, 3);
    let (churned, panicker) = {
        let tree = net.tree();
        let mut leaves = (0..n as u32)
            .map(ServerId)
            .filter(|&s| tree.children(s).is_empty());
        (leaves.next().unwrap(), leaves.next().unwrap())
    };
    let mut policies: Vec<Arc<dyn SharingPolicy>> = (0..n)
        .map(|_| Arc::new(roads_core::policy::OpenPolicy) as Arc<_>)
        .collect();
    policies[panicker.index()] = Arc::new(PanicPolicy);
    let mut c = RoadsCluster::start_with_policies(net, DelaySpace::paper(n, 77), cfg, policies);
    let rec = Arc::new(Recorder::new(65_536));
    c.set_recorder(Arc::clone(&rec));
    let q = full_query(&c);

    let mut outcomes: Vec<RuntimeOutcome> = Vec::new();
    for wave in 0..3usize {
        match wave {
            1 => assert!(c.kill_server(churned)),
            2 => assert!(c.restart_server(churned)),
            _ => {}
        }
        let wave_outs: Vec<RuntimeOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let (c, q) = (&c, &q);
                    // Entries spread over the hierarchy; in wave 1 one of
                    // them is the dead server itself (entry failover).
                    let entry = ServerId(((i * 5 + wave) % n) as u32);
                    s.spawn(move || c.query(q, entry))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The panicker dies on first contact, so from wave 0 on its
        // records are gone; the churned leaf is only missing in wave 1.
        let mut dead = vec![panicker];
        if wave == 1 {
            dead.push(churned);
        }
        dead.sort();
        for out in &wave_outs {
            assert_eq!(
                out.failed_servers, dead,
                "wave {wave}: blamed set must be exactly the dead servers"
            );
            assert!(!out.complete, "wave {wave}: lost records ⇒ incomplete");
            assert_eq!(
                unique_ids(out).len(),
                (n - dead.len()) * RECORDS_PER_SERVER,
                "wave {wave}: all surviving records, each exactly once"
            );
        }
        outcomes.extend(wave_outs);
    }

    // Reconcile the recorder against the outcomes. One trace per query,
    // each a valid span tree with exactly one start/complete pair, and the
    // per-trace Retry counts must match the per-outcome retry counts as a
    // multiset — pooled or cross-attributed events would break this even
    // if the totals happened to agree.
    let events = rec.events();
    let traces = roads_telemetry::trace_ids(&events);
    assert_eq!(traces.len(), outcomes.len(), "one trace per query");
    let mut retry_by_trace: Vec<usize> = Vec::new();
    for t in traces {
        let tev = roads_telemetry::trace_events(&events, t);
        roads_telemetry::span_tree_root(&tev, t).unwrap_or_else(|e| panic!("trace {}: {e}", t.0));
        assert_eq!(
            tev.iter()
                .filter(|e| e.kind == EventKind::QueryStart)
                .count(),
            1
        );
        assert_eq!(
            tev.iter()
                .filter(|e| e.kind == EventKind::QueryComplete)
                .count(),
            1
        );
        retry_by_trace.push(tev.iter().filter(|e| e.kind == EventKind::Retry).count());
    }
    retry_by_trace.sort_unstable();
    let mut retry_by_outcome: Vec<usize> = outcomes.iter().map(|o| o.retries).collect();
    retry_by_outcome.sort_unstable();
    assert_eq!(
        retry_by_trace, retry_by_outcome,
        "recorded retries must attribute to exactly the query that retried"
    );
    c.shutdown();
}

/// Straggler injection: a slowed server keeps answering (no records
/// lost, query stays complete) but its emulated backend cost stretches
/// by the factor, the fault log records onset and recovery, and
/// `restore_server` returns it to baseline.
#[test]
fn slow_server_degrades_without_killing() {
    use roads_runtime::FaultKind;
    let cfg = RuntimeConfig {
        base_query_cost_us: 30_000,
        dispatch_timeout_ms: 0,
        query_deadline_ms: 20_000,
        ..RuntimeConfig::test_fast()
    };
    let c = build_cluster(1, 3, cfg);
    let only = c.network().tree().root();
    let q = full_query(&c);

    let healthy = c.query(&q, only);
    assert!(healthy.complete);

    assert_eq!(c.slow_factor(only), 1.0);
    assert!(c.slow_server(only, 8.0));
    assert!(!c.slow_server(only, 2.0), "already slowed");
    assert_eq!(c.slow_factor(only), 8.0);

    let slowed = c.query(&q, only);
    assert!(slowed.complete, "a straggler is alive: nothing is missing");
    assert_eq!(unique_ids(&slowed).len(), RECORDS_PER_SERVER);
    assert!(slowed.failed_servers.is_empty());
    // 30 ms of backend cost at 8x ⇒ ≥ 240 ms; leave slack for the
    // healthy-side baseline but require a clear multiple.
    assert!(
        slowed.response_ms >= 3.0 * healthy.response_ms.max(30.0),
        "straggler must be visibly slower: {} ms vs {} ms",
        slowed.response_ms,
        healthy.response_ms
    );

    assert!(c.restore_server(only));
    assert!(!c.restore_server(only), "already restored");
    assert_eq!(c.slow_factor(only), 1.0);
    let restored = c.query(&q, only);
    assert!(restored.complete);

    let log = c.fault_log();
    let kinds: Vec<FaultKind> = log.events().iter().map(|e| e.kind).collect();
    assert_eq!(kinds, vec![FaultKind::Slow, FaultKind::Restore]);
    assert_eq!(log.events()[0].factor, 8.0);
    assert!(log.events()[0].kind.is_onset());
    assert!(!log.events()[1].kind.is_onset());
    c.shutdown();
}

#[test]
fn restart_server_restores_full_service() {
    let n = 9;
    let c = build_cluster(n, 3, RuntimeConfig::test_faulty());
    let victim = a_leaf(&c);
    let root = c.network().tree().root();
    assert!(c.kill_server(victim));

    let degraded = c.query(&full_query(&c), root);
    assert_eq!(unique_ids(&degraded).len(), (n - 1) * RECORDS_PER_SERVER);
    assert!(!degraded.complete);

    assert!(c.restart_server(victim));
    let healed = c.query(&full_query(&c), root);
    assert_eq!(unique_ids(&healed).len(), n * RECORDS_PER_SERVER);
    assert!(healed.complete, "restart restores provable completeness");
    assert!(healed.failed_servers.is_empty());
    c.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever subset of servers is killed, `query_as` terminates within
    /// the deadline, returns each surviving record at most once, never
    /// blames a live server, and claims completeness exactly when it holds.
    #[test]
    fn query_terminates_under_arbitrary_kill_schedules(
        n in 5usize..16,
        kills in prop::collection::vec(0usize..64, 0..5),
    ) {
        // A generous per-dispatch timeout keeps live-server false
        // positives out of the schedule even on loaded CI machines.
        let cfg = RuntimeConfig {
            dispatch_timeout_ms: 2_000,
            ..RuntimeConfig::test_faulty()
        };
        let c = build_cluster(n, 3, cfg);
        let killed: BTreeSet<ServerId> =
            kills.iter().map(|k| ServerId((k % n) as u32)).collect();
        for &s in &killed {
            prop_assert!(c.kill_server(s));
        }
        let start = ServerId((n - 1) as u32);

        let t0 = Instant::now();
        let out = c.query(&full_query(&c), start);
        prop_assert!(
            t0.elapsed() < Duration::from_millis(cfg.query_deadline_ms + 2_000),
            "query must terminate near the deadline, took {:?}", t0.elapsed()
        );

        let ids = unique_ids(&out);
        for &id in &ids {
            let holder = ServerId((id as usize / RECORDS_PER_SERVER) as u32);
            prop_assert!(!killed.contains(&holder), "record from a dead server");
        }
        for f in &out.failed_servers {
            prop_assert!(killed.contains(f), "blamed live server {f:?}");
        }
        if killed.is_empty() {
            prop_assert!(out.complete);
            prop_assert_eq!(ids.len(), n * RECORDS_PER_SERVER);
        } else {
            // Every server holds matching records, so any kill loses some.
            prop_assert!(!out.complete);
            prop_assert!(ids.len() <= (n - killed.len()) * RECORDS_PER_SERVER);
        }
        c.shutdown();
    }
}
