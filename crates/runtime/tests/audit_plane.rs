//! Summary-fidelity audit plane acceptance tests: an instrumented
//! [`RoadsCluster`] with attached [`AuditMetrics`] must fold live
//! branch-dispatch outcomes into per-level `audit.live_*` counters, a
//! background [`Auditor`] against the same cluster must surface kill-
//! induced overlay divergence and ground-truth false positives in the
//! OpenMetrics scrape, reconverge after restart + refresh, and the
//! `AUDIT.json` artifact must round-trip through its strict parser.

use roads_core::{RoadsConfig, RoadsNetwork};
use roads_netsim::DelaySpace;
use roads_records::{OwnerId, Query, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
use roads_runtime::{AuditConfig, AuditMetrics, AuditReport, Auditor, RoadsCluster, RuntimeConfig};
use roads_summary::SummaryConfig;
use roads_telemetry::{Json, OpenMetricsSnapshot, Registry};
use std::sync::Arc;
use std::time::Duration;

const RECORDS_PER_SERVER: usize = 10;

fn build_net(n: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(64),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            (0..RECORDS_PER_SERVER)
                .map(|i| {
                    let id = s * RECORDS_PER_SERVER + i;
                    Record::new_unchecked(
                        RecordId(id as u64),
                        OwnerId(s as u32),
                        vec![Value::Float(id as f64 / (n * RECORDS_PER_SERVER) as f64)],
                    )
                })
                .collect()
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

/// One record per server at `s / n` with fine histogram buckets: every
/// record sits alone in its bucket, so a converged overlay audits with
/// zero false positives — kill-induced staleness is the only FP source.
fn sparse_net(n: usize) -> RoadsNetwork {
    let schema = Schema::unit_numeric(1);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(128),
        ..RoadsConfig::paper_default()
    };
    let records: Vec<Vec<Record>> = (0..n)
        .map(|s| {
            vec![Record::new_unchecked(
                RecordId(s as u64),
                OwnerId(s as u32),
                vec![Value::Float(s as f64 / n as f64)],
            )]
        })
        .collect();
    RoadsNetwork::build(schema, cfg, records)
}

/// Ground-truth probes for [`sparse_net`]: one narrow range query per
/// server, centered on its record value.
fn probes(net: &RoadsNetwork, n: usize) -> Vec<Query> {
    (0..n)
        .map(|s| {
            let v = s as f64 / n as f64;
            QueryBuilder::new(net.schema(), QueryId(s as u64))
                .range("x0", v - 0.002, v + 0.002)
                .build()
        })
        .collect()
}

fn manual_audit_cfg() -> AuditConfig {
    AuditConfig {
        interval: Duration::from_secs(3600), // ticks driven manually
        probes_per_tick: usize::MAX / 2,     // whole probe set per tick
        refresh_every: 1,
        ..AuditConfig::default()
    }
}

#[test]
fn live_branch_outcomes_fold_into_audit_counters() {
    let n = 13;
    let reg = Registry::new();
    let mut c = RoadsCluster::start_instrumented(
        build_net(n),
        DelaySpace::paper(n, 31),
        RuntimeConfig::test_fast(),
        &reg,
    );
    let audit = Arc::new(AuditMetrics::new(&reg, c.network().tree().levels()));
    c.set_audit_metrics(Arc::clone(&audit));
    assert!(c.audit_metrics().is_some());
    let root = c.network().tree().root();

    // A query that matches nothing but lands inside a populated histogram
    // bucket: records sit at multiples of 1/130, buckets are 1/64 wide,
    // and (0.3875, 0.3885) falls between records 50/130 and 51/130 inside
    // bucket 24 (which holds records 49 and 50). Every summary on the
    // path vouches for the branch, the leaves come back empty-handed — a
    // live false positive at the leaf level.
    let spurious = QueryBuilder::new(c.network().schema(), QueryId(7))
        .range("x0", 0.3875, 0.3885)
        .build();
    let out = c.query(&spurious, root);
    assert!(out.records.is_empty());

    let counters = reg.counter_values();
    let live_probes: u64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("audit.live_probes"))
        .map(|(_, &v)| v)
        .sum();
    let live_fps: u64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("audit.live_false_positives"))
        .map(|(_, &v)| v)
        .sum();
    assert!(
        live_probes >= 1,
        "branch replies must be folded: {counters:?}"
    );
    assert!(
        live_fps >= 1,
        "in-bucket miss must count as live FP: {counters:?}"
    );
    c.shutdown();
}

#[test]
fn auditor_surfaces_kill_divergence_and_reconverges() {
    let n = 13;
    let reg = Registry::new();
    let c = RoadsCluster::start_instrumented(
        sparse_net(n),
        DelaySpace::paper(n, 17),
        RuntimeConfig::test_faulty(),
        &reg,
    );
    let net = c.shared_network();
    let metrics = Arc::new(AuditMetrics::new(&reg, net.tree().levels()));
    let auditor = Auditor::start(
        Arc::clone(&net),
        Arc::clone(&metrics),
        manual_audit_cfg(),
        probes(&net, n),
        c.liveness(),
    );

    // Converged cluster: the audit plane sees a clean overlay.
    auditor.tick_now();
    let clean = auditor.report();
    assert!(clean.probes() > 0);
    assert_eq!(clean.false_positives(), 0);
    assert_eq!(clean.false_negatives(), 0);
    assert_eq!(clean.divergence, 0.0);

    // Kill the deepest leaf: its branch summary lingers at overlay
    // holders (nobody can re-push a dead branch) — stale copies now vouch
    // for records that are gone.
    let victim = *net.tree().leaves().iter().max().unwrap();
    assert!(c.kill_server(victim));
    auditor.tick_now();
    let degraded = auditor.report();
    assert!(degraded.divergence > 0.0, "{degraded:?}");
    assert!(degraded.false_positives() > 0, "{degraded:?}");

    // The scrape carries the audit families with live values.
    let text = OpenMetricsSnapshot::from_registry(&reg).render();
    assert!(text.contains("# TYPE audit_divergence_ppm gauge\n"));
    assert!(text.contains("# TYPE audit_staleness_p99_rounds gauge\n"));
    assert!(
        text.contains("audit_false_positives_total{level="),
        "per-level FP series missing:\n{text}"
    );
    let gauges = reg.gauge_values();
    assert!(gauges["audit.divergence_ppm"] > 0);

    // Restart; the next refresh re-pushes every copy and the overlay
    // reconverges to zero divergence.
    assert!(c.restart_server(victim));
    auditor.tick_now();
    let recovered = auditor.stop();
    assert_eq!(recovered.divergence, 0.0, "{recovered:?}");
    assert_eq!(reg.gauge_values()["audit.divergence_ppm"], 0);
    c.shutdown();
}

#[test]
fn audit_report_round_trips_through_json() {
    let n = 13;
    let reg = Registry::new();
    let c = RoadsCluster::start(
        sparse_net(n),
        DelaySpace::paper(n, 5),
        RuntimeConfig::test_fast(),
    );
    let net = c.shared_network();
    let metrics = Arc::new(AuditMetrics::new(&reg, net.tree().levels()));
    let auditor = Auditor::start(
        Arc::clone(&net),
        metrics,
        manual_audit_cfg(),
        probes(&net, n),
        c.liveness(),
    );
    c.kill_server(*net.tree().leaves().iter().max().unwrap());
    auditor.tick_now();
    let report = auditor.stop();
    let doc = report.to_json();
    assert!(roads_runtime::is_audit_doc(&doc));
    let parsed = AuditReport::from_json(&Json::parse(&doc.to_string_pretty()).unwrap()).unwrap();
    assert_eq!(parsed, report);
    assert!(!parsed.levels.is_empty());
    c.shutdown();
}
