//! The live central-repository baseline: one server thread holding every
//! record, serving queries in a single round trip with *serial* retrieval.

use crate::cluster::RuntimeOutcome;
use crate::config::RuntimeConfig;
use crate::store::RecordStore;
use crossbeam::channel::{unbounded, Sender};
use roads_netsim::DelaySpace;
use roads_records::{Query, Record, Schema, WireSize};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

enum RepoRequest {
    Query {
        query: Query,
        reply: Sender<Vec<Record>>,
    },
    Shutdown,
}

/// A running central repository.
pub struct CentralCluster {
    delays: Arc<DelaySpace>,
    cfg: RuntimeConfig,
    repo: usize,
    sender: Sender<RepoRequest>,
    handle: Option<JoinHandle<()>>,
}

impl CentralCluster {
    /// Spawn the repository thread at delay-space index `repo`, loading all
    /// owners' records.
    pub fn start(
        schema: Schema,
        records_per_owner: Vec<Vec<Record>>,
        delays: DelaySpace,
        repo: usize,
        cfg: RuntimeConfig,
    ) -> Self {
        let all: Vec<Record> = records_per_owner.into_iter().flatten().collect();
        let store = RecordStore::new(schema, all);
        let (tx, rx) = unbounded::<RepoRequest>();
        let handle = thread::Builder::new()
            .name("central-repo".into())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    match req {
                        RepoRequest::Shutdown => break,
                        RepoRequest::Query { query, reply } => {
                            let records: Vec<Record> =
                                store.search(&query).into_iter().cloned().collect();
                            let result_bytes: usize = records.iter().map(WireSize::wire_size).sum();
                            // Serial retrieval of the whole result set at
                            // one server — the contrast to ROADS' parallel
                            // per-branch retrieval.
                            let busy_us = cfg.base_query_cost_us
                                + cfg.per_record_retrieval_us * records.len() as u64
                                + cfg.transfer_us(result_bytes);
                            thread::sleep(Duration::from_micros(busy_us));
                            let _ = reply.send(records);
                        }
                    }
                }
            })
            .expect("spawn repository thread");
        CentralCluster {
            delays: Arc::new(delays),
            cfg,
            repo,
            sender: tx,
            handle: Some(handle),
        }
    }

    /// Execute one query from a client at delay-space index `start`.
    pub fn query(&self, query: &Query, start: usize) -> RuntimeOutcome {
        let t0 = Instant::now();
        let one_way_ms = self.delays.delay_ms(start, self.repo) * self.cfg.delay_scale;
        let one_way = Duration::from_micros((one_way_ms * 1000.0) as u64);
        thread::sleep(one_way);
        let (reply_tx, reply_rx) = unbounded();
        self.sender
            .send(RepoRequest::Query {
                query: query.clone(),
                reply: reply_tx,
            })
            .expect("repository thread alive");
        let records = reply_rx.recv().expect("repository replies");
        thread::sleep(one_way);
        RuntimeOutcome {
            response_ms: t0.elapsed().as_secs_f64() * 1000.0,
            records,
            servers_contacted: 1,
            complete: true,
            failed_servers: Vec::new(),
            retries: 0,
        }
    }

    /// Stop the repository thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.sender.send(RepoRequest::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CentralCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{OwnerId, QueryBuilder, QueryId, RecordId, Value};

    fn records(n_owners: usize, per_owner: usize) -> Vec<Vec<Record>> {
        (0..n_owners)
            .map(|o| {
                (0..per_owner)
                    .map(|i| {
                        Record::new_unchecked(
                            RecordId((o * per_owner + i) as u64),
                            OwnerId(o as u32),
                            vec![Value::Float(o as f64 / n_owners as f64)],
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn central_query_round_trip() {
        let schema = Schema::unit_numeric(1);
        let c = CentralCluster::start(
            schema.clone(),
            records(8, 10),
            DelaySpace::paper(8, 3),
            0,
            RuntimeConfig::test_fast(),
        );
        let q = QueryBuilder::new(&schema, QueryId(1))
            .range("x0", 0.0, 0.3)
            .build();
        let out = c.query(&q, 5);
        assert_eq!(out.records.len(), 30, "owners 0,1,2 match");
        assert!(out.response_ms > 0.0);
        assert_eq!(out.servers_contacted, 1);
        c.shutdown();
    }

    #[test]
    fn retrieval_cost_scales_with_matches() {
        let schema = Schema::unit_numeric(1);
        let cfg = RuntimeConfig {
            per_record_retrieval_us: 2_000,
            base_query_cost_us: 0,
            delay_scale: 0.0,
            ..RuntimeConfig::test_fast()
        };
        let c = CentralCluster::start(
            schema.clone(),
            records(10, 20),
            DelaySpace::paper(10, 3),
            0,
            cfg,
        );
        let narrow = QueryBuilder::new(&schema, QueryId(2))
            .range("x0", 0.0, 0.05)
            .build();
        let wide = QueryBuilder::new(&schema, QueryId(3))
            .range("x0", 0.0, 1.0)
            .build();
        let t_narrow = c.query(&narrow, 0);
        let t_wide = c.query(&wide, 0);
        assert_eq!(t_narrow.records.len(), 20);
        assert_eq!(t_wide.records.len(), 200);
        assert!(
            t_wide.response_ms > t_narrow.response_ms * 3.0,
            "serial retrieval must dominate: {} vs {}",
            t_wide.response_ms,
            t_narrow.response_ms
        );
        c.shutdown();
    }
}
