//! The live ROADS cluster: one OS thread per server, channels as links.
//!
//! The converged control state (hierarchy, summaries, replica sets) comes
//! from a [`RoadsNetwork`]; what runs *live* here is the part the paper
//! could not simulate — concurrent query processing against per-server
//! record stores, with real parallelism across servers and delay-space
//! latencies applied per message.
//!
//! # Fault model
//!
//! Message delivery runs on a bounded dispatcher pool
//! ([`crate::faults::Dispatcher`]) instead of one helper thread per
//! contacted server. Every dispatched sub-query carries a per-dispatch
//! timeout; expiry triggers bounded retry with exponential backoff, then
//! replica-overlay failover (a mailbox found already closed skips the
//! retry budget — the thread is gone until restarted — and fails over
//! immediately): a sibling or ancestor holding the dead
//! server's branch summary (§III-C) stands in and forwards the sub-query
//! to the dead server's children. A per-query deadline bounds the whole
//! operation, and [`RuntimeOutcome::complete`] reports truthfully whether
//! anything may be missing. Threads can be torn down and respawned live
//! via [`RoadsCluster::kill_server`] / [`RoadsCluster::restart_server`]
//! for fault injection.
//!
//! # Concurrency
//!
//! [`RoadsCluster::query`] takes `&self` and any number of client threads
//! may call it at once: each call owns a private [`Driver`] (its own
//! attempt table, visit ledger, reply channel, and failure bookkeeping),
//! so outcomes — `retries`, `failed_servers`, `servers_contacted`,
//! recorder events — are attributed to exactly the query that caused
//! them, never pooled across in-flight queries. The shared pieces (the
//! dispatcher pool, server mailboxes) are multi-producer by construction.
//! Admission is bounded by [`RuntimeConfig::max_inflight_queries`]; the
//! `runtime.inflight_queries` gauge tracks the live count on instrumented
//! clusters.

use crate::audit::{AuditMetrics, Liveness};
use crate::config::RuntimeConfig;
use crate::faults::{backoff_delay, mode_rank, DispatchHandle, Dispatcher, VisitLedger};
use crate::health::{ClusterHealth, FaultKind, FaultLog, RuntimeMetrics, ServerHealth};
use crate::store::RecordStore;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use roads_core::policy::{apply_policy, OpenPolicy, RequesterId, SharingPolicy};
use roads_core::{
    plan_query, CachedResult, DeltaOutcome, PlanAction, ResultCache, RoadsNetwork, SearchScope,
    ServerId,
};
use roads_netsim::DelaySpace;
use roads_records::{Query, Record, WireSize};
use roads_summary::SummaryVerdict;
use roads_telemetry::{
    span::timed, trace_events, Event, EventKind, ExplainDecision, ExplainHop, Gauge, Histogram,
    HopOutcome, LatencySplit, QueryExplain, Recorder, Registry, SpanId, SummaryKind, TailSampler,
    TraceId,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Counting admission gate bounding concurrent queries over the shared
/// dispatcher (`max = 0` ⇒ unbounded). Each query holds one slot for its
/// whole lifetime; acquisition blocks — queries queue at the door instead
/// of piling unbounded work onto every server mailbox.
struct InflightGate {
    max: usize,
    count: StdMutex<usize>,
    freed: Condvar,
}

impl InflightGate {
    fn new(max: usize) -> Self {
        InflightGate {
            max,
            count: StdMutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Block until a slot frees, take it, and return the in-flight count
    /// including this query.
    fn acquire(&self) -> usize {
        let mut n = self.count.lock().expect("gate lock poisoned");
        while self.max > 0 && *n >= self.max {
            n = self.freed.wait(n).expect("gate lock poisoned");
        }
        *n += 1;
        *n
    }

    /// Give the slot back; returns the remaining in-flight count.
    fn release(&self) -> usize {
        let mut n = self.count.lock().expect("gate lock poisoned");
        *n -= 1;
        self.freed.notify_one();
        *n
    }
}

/// RAII gate slot: keeps the `runtime.inflight_queries` gauge in step with
/// admission, and releases on every exit path (including unwinds).
struct InflightSlot<'a> {
    gate: &'a InflightGate,
    gauge: Option<&'a Gauge>,
}

impl<'a> InflightSlot<'a> {
    fn enter(gate: &'a InflightGate, gauge: Option<&'a Gauge>) -> Self {
        let n = gate.acquire();
        if let Some(g) = gauge {
            g.set(n as i64);
        }
        InflightSlot { gate, gauge }
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        let n = self.gate.release();
        if let Some(g) = self.gauge {
            g.set(n as i64);
        }
    }
}

/// How a contacted server treats the query (mirrors the simulator's
/// redirect protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactMode {
    /// Entry server: children + overlay shortcuts + ancestor probes.
    Entry,
    /// Branch server: local data + children.
    Branch,
    /// Ancestor probe: local data only.
    LocalOnly,
    /// Overlay stand-in for a crashed server: forward to `dead`'s children
    /// using its replicated branch summary, no local search here.
    Failover {
        /// The unreachable server being routed around.
        dead: ServerId,
    },
}

pub(crate) enum ServerRequest {
    Query {
        query: Query,
        mode: ContactMode,
        requester: RequesterId,
        reply: ReplyHandle,
        /// Stamped by the dispatcher at mailbox delivery; the server's
        /// pickup-time elapsed reading is the request's queue wait.
        enqueued: Instant,
    },
    Shutdown,
}

/// What the dispatcher reports back to a querying client.
pub(crate) enum Notice {
    /// A server's reply landed (after the return delay).
    Reply {
        attempt: u64,
        server: ServerId,
        targets: Vec<(ServerId, ContactMode)>,
        records: Vec<Record>,
        /// Mailbox wait measured by the server (enqueue → pickup), µs.
        queue_us: f64,
        /// Server-side work (summary evaluation + local search + emulated
        /// backend cost), µs.
        compute_us: f64,
    },
    /// The target's mailbox was already closed — its thread exited or
    /// panicked before the request could even be queued. The attempt id
    /// identifies which dispatch (and server) this was.
    Down { attempt: u64 },
}

/// One-shot reply path handed to a server with each request. Replying
/// schedules delivery after the return delay on the dispatcher; dropping
/// it (server killed or panicked mid-request) sends nothing, which the
/// client turns into a timeout instead of a hang.
pub(crate) struct ReplyHandle {
    timer: DispatchHandle,
    done: Sender<Notice>,
    attempt: u64,
    server: ServerId,
    delay_back: Duration,
}

impl ReplyHandle {
    fn send(
        self,
        targets: Vec<(ServerId, ContactMode)>,
        records: Vec<Record>,
        queue_us: f64,
        compute_us: f64,
    ) {
        let ReplyHandle {
            timer,
            done,
            attempt,
            server,
            delay_back,
        } = self;
        timer.schedule_after(
            delay_back,
            DispatchJob::Notify {
                done,
                notice: Notice::Reply {
                    attempt,
                    server,
                    targets,
                    records,
                    queue_us,
                    compute_us,
                },
            },
        );
    }
}

/// A unit of timed work on the dispatcher pool.
pub(crate) enum DispatchJob {
    /// Deliver a request to a server's mailbox; a closed mailbox is
    /// reported straight back as [`Notice::Down`].
    Send {
        sender: Sender<ServerRequest>,
        request: ServerRequest,
        done: Sender<Notice>,
        attempt: u64,
        /// The target's `runtime.server.queue_depth` gauge, bumped on a
        /// successful delivery (the server thread decrements on pickup).
        /// The vendored channel has no `len()`, so depth is maintained
        /// explicitly at the two endpoints.
        queue: Option<Arc<Gauge>>,
    },
    /// Deliver a notice to the querying client.
    Notify {
        done: Sender<Notice>,
        notice: Notice,
    },
    #[cfg(test)]
    Probe(Box<dyn FnOnce() + Send>),
}

impl DispatchJob {
    pub(crate) fn run(self) {
        match self {
            DispatchJob::Send {
                sender,
                mut request,
                done,
                attempt,
                queue,
            } => {
                // The queue wait clock starts at mailbox delivery, not at
                // dispatch scheduling (which includes the network delay).
                if let ServerRequest::Query { enqueued, .. } = &mut request {
                    *enqueued = Instant::now();
                }
                if sender.send(request).is_err() {
                    let _ = done.send(Notice::Down { attempt });
                } else if let Some(q) = queue {
                    q.add(1);
                }
            }
            DispatchJob::Notify { done, notice } => {
                let _ = done.send(notice);
            }
            #[cfg(test)]
            DispatchJob::Probe(f) => f(),
        }
    }

    #[cfg(test)]
    pub(crate) fn test_probe(f: impl FnOnce() + Send + 'static) -> Self {
        DispatchJob::Probe(Box::new(f))
    }
}

/// Result of one live query.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOutcome {
    /// Total response time: query sent → all matching records received.
    pub response_ms: f64,
    /// Records received.
    pub records: Vec<Record>,
    /// Distinct servers whose replies were received. Late or duplicate
    /// replies (a reply racing a retry) and overlay stand-in replies count
    /// each server once.
    pub servers_contacted: usize,
    /// Whether the result provably covers every matching record: the
    /// deadline did not cut the query short, and for every failed server
    /// the summaries prove neither its local data nor any unreached child
    /// branch could match. `false` promises only that records MAY be
    /// missing — never that returned records are wrong.
    pub complete: bool,
    /// Servers given up on (mailbox closed or timed out past all
    /// retries), ascending by id. Overlay stand-ins that failed are not
    /// listed — only servers whose own data/branch was being queried.
    pub failed_servers: Vec<ServerId>,
    /// Dispatches re-sent after a per-dispatch timeout.
    pub retries: usize,
}

/// A server thread's read handle onto its own straggler-factor slot
/// (f64 bit pattern in an `AtomicU64`; 1.0 = healthy).
#[derive(Clone)]
struct SlowSlot {
    board: Arc<Vec<AtomicU64>>,
    index: usize,
}

impl SlowSlot {
    fn new(board: &Arc<Vec<AtomicU64>>, index: usize) -> Self {
        SlowSlot {
            board: Arc::clone(board),
            index,
        }
    }

    fn factor(&self) -> f64 {
        f64::from_bits(self.board[self.index].load(Ordering::Relaxed))
    }
}

/// One live server: mailbox, thread, liveness flag, owner policy.
struct ServerSlot {
    sender: Sender<ServerRequest>,
    handle: Option<JoinHandle<()>>,
    alive: Arc<AtomicBool>,
    policy: Arc<dyn SharingPolicy>,
}

/// A running ROADS federation of server threads.
pub struct RoadsCluster {
    net: Arc<RoadsNetwork>,
    delays: Arc<DelaySpace>,
    cfg: RuntimeConfig,
    servers: Vec<Mutex<ServerSlot>>,
    dispatcher: Dispatcher,
    gate: InflightGate,
    metrics: Option<RuntimeMetrics>,
    recorder: Option<Arc<Recorder>>,
    tail: Option<Arc<TailSampler>>,
    /// Shared liveness board for the audit plane. Slot `alive` flags are
    /// replaced wholesale on restart (a fresh `Arc` per spawn), so the
    /// auditor's liveness closure reads this stable board instead.
    live_board: Arc<Vec<AtomicBool>>,
    /// Per-server straggler factors (f64 bit patterns, 1.0 = healthy).
    /// Stable across restarts like `live_board`; each server thread holds
    /// its own slot's `Arc` and scales its emulated backend cost by it,
    /// while `scaled_delay` applies the slower endpoint's factor to every
    /// message between a pair.
    slow_board: Arc<Vec<AtomicU64>>,
    /// Timestamped log of injected faults (kill/restart/slow/restore),
    /// shared with the watchdog for incident correlation.
    fault_log: Arc<FaultLog>,
    audit: Option<Arc<AuditMetrics>>,
    /// TTL'd result cache, present when `cfg.cache_ttl_rounds > 0`. Keyed
    /// by (entry, requester, scope, query fingerprint); epochs advance via
    /// [`RoadsCluster::advance_cache_round`].
    cache: Option<Arc<ResultCache>>,
}

impl RoadsCluster {
    /// Spawn one server thread per federation member, every owner using
    /// the [`OpenPolicy`] (share everything).
    pub fn start(net: RoadsNetwork, delays: DelaySpace, cfg: RuntimeConfig) -> Self {
        let n = net.len();
        let policies: Vec<Arc<dyn SharingPolicy>> = (0..n)
            .map(|_| Arc::new(OpenPolicy) as Arc<dyn SharingPolicy>)
            .collect();
        Self::start_with_policies(net, delays, cfg, policies)
    }

    /// [`RoadsCluster::start`] with full health instrumentation into
    /// `reg`: phase timing (`runtime.*_us` histograms), query/retry/
    /// deadline-miss/SLO counters, per-mode dispatch-latency histograms,
    /// per-server mailbox queue-depth and liveness gauges, and labeled
    /// `runtime.fault_events` counters. Every family is declared at
    /// startup, so an OpenMetrics scrape is complete from the first
    /// moment. The uninstrumented constructors skip every instrument (no
    /// telemetry cost when unused).
    pub fn start_instrumented(
        net: RoadsNetwork,
        delays: DelaySpace,
        cfg: RuntimeConfig,
        reg: &Registry,
    ) -> Self {
        let n = net.len();
        let policies: Vec<Arc<dyn SharingPolicy>> = (0..n)
            .map(|_| Arc::new(OpenPolicy) as Arc<dyn SharingPolicy>)
            .collect();
        Self::start_inner(
            net,
            delays,
            cfg,
            policies,
            Some(RuntimeMetrics::new(reg, n)),
        )
    }

    /// Spawn one server thread per federation member, each enforcing its
    /// owner's [`SharingPolicy`] before returning records (§II voluntary
    /// sharing: the owner retains final control over what is returned).
    pub fn start_with_policies(
        net: RoadsNetwork,
        delays: DelaySpace,
        cfg: RuntimeConfig,
        policies: Vec<Arc<dyn SharingPolicy>>,
    ) -> Self {
        Self::start_inner(net, delays, cfg, policies, None)
    }

    fn start_inner(
        net: RoadsNetwork,
        delays: DelaySpace,
        cfg: RuntimeConfig,
        policies: Vec<Arc<dyn SharingPolicy>>,
        metrics: Option<RuntimeMetrics>,
    ) -> Self {
        assert_eq!(net.len(), delays.len(), "delay space must cover servers");
        assert_eq!(net.len(), policies.len(), "one policy per server");
        let net = Arc::new(net);
        let delays = Arc::new(delays);
        let slow_board = Arc::new(
            (0..net.len())
                .map(|_| AtomicU64::new(1.0f64.to_bits()))
                .collect::<Vec<_>>(),
        );
        let servers = policies
            .into_iter()
            .enumerate()
            .map(|(s, policy)| {
                Mutex::new(spawn_server(
                    ServerId(s as u32),
                    &net,
                    cfg,
                    policy,
                    metrics.as_ref().map(|m| Arc::clone(&m.local_search)),
                    metrics
                        .as_ref()
                        .map(|m| Arc::clone(&m.servers[s].queue_depth)),
                    SlowSlot::new(&slow_board, s),
                ))
            })
            .collect();
        let dispatcher = Dispatcher::start(cfg.dispatcher_threads);
        let live_board = Arc::new(
            (0..net.len())
                .map(|_| AtomicBool::new(true))
                .collect::<Vec<_>>(),
        );
        RoadsCluster {
            net,
            delays,
            cfg,
            servers,
            dispatcher,
            gate: InflightGate::new(cfg.max_inflight_queries),
            metrics,
            recorder: None,
            tail: None,
            live_board,
            slow_board,
            fault_log: Arc::new(FaultLog::new()),
            audit: None,
            cache: (cfg.cache_ttl_rounds > 0)
                .then(|| Arc::new(ResultCache::new(cfg.cache_ttl_rounds))),
        }
    }

    /// The TTL'd result cache, when [`RuntimeConfig::cache_ttl_rounds`]
    /// enabled one at startup.
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.cache.as_ref()
    }

    /// An update round / replication wave landed: advance the cache epoch
    /// and purge entries older than the TTL. Returns how many entries
    /// expired (0 with no cache configured). On an instrumented cluster
    /// the purge count lands on `roads.cache.expired` — TTL aging, kept
    /// separate from delta-driven `roads.cache.invalidated`.
    pub fn advance_cache_round(&self) -> u64 {
        let Some(cache) = &self.cache else { return 0 };
        let purged = cache.advance_round();
        if let Some(m) = &self.metrics {
            m.cache_expired.add(purged);
        }
        purged
    }

    /// An incremental update round ([`roads_core::update_round_delta`])
    /// landed: mirror its [`DeltaOutcome`] into the `roads.delta.*` counter
    /// family and purge exactly the cached results the delta can have
    /// changed (dirty-scope intersection + delta-summary match), counted on
    /// `roads.cache.invalidated`. Returns how many entries were
    /// invalidated. The record delta itself is applied to the network by
    /// the simulation plane, which owns `&mut RoadsNetwork`; a live
    /// cluster observes the outcome here.
    pub fn observe_delta_round(&self, outcome: &DeltaOutcome) -> u64 {
        if let Some(m) = &self.metrics {
            m.delta_applied.add(outcome.applied);
            m.delta_rejected.add(outcome.rejected);
            m.delta_dirty_servers.add(outcome.dirty.len() as u64);
            m.delta_dirty_branches
                .add(outcome.dirty_branches.len() as u64);
            m.delta_shard_rebuilds.add(outcome.shard_rebuilds);
        }
        let Some(cache) = &self.cache else { return 0 };
        let purged = cache.invalidate_delta(self.net.tree(), outcome);
        if let Some(m) = &self.metrics {
            m.cache_invalidated.add(purged);
        }
        purged
    }

    /// Attach a flight recorder: every subsequent [`Self::query_as`]
    /// records its dispatch tree as causal `QueryHop` spans (wall-clock
    /// microseconds from query start) under a fresh trace, plus
    /// `DispatchTimeout`/`Retry`/`Failover` events on the fault paths.
    /// Without a recorder, queries do zero event-recording work.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        self.recorder = Some(rec);
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Attach a tail-based sampler: every subsequent query assembles a
    /// [`QueryExplain`] provenance record and offers it to the sampler on
    /// completion; slow / failed / incomplete queries are retained with
    /// their flight-recorder trace (when a recorder is also attached),
    /// everything else folds into the sampler's live histogram and is
    /// dropped. Without a sampler, plain [`Self::query`] calls skip
    /// explain assembly entirely.
    pub fn set_tail_sampler(&mut self, tail: Arc<TailSampler>) {
        self.tail = Some(tail);
    }

    /// The attached tail sampler, if any.
    pub fn tail_sampler(&self) -> Option<&Arc<TailSampler>> {
        self.tail.as_ref()
    }

    /// Attach audit instruments: every subsequent branch-mode reply is
    /// folded into the per-level `audit.live_probes` /
    /// `audit.live_false_positives` counters (a live false positive is a
    /// branch dispatch whose lossy summary matched but which returned
    /// neither records nor redirects). Share the same [`AuditMetrics`]
    /// with a background [`crate::audit::Auditor`] so sampled ground
    /// truth and live traffic land in one scrape.
    pub fn set_audit_metrics(&mut self, audit: Arc<AuditMetrics>) {
        self.audit = Some(audit);
    }

    /// The attached audit instruments, if any.
    pub fn audit_metrics(&self) -> Option<&Arc<AuditMetrics>> {
        self.audit.as_ref()
    }

    /// A liveness oracle over this cluster's kill/restart bookkeeping,
    /// safe to hold across restarts (restart replaces the slot's own
    /// flag, this board is stable). Feed it to
    /// [`crate::audit::Auditor::start`].
    pub fn liveness(&self) -> Liveness {
        let board = Arc::clone(&self.live_board);
        Arc::new(move |s: ServerId| {
            board
                .get(s.index())
                .map(|b| b.load(Ordering::Relaxed))
                .unwrap_or(false)
        })
    }

    /// The converged control state.
    pub fn network(&self) -> &RoadsNetwork {
        &self.net
    }

    /// The converged control state, shared — what a background
    /// [`crate::audit::Auditor`] audits against.
    pub fn shared_network(&self) -> Arc<RoadsNetwork> {
        Arc::clone(&self.net)
    }

    /// Tear down server `id`'s thread for fault injection: in-flight work
    /// is abandoned (its reply is dropped, surfacing to clients as a
    /// dispatch timeout) and the mailbox closes, so later dispatches fail
    /// fast. Blocks until the thread exits (at most one emulated backend
    /// busy period). Returns `false` if the server was already killed.
    pub fn kill_server(&self, id: ServerId) -> bool {
        let handle = {
            let mut slot = self.servers[id.index()].lock();
            let Some(handle) = slot.handle.take() else {
                return false;
            };
            slot.alive.store(false, Ordering::Relaxed);
            // Wake the thread if it is idle in recv(); the flag makes it
            // drop anything still queued.
            let _ = slot.sender.send(ServerRequest::Shutdown);
            handle
        };
        self.live_board[id.index()].store(false, Ordering::Relaxed);
        let _ = handle.join();
        if let Some(m) = &self.metrics {
            let si = &m.servers[id.index()];
            si.alive.set(0);
            // The dead mailbox drops everything still queued.
            si.queue_depth.set(0);
            m.kills.inc();
        }
        self.fault_log.record(id, FaultKind::Kill, 1.0);
        true
    }

    /// Respawn a killed server with a fresh mailbox, its records reloaded
    /// from the converged control state and its original sharing policy.
    /// Returns `false` if the server is not currently killed.
    pub fn restart_server(&self, id: ServerId) -> bool {
        let mut slot = self.servers[id.index()].lock();
        if slot.handle.is_some() {
            return false;
        }
        *slot = spawn_server(
            id,
            &self.net,
            self.cfg,
            Arc::clone(&slot.policy),
            self.metrics.as_ref().map(|m| Arc::clone(&m.local_search)),
            self.metrics
                .as_ref()
                .map(|m| Arc::clone(&m.servers[id.index()].queue_depth)),
            SlowSlot::new(&self.slow_board, id.index()),
        );
        self.live_board[id.index()].store(true, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            let si = &m.servers[id.index()];
            si.alive.set(1);
            si.queue_depth.set(0);
            m.restarts.inc();
        }
        self.fault_log.record(id, FaultKind::Restart, 1.0);
        true
    }

    /// Inject a straggler: server `id` stays alive and keeps answering,
    /// but every message to or from it takes `factor` (≥ 1) times the
    /// delay-space latency and its emulated backend cost is multiplied by
    /// the same factor — a slow link / overloaded host, not a death.
    /// Undo with [`RoadsCluster::restore_server`]. Returns `false` (and
    /// changes nothing) when the server is already slowed.
    pub fn slow_server(&self, id: ServerId, factor: f64) -> bool {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "straggler factor must be >= 1, got {factor}"
        );
        let slot = &self.slow_board[id.index()];
        if f64::from_bits(slot.load(Ordering::Relaxed)) != 1.0 {
            return false;
        }
        slot.store(factor.to_bits(), Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.slows.inc();
        }
        self.fault_log.record(id, FaultKind::Slow, factor);
        true
    }

    /// Restore a straggler to full speed. Returns `false` when the
    /// server was not slowed.
    pub fn restore_server(&self, id: ServerId) -> bool {
        let slot = &self.slow_board[id.index()];
        if f64::from_bits(slot.load(Ordering::Relaxed)) == 1.0 {
            return false;
        }
        slot.store(1.0f64.to_bits(), Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.restores.inc();
        }
        self.fault_log.record(id, FaultKind::Restore, 1.0);
        true
    }

    /// The current straggler factor of `id` (1.0 = healthy).
    pub fn slow_factor(&self, id: ServerId) -> f64 {
        f64::from_bits(self.slow_board[id.index()].load(Ordering::Relaxed))
    }

    /// The shared injected-fault log (kills, restarts, stragglers with
    /// onset timestamps), for the watchdog's incident correlation.
    pub fn fault_log(&self) -> Arc<FaultLog> {
        Arc::clone(&self.fault_log)
    }

    /// Whether `id` has a running thread per the kill/restart bookkeeping.
    /// (A thread that *panicked* still counts as alive here until a
    /// dispatch discovers its closed mailbox.)
    pub fn is_alive(&self, id: ServerId) -> bool {
        let slot = self.servers[id.index()].lock();
        slot.handle.is_some() && slot.alive.load(Ordering::Relaxed)
    }

    /// A point-in-time [`ClusterHealth`] snapshot: per-server liveness,
    /// mailbox queue depth, reply counts and dispatch p99s plus
    /// cluster-wide query/retry/deadline/failover totals. `None` on an
    /// uninstrumented cluster (start with
    /// [`RoadsCluster::start_instrumented`]).
    pub fn health(&self) -> Option<ClusterHealth> {
        let m = self.metrics.as_ref()?;
        let servers = (0..self.net.len())
            .map(|s| {
                let si = &m.servers[s];
                ServerHealth {
                    server: ServerId(s as u32),
                    alive: self.is_alive(ServerId(s as u32)),
                    queue_depth: si.queue_depth.get(),
                    replies: si.replies.get(),
                    dispatch_p99_ms: si.dispatch_ms.percentile(0.99),
                }
            })
            .collect();
        Some(ClusterHealth {
            servers,
            inflight_queries: m.inflight.get(),
            queries: m.queries.get(),
            retries: m.retries.get(),
            deadline_misses: m.deadline_miss.get(),
            failovers: m.failovers.get(),
        })
    }

    /// Execute one query from a client co-located with `start`, driving the
    /// redirect protocol and gathering records in parallel. The client is
    /// anonymous (requester 0) — owners treat it per their public tier.
    pub fn query(&self, query: &Query, start: ServerId) -> RuntimeOutcome {
        self.query_as(query, start, RequesterId(0))
    }

    /// [`Self::query`] with an authenticated requester identity, which each
    /// owner's policy classifies independently.
    ///
    /// Returns within [`RuntimeConfig::query_deadline_ms`] even when
    /// servers are dead, retrying and failing over per the fault model in
    /// the module docs; [`RuntimeOutcome::complete`] says whether anything
    /// may be missing.
    pub fn query_as(
        &self,
        query: &Query,
        start: ServerId,
        requester: RequesterId,
    ) -> RuntimeOutcome {
        // Explain assembly is driven by the tail sampler here: attached ⇒
        // every query is a retention candidate, absent ⇒ zero explain work.
        self.query_inner(query, start, requester, self.tail.is_some())
            .0
    }

    /// [`Self::query`] that also returns the query's full provenance
    /// record, regardless of whether a tail sampler is attached.
    pub fn query_explained(
        &self,
        query: &Query,
        start: ServerId,
    ) -> (RuntimeOutcome, QueryExplain) {
        self.query_as_explained(query, start, RequesterId(0))
    }

    /// [`Self::query_as`] that also returns the provenance record.
    pub fn query_as_explained(
        &self,
        query: &Query,
        start: ServerId,
        requester: RequesterId,
    ) -> (RuntimeOutcome, QueryExplain) {
        let (outcome, explain) = self.query_inner(query, start, requester, true);
        (outcome, explain.expect("explain was requested"))
    }

    fn query_inner(
        &self,
        query: &Query,
        start: ServerId,
        requester: RequesterId,
        want_explain: bool,
    ) -> (RuntimeOutcome, Option<QueryExplain>) {
        // Admission first: the deadline below budgets execution, not time
        // spent queued at the gate.
        let _slot = InflightSlot::enter(
            &self.gate,
            self.metrics.as_ref().map(|m| m.inflight.as_ref()),
        );
        let t0 = Instant::now();
        if let Some(cache) = &self.cache {
            if let Some(r) = cache.lookup(start, requester.0 as u64, SearchScope::full(), query) {
                return self.replay_cached(query, start, r, t0, want_explain);
            }
            if let Some(m) = &self.metrics {
                m.cache_misses.inc();
            }
        }
        let rec = self.recorder.as_deref();
        let (done_tx, done_rx) = unbounded::<Notice>();
        let driver = Driver {
            cluster: self,
            query,
            requester,
            start,
            t0,
            trace: rec.map(|r| r.next_trace_id()).unwrap_or(TraceId::NONE),
            rec,
            done_tx,
            next_attempt: 0,
            attempts: HashMap::new(),
            open: 0,
            ledger: VisitLedger::new(),
            resolved: HashSet::new(),
            failed: BTreeMap::new(),
            dead_helpers: HashSet::new(),
            failover_pos: HashMap::new(),
            records: Vec::new(),
            responders: HashSet::new(),
            entry_served: false,
            retries: 0,
            deadline_hit: false,
            root_span: SpanId::NONE,
            explain_hops: want_explain.then(Vec::new),
            attempt_hop: HashMap::new(),
        };
        let (outcome, explain) = driver.run(done_rx);
        if let Some(cache) = &self.cache {
            // Replaying an incomplete answer would hide a transient fault
            // until the TTL expired; only provably-complete results are
            // stored.
            if outcome.complete {
                cache.insert(
                    start,
                    requester.0 as u64,
                    SearchScope::full(),
                    query,
                    CachedResult {
                        matching_servers: Vec::new(),
                        matching_records: outcome.records.len(),
                        records: outcome.records.clone(),
                    },
                );
            }
        }
        (outcome, explain)
    }

    /// Serve a query from the result cache: the entry answers alone, no
    /// fan-out, no server threads involved. Counted as a completed query
    /// plus a `roads.cache.hits` tick; the optional provenance record is a
    /// single `cache-hit` hop.
    fn replay_cached(
        &self,
        query: &Query,
        start: ServerId,
        r: CachedResult,
        t0: Instant,
        want_explain: bool,
    ) -> (RuntimeOutcome, Option<QueryExplain>) {
        let response_ms = t0.elapsed().as_secs_f64() * 1000.0;
        if let Some(m) = &self.metrics {
            m.cache_hits.inc();
            m.queries.inc();
            m.response_ms.record(response_ms);
        }
        let records = r.records;
        let explain = want_explain.then(|| QueryExplain {
            query_id: query.id.0,
            trace_id: TraceId::NONE.0,
            entry: start.0,
            response_us: response_ms * 1_000.0,
            complete: true,
            deadline_hit: false,
            records: records.len() as u64,
            hops: vec![ExplainHop {
                server: start.0,
                decision: ExplainDecision::CacheHit,
                summary: None,
                false_positive: false,
                outcome: HopOutcome::Replied,
                at_us: 0.0,
                dur_us: response_ms * 1_000.0,
                caused_by: None,
                local_matches: records.len() as u64,
                split: LatencySplit {
                    queue_us: 0.0,
                    // The client is co-located with its entry: a replay
                    // crosses no link.
                    network_us: 0.0,
                    compute_us: response_ms * 1_000.0,
                    backoff_us: 0.0,
                },
            }],
        });
        (
            RuntimeOutcome {
                response_ms,
                records,
                servers_contacted: 1,
                complete: true,
                failed_servers: Vec::new(),
                retries: 0,
            },
            explain,
        )
    }

    fn scaled_delay(&self, a: ServerId, b: ServerId) -> Duration {
        let ms = self.delays.delay_ms(a.index(), b.index()) * self.cfg.delay_scale;
        // Straggler injection: the slower endpoint's factor stretches the
        // whole hop (matching the netsim fault model).
        let f = f64::from_bits(self.slow_board[a.index()].load(Ordering::Relaxed)).max(
            f64::from_bits(self.slow_board[b.index()].load(Ordering::Relaxed)),
        );
        Duration::from_micros((ms * 1000.0 * f) as u64)
    }

    /// Stop all server threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for slot in &self.servers {
            let handle = {
                let mut s = slot.lock();
                let _ = s.sender.send(ServerRequest::Shutdown);
                s.handle.take()
            };
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
        self.dispatcher.shutdown();
    }
}

impl Drop for RoadsCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn spawn_server(
    id: ServerId,
    net: &Arc<RoadsNetwork>,
    cfg: RuntimeConfig,
    policy: Arc<dyn SharingPolicy>,
    search_hist: Option<Arc<Histogram>>,
    queue: Option<Arc<Gauge>>,
    slow: SlowSlot,
) -> ServerSlot {
    let (tx, rx) = unbounded::<ServerRequest>();
    let alive = Arc::new(AtomicBool::new(true));
    let store = RecordStore::new(net.schema().clone(), net.records(id).to_vec());
    let handle = {
        let net = Arc::clone(net);
        let alive = Arc::clone(&alive);
        let policy = Arc::clone(&policy);
        thread::Builder::new()
            .name(format!("roads-server-{}", id.0))
            .spawn(move || {
                server_loop(
                    id,
                    store,
                    net,
                    cfg,
                    policy,
                    rx,
                    alive,
                    search_hist,
                    queue,
                    slow,
                )
            })
            .expect("spawn server thread")
    };
    ServerSlot {
        sender: tx,
        handle: Some(handle),
        alive,
        policy,
    }
}

/// One dispatched sub-query from the client's point of view.
struct Attempt {
    server: ServerId,
    mode: ContactMode,
    /// Retries already performed for this target before this attempt.
    tries: u32,
    span: SpanId,
    /// Dispatch time, µs since query start.
    at_us: u64,
    parent: SpanId,
    /// When this attempt is declared timed out (`None` = no per-dispatch
    /// timeout configured).
    expires: Option<Instant>,
    /// Still awaiting a reply.
    open: bool,
}

/// Per-query state machine driving dispatch, retry, and failover.
struct Driver<'a> {
    cluster: &'a RoadsCluster,
    query: &'a Query,
    requester: RequesterId,
    start: ServerId,
    t0: Instant,
    trace: TraceId,
    rec: Option<&'a Recorder>,
    done_tx: Sender<Notice>,
    next_attempt: u64,
    attempts: HashMap<u64, Attempt>,
    /// Attempts still awaiting a reply.
    open: usize,
    ledger: VisitLedger,
    /// Servers whose local data has been merged into `records` (guards
    /// against double-merging when a late reply races a retry's).
    resolved: HashSet<ServerId>,
    /// Servers given up on, with the widest mode that failed.
    failed: BTreeMap<ServerId, ContactMode>,
    /// Overlay stand-ins that died while helping. Kept apart from
    /// `failed` (which feeds completeness and `failed_servers`): a dead
    /// helper only disqualifies itself from further failover nominations.
    dead_helpers: HashSet<ServerId>,
    /// Next failover candidate index per dead server.
    failover_pos: HashMap<ServerId, usize>,
    records: Vec<Record>,
    /// Distinct servers whose replies landed.
    responders: HashSet<ServerId>,
    /// Whether any Entry-mode reply landed — i.e. the overlay evaluation
    /// (ancestor probes, replica shortcuts) ran somewhere. Without it a
    /// failed entry leaves the hierarchy beyond its own branch unexamined,
    /// so completeness cannot be claimed.
    entry_served: bool,
    retries: usize,
    deadline_hit: bool,
    root_span: SpanId,
    /// Explain assembly: one [`ExplainHop`] per dispatched attempt, in
    /// dispatch order. `None` disables the whole plane (the hot path
    /// then only pays a branch per dispatch).
    explain_hops: Option<Vec<ExplainHop>>,
    /// Attempt id → index into `explain_hops` (resolves replies,
    /// timeouts and deadline abandonment back to their hop).
    attempt_hop: HashMap<u64, usize>,
}

/// Map a summary kind label (as returned by
/// `AttributeSummary::kind_name`) to its explain-plane enum.
fn summary_kind(label: &str) -> Option<SummaryKind> {
    Some(match label {
        "histogram" => SummaryKind::Histogram,
        "multires" => SummaryKind::MultiRes,
        "set" => SummaryKind::ValueSet,
        "bloom" => SummaryKind::Bloom,
        _ => return None,
    })
}

impl Driver<'_> {
    fn run(mut self, done_rx: Receiver<Notice>) -> (RuntimeOutcome, Option<QueryExplain>) {
        let cfg = self.cluster.cfg;
        let deadline = (cfg.query_deadline_ms > 0)
            .then(|| self.t0 + Duration::from_millis(cfg.query_deadline_ms));
        // Replica-aware planning: the client batches the set-cover
        // contacts computed from the entry's replicated summaries instead
        // of asking the entry to expand greedily. The entry then serves
        // only as a local-search target — every other contact it would
        // have returned is already in the plan.
        let plan = cfg.enable_planner.then(|| {
            plan_query(
                &self.cluster.net,
                self.query,
                self.start,
                SearchScope::full(),
            )
        });
        let entry_mode = match plan {
            Some(_) => ContactMode::LocalOnly,
            None => ContactMode::Entry,
        };
        self.ledger.admit(self.start, entry_mode);
        let entry = self.dispatch(
            self.start,
            entry_mode,
            SpanId::NONE,
            Duration::ZERO,
            0,
            None,
            ExplainDecision::Entry,
        );
        self.root_span = self.attempts[&entry].span;
        self.emit(Event {
            at_us: self.attempts[&entry].at_us,
            dur_us: 0,
            node: self.start.0,
            trace: self.trace,
            span: self.root_span,
            parent: SpanId::NONE,
            kind: EventKind::QueryStart,
            detail: self.trace.0,
        });
        if let Some(plan) = &plan {
            if let Some(m) = &self.cluster.metrics {
                m.planned_queries.inc();
                m.pruned_probes.add(plan.pruned_probes as u64);
            }
            for pc in &plan.contacts {
                let mode = match pc.action {
                    PlanAction::Descend => ContactMode::Branch,
                    PlanAction::Probe => ContactMode::LocalOnly,
                };
                if self.ledger.admit(pc.server, mode) {
                    // Hop 0 is the entry: the plan was computed from its
                    // replicated summaries, so it caused every contact.
                    self.dispatch(
                        pc.server,
                        mode,
                        self.root_span,
                        Duration::ZERO,
                        0,
                        Some(0),
                        ExplainDecision::Planned,
                    );
                }
            }
        }

        while self.open > 0 {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                self.deadline_hit = true;
                break;
            }
            let next_expiry = self
                .attempts
                .values()
                .filter(|a| a.open)
                .filter_map(|a| a.expires)
                .min();
            let wake = match (next_expiry, deadline) {
                (Some(e), Some(d)) => Some(e.min(d)),
                (Some(e), None) => Some(e),
                (None, d) => d,
            };
            let wait_start = Instant::now();
            let msg = match wake {
                Some(w) => done_rx.recv_timeout(w.saturating_duration_since(wait_start)),
                None => done_rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            };
            match msg {
                Ok(Notice::Reply {
                    attempt,
                    server,
                    targets,
                    records,
                    queue_us,
                    compute_us,
                }) => {
                    if let Some(m) = &self.cluster.metrics {
                        m.channel_wait
                            .record(wait_start.elapsed().as_micros() as f64);
                    }
                    // RAII: the merge span covers folding this reply's
                    // records and dispatching its redirect targets.
                    let _merge_span =
                        self.cluster.metrics.as_ref().map(|m| {
                            roads_telemetry::SpanTimer::start(Arc::clone(&m.result_merge))
                        });
                    self.on_reply(attempt, server, targets, records, queue_us, compute_us);
                }
                Ok(Notice::Down { attempt }) => self.attempt_failed(attempt, true),
                Err(RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    let expired: Vec<u64> = self
                        .attempts
                        .iter()
                        .filter(|(_, a)| a.open && a.expires.is_some_and(|e| e <= now))
                        .map(|(&id, _)| id)
                        .collect();
                    for id in expired {
                        self.attempt_failed(id, false);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("driver holds its own done_tx")
                }
            }
        }

        if self.deadline_hit {
            // Out of budget: record every still-pending dispatch as timed
            // out and failed, but start no more work.
            let open: Vec<u64> = self
                .attempts
                .iter()
                .filter(|(_, a)| a.open)
                .map(|(&id, _)| id)
                .collect();
            for id in open {
                self.close_at_deadline(id);
            }
        }

        self.emit(Event {
            at_us: self.t0.elapsed().as_micros() as u64,
            dur_us: 0,
            node: self.start.0,
            trace: self.trace,
            span: self.root_span,
            parent: SpanId::NONE,
            kind: EventKind::QueryComplete,
            detail: self.records.len() as u64,
        });

        let complete = self.completeness();
        let response_ms = self.t0.elapsed().as_secs_f64() * 1000.0;
        if let Some(m) = &self.cluster.metrics {
            m.queries.inc();
            m.response_ms.record(response_ms);
            if !complete {
                m.incomplete.inc();
            }
            if self.deadline_hit {
                m.deadline_miss.inc();
            }
            let slo = cfg.slo_response_ms;
            if slo > 0 && response_ms > slo as f64 {
                m.slo_violation.inc();
            }
        }
        let explain = self.explain_hops.take().map(|hops| QueryExplain {
            query_id: self.query.id.0,
            trace_id: self.trace.0,
            entry: self.start.0,
            response_us: response_ms * 1_000.0,
            complete,
            deadline_hit: self.deadline_hit,
            records: self.records.len() as u64,
            hops,
        });
        if let (Some(tail), Some(explain)) = (&self.cluster.tail, &explain) {
            let failed = !self.failed.is_empty();
            // Collecting the flight-recorder trace means scanning the
            // whole ring buffer — only worth it for queries the sampler
            // will actually retain. `classify` is stable across the
            // `observe` call because classification happens before the
            // sample folds in.
            let events = if tail.classify(response_ms, failed, complete).is_some() {
                self.rec
                    .map(|r| trace_events(&r.events(), self.trace))
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            tail.observe(explain.clone(), failed, events);
        }
        (
            RuntimeOutcome {
                response_ms,
                records: self.records,
                servers_contacted: self.responders.len(),
                complete,
                failed_servers: self.failed.keys().copied().collect(),
                retries: self.retries,
            },
            explain,
        )
    }

    /// Send one sub-query; `extra_delay` is the retry backoff (zero for
    /// first attempts). `caused_by`/`decision` feed the explain plane:
    /// the hop index that triggered this dispatch and why. Returns the
    /// attempt id.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        target: ServerId,
        mode: ContactMode,
        parent: SpanId,
        extra_delay: Duration,
        tries: u32,
        caused_by: Option<usize>,
        decision: ExplainDecision,
    ) -> u64 {
        let cfg = self.cluster.cfg;
        let id = self.next_attempt;
        self.next_attempt += 1;
        let span = match self.rec {
            Some(r) => r.next_span_id(),
            None => SpanId::NONE,
        };
        let delay_out = self.cluster.scaled_delay(self.start, target);
        let at_us = self.t0.elapsed().as_micros() as u64;
        if let Some(hops) = &mut self.explain_hops {
            // Which summary structure vouched for this hop. Descent and
            // shortcut hops were admitted by the target's *branch*
            // summary; ancestor probes by its *local* summary (the probe
            // asks only about the ancestor's own records).
            let summary = match decision {
                ExplainDecision::SummaryDescent | ExplainDecision::OverlayShortcut => {
                    match self.cluster.net.branch_summary(target).decide(self.query) {
                        SummaryVerdict::Match { fuzziest } => fuzziest.and_then(summary_kind),
                        SummaryVerdict::Prune { decided_by } => decided_by.and_then(summary_kind),
                    }
                }
                ExplainDecision::AncestorProbe => {
                    match self.cluster.net.local_summary(target).decide(self.query) {
                        SummaryVerdict::Match { fuzziest } => fuzziest.and_then(summary_kind),
                        SummaryVerdict::Prune { decided_by } => decided_by.and_then(summary_kind),
                    }
                }
                // A planned descent was admitted by the target's branch
                // summary; a planned probe by its *local* summary (that is
                // the planner's pruning criterion).
                ExplainDecision::Planned => {
                    let verdict = match mode {
                        ContactMode::Branch => {
                            self.cluster.net.branch_summary(target).decide(self.query)
                        }
                        _ => self.cluster.net.local_summary(target).decide(self.query),
                    };
                    match verdict {
                        SummaryVerdict::Match { fuzziest } => fuzziest.and_then(summary_kind),
                        SummaryVerdict::Prune { decided_by } => decided_by.and_then(summary_kind),
                    }
                }
                _ => None,
            };
            self.attempt_hop.insert(id, hops.len());
            hops.push(ExplainHop {
                server: target.0,
                decision,
                summary,
                false_positive: false,
                // Placeholder until the reply/timeout resolves the hop;
                // deadline-cut hops keep it.
                outcome: HopOutcome::Abandoned,
                at_us: at_us as f64,
                dur_us: 0.0,
                caused_by,
                local_matches: 0,
                split: LatencySplit {
                    queue_us: 0.0,
                    // Round trip over the simulated link, known exactly
                    // at dispatch time (symmetric one-way latency).
                    network_us: 2.0 * delay_out.as_micros() as f64,
                    compute_us: 0.0,
                    backoff_us: extra_delay.as_micros() as f64,
                },
            });
        }
        let expires = (cfg.dispatch_timeout_ms > 0)
            .then(|| Instant::now() + extra_delay + Duration::from_millis(cfg.dispatch_timeout_ms));
        self.attempts.insert(
            id,
            Attempt {
                server: target,
                mode,
                tries,
                span,
                at_us,
                parent,
                expires,
                open: true,
            },
        );
        self.open += 1;
        let sender = self.cluster.servers[target.index()].lock().sender.clone();
        let reply = ReplyHandle {
            timer: self.cluster.dispatcher.handle().clone(),
            done: self.done_tx.clone(),
            attempt: id,
            server: target,
            delay_back: delay_out, // symmetric one-way latency
        };
        self.cluster.dispatcher.handle().schedule_after(
            extra_delay + delay_out,
            DispatchJob::Send {
                sender,
                request: ServerRequest::Query {
                    query: self.query.clone(),
                    mode,
                    requester: self.requester,
                    reply,
                    // Re-stamped at mailbox delivery (DispatchJob::run);
                    // this value is never read.
                    enqueued: Instant::now(),
                },
                done: self.done_tx.clone(),
                attempt: id,
                queue: self
                    .cluster
                    .metrics
                    .as_ref()
                    .map(|m| Arc::clone(&m.servers[target.index()].queue_depth)),
            },
        );
        id
    }

    fn on_reply(
        &mut self,
        attempt: u64,
        server: ServerId,
        targets: Vec<(ServerId, ContactMode)>,
        records: Vec<Record>,
        queue_us: f64,
        compute_us: f64,
    ) {
        let Some(a) = self.attempts.get_mut(&attempt) else {
            return;
        };
        let (span, at_us, mode) = (a.span, a.at_us, a.mode);
        let parent = a.parent;
        if a.open {
            a.open = false;
            self.open -= 1;
        }
        let replier_hop = self.attempt_hop.get(&attempt).copied();
        if let Some(hops) = &mut self.explain_hops {
            if let Some(hi) = replier_hop {
                // Late replies (racing a retry, or landing after a
                // timeout verdict) still resolve their hop: the record
                // should show what actually happened, and it keeps
                // `distinct_responders` consistent with the outcome's
                // `servers_contacted`.
                let h = &mut hops[hi];
                h.outcome = HopOutcome::Replied;
                h.dur_us = (self.t0.elapsed().as_micros() as u64).saturating_sub(at_us) as f64;
                h.local_matches = records.len() as u64;
                h.split.queue_us = queue_us;
                h.split.compute_us = compute_us;
                // A branch summary vouched for this subtree, yet neither
                // local records nor any further redirect came back: the
                // lossy summary matched spuriously.
                h.false_positive = matches!(mode, ContactMode::Branch)
                    && records.is_empty()
                    && targets.is_empty()
                    && h.summary.is_some();
            }
        }
        if let Some(audit) = &self.cluster.audit {
            // Fold this live outcome into the audit plane. The summary
            // verdict is recomputed here (explain hops may be off): a
            // branch dispatch only happens because a summary matched, so
            // an empty-handed branch reply is a live false positive.
            if matches!(mode, ContactMode::Branch) {
                let level = self.cluster.net.tree().depth(server);
                let spurious = records.is_empty()
                    && targets.is_empty()
                    && self
                        .cluster
                        .net
                        .branch_summary(server)
                        .may_match(self.query);
                audit.observe_live(level, spurious);
            }
        }
        if let Some(m) = &self.cluster.metrics {
            // Dispatch → reply wall time, attributed to the replier and
            // the contact mode it was serving.
            let latency_ms =
                (self.t0.elapsed().as_micros() as u64).saturating_sub(at_us) as f64 / 1_000.0;
            m.dispatch_hist(mode).record(latency_ms);
            let si = &m.servers[server.index()];
            si.dispatch_ms.record(latency_ms);
            si.replies.inc();
        }
        // A late reply (after timeout, racing a retry) still lands here and
        // is merged below, guarded by `resolved`.
        self.responders.insert(server);
        // Any reply proves the server serviceable again, helper or not.
        self.dead_helpers.remove(&server);
        if matches!(mode, ContactMode::Entry) {
            self.entry_served = true;
        }
        if self.rec.is_some() {
            let now_us = self.t0.elapsed().as_micros() as u64;
            self.emit(Event {
                at_us,
                dur_us: now_us.saturating_sub(at_us).max(1),
                node: server.0,
                trace: self.trace,
                span,
                parent,
                kind: EventKind::QueryHop,
                detail: records.len() as u64,
            });
        }
        let standin = matches!(mode, ContactMode::Failover { .. });
        if !standin && self.resolved.insert(server) {
            // A reply proves the server serviceable: withdraw any earlier
            // failure verdict from a timed-out attempt.
            self.failed.remove(&server);
            self.records.extend(records);
        }
        for (t, m) in targets {
            if self.ledger.admit(t, m) {
                let decision = match m {
                    // A Branch redirect from the target's tree parent is
                    // ordinary summary descent; from anyone else (the
                    // entry's replica shortcuts, a failover stand-in) it
                    // rode the replication overlay.
                    ContactMode::Branch => {
                        if self.cluster.net.tree().parent(t) == Some(server) {
                            ExplainDecision::SummaryDescent
                        } else {
                            ExplainDecision::OverlayShortcut
                        }
                    }
                    ContactMode::LocalOnly => ExplainDecision::AncestorProbe,
                    ContactMode::Entry => ExplainDecision::Entry,
                    ContactMode::Failover { .. } => ExplainDecision::Failover,
                };
                self.dispatch(t, m, span, Duration::ZERO, 0, replier_hop, decision);
            }
        }
    }

    /// An open attempt's dispatch timed out (`mailbox_closed = false`) or
    /// its target's mailbox was found closed (`true`): retry if budget
    /// remains, otherwise fail over. A closed mailbox means the thread
    /// already exited — it cannot recover without [`RoadsCluster::
    /// restart_server`], so the retry budget is skipped and failover
    /// starts immediately.
    fn attempt_failed(&mut self, attempt: u64, mailbox_closed: bool) {
        let cfg = self.cluster.cfg;
        let Some(a) = self.attempts.get_mut(&attempt) else {
            return;
        };
        if !a.open {
            return; // reply raced in first, or already expired
        }
        a.open = false;
        self.open -= 1;
        let (server, mode, tries, span, at_us, parent) =
            (a.server, a.mode, a.tries, a.span, a.at_us, a.parent);
        let now_us = self.t0.elapsed().as_micros() as u64;
        let failed_hop = self.attempt_hop.get(&attempt).copied();
        if let Some(hops) = &mut self.explain_hops {
            if let Some(hi) = failed_hop {
                let h = &mut hops[hi];
                h.outcome = if mailbox_closed {
                    HopOutcome::MailboxDown
                } else {
                    HopOutcome::TimedOut
                };
                h.dur_us = now_us.saturating_sub(at_us) as f64;
            }
        }
        if let Some(m) = &self.cluster.metrics {
            m.dispatch_timeout.inc();
        }
        self.emit(Event {
            at_us,
            dur_us: now_us.saturating_sub(at_us).max(1),
            node: server.0,
            trace: self.trace,
            span,
            parent,
            kind: EventKind::DispatchTimeout,
            detail: tries as u64,
        });
        if !mailbox_closed && tries < cfg.max_retries {
            self.retries += 1;
            if let Some(m) = &self.cluster.metrics {
                m.retries.inc();
            }
            self.emit(Event {
                at_us: now_us,
                dur_us: 0,
                node: server.0,
                trace: self.trace,
                span,
                parent,
                kind: EventKind::Retry,
                detail: (tries + 1) as u64,
            });
            // Retries bypass the visit ledger: same target, same mode.
            // The new attempt nests under the timed-out one — inheriting
            // the old attempt's *parent* would mint a second root span
            // when the entry attempt itself (parent NONE) is retried.
            self.dispatch(
                server,
                mode,
                span,
                backoff_delay(cfg.backoff_base_ms, tries),
                tries + 1,
                failed_hop,
                ExplainDecision::Retry,
            );
            return;
        }
        self.give_up(server, mode, span, failed_hop);
    }

    /// Retries exhausted for `server` in `mode`: record the failure and
    /// route around it through the replication overlay. `caused_by` is
    /// the failed attempt's hop index, inherited by any failover hops.
    fn give_up(
        &mut self,
        server: ServerId,
        mode: ContactMode,
        span: SpanId,
        caused_by: Option<usize>,
    ) {
        match mode {
            ContactMode::Failover { dead } => {
                // The stand-in died too: remember it so failover for a
                // *different* dead server cannot nominate it again, then
                // advance to the next candidate.
                self.dead_helpers.insert(server);
                self.try_failover(dead, span, caused_by);
            }
            ContactMode::LocalOnly => {
                // Only this server held the probed data; nothing replicates
                // *records*, so there is nowhere to fail over to.
                self.mark_failed(server, mode);
            }
            ContactMode::Branch => {
                self.mark_failed(server, mode);
                self.try_failover(server, span, caused_by);
            }
            ContactMode::Entry => {
                self.mark_failed(server, mode);
                // A dead entry needs both a replacement entry (to run the
                // overlay evaluation for the rest of the hierarchy) and a
                // stand-in for its own branch: the replacement's redirect
                // targets include the dead server itself, but the ledger
                // already holds it at Entry rank, so its children would
                // otherwise be unreachable.
                self.entry_failover(server, span, caused_by);
                self.try_failover(server, span, caused_by);
            }
        }
    }

    fn mark_failed(&mut self, server: ServerId, mode: ContactMode) {
        if self.resolved.contains(&server) {
            return; // its data already arrived via an earlier attempt
        }
        // Keep the widest failed mode: completeness must account for the
        // broadest responsibility this server was ever given.
        let e = self.failed.entry(server).or_insert(mode);
        if mode_rank(mode) > mode_rank(*e) {
            *e = mode;
        }
    }

    /// Dispatch the next viable overlay stand-in for `dead`'s branch.
    fn try_failover(&mut self, dead: ServerId, parent_span: SpanId, caused_by: Option<usize>) {
        if !self.cluster.cfg.enable_failover {
            return;
        }
        let net = &self.cluster.net;
        // A stand-in only forwards to the dead server's children; skip the
        // whole exercise when no unresolved child branch can match.
        let worth_it =
            net.tree().children(dead).iter().any(|&c| {
                net.branch_summary(c).may_match(self.query) && !self.resolved.contains(&c)
            });
        if !worth_it {
            return;
        }
        let candidates = net.replica_set(dead).failover_candidates();
        let mut pos = self.failover_pos.get(&dead).copied().unwrap_or(0);
        while pos < candidates.len() {
            let helper = candidates[pos];
            pos += 1;
            if self.failed.contains_key(&helper) || self.dead_helpers.contains(&helper) {
                continue; // known dead — don't burn a timeout on it
            }
            let mode = ContactMode::Failover { dead };
            if !self.ledger.admit(helper, mode) {
                continue;
            }
            self.failover_pos.insert(dead, pos);
            let id = self.dispatch(
                helper,
                mode,
                parent_span,
                Duration::ZERO,
                0,
                caused_by,
                ExplainDecision::Failover,
            );
            if let Some(m) = &self.cluster.metrics {
                m.failovers.inc();
            }
            let span = self.attempts[&id].span;
            self.emit(Event {
                at_us: self.t0.elapsed().as_micros() as u64,
                dur_us: 0,
                node: helper.0,
                trace: self.trace,
                span,
                parent: parent_span,
                kind: EventKind::Failover,
                detail: dead.0 as u64,
            });
            return;
        }
        self.failover_pos.insert(dead, pos);
        // Candidates exhausted: the subtree stays unavailable and
        // `complete` reports it.
    }

    /// Nominate a replacement entry server after the original died.
    fn entry_failover(&mut self, dead: ServerId, parent_span: SpanId, caused_by: Option<usize>) {
        if !self.cluster.cfg.enable_failover {
            return;
        }
        for helper in self.cluster.net.replica_set(dead).failover_candidates() {
            if self.failed.contains_key(&helper)
                || self.dead_helpers.contains(&helper)
                || !self.ledger.admit(helper, ContactMode::Entry)
            {
                continue;
            }
            let id = self.dispatch(
                helper,
                ContactMode::Entry,
                parent_span,
                Duration::ZERO,
                0,
                caused_by,
                ExplainDecision::Failover,
            );
            if let Some(m) = &self.cluster.metrics {
                m.failovers.inc();
            }
            let span = self.attempts[&id].span;
            self.emit(Event {
                at_us: self.t0.elapsed().as_micros() as u64,
                dur_us: 0,
                node: helper.0,
                trace: self.trace,
                span,
                parent: parent_span,
                kind: EventKind::Failover,
                detail: dead.0 as u64,
            });
            return;
        }
    }

    /// The deadline cut this attempt off: record it, fail its target,
    /// start nothing new.
    fn close_at_deadline(&mut self, attempt: u64) {
        let Some(a) = self.attempts.get_mut(&attempt) else {
            return;
        };
        if !a.open {
            return;
        }
        a.open = false;
        self.open -= 1;
        let (server, mode, tries, span, at_us, parent) =
            (a.server, a.mode, a.tries, a.span, a.at_us, a.parent);
        let now_us = self.t0.elapsed().as_micros() as u64;
        if let Some(hops) = &mut self.explain_hops {
            if let Some(&hi) = self.attempt_hop.get(&attempt) {
                // Keep the Abandoned placeholder but stamp how long the
                // hop had been in flight when the deadline cut it off.
                hops[hi].dur_us = now_us.saturating_sub(at_us) as f64;
            }
        }
        if let Some(m) = &self.cluster.metrics {
            m.dispatch_timeout.inc();
        }
        self.emit(Event {
            at_us,
            dur_us: now_us.saturating_sub(at_us).max(1),
            node: server.0,
            trace: self.trace,
            span,
            parent,
            kind: EventKind::DispatchTimeout,
            detail: tries as u64,
        });
        if !matches!(mode, ContactMode::Failover { .. }) {
            self.mark_failed(server, mode);
        }
    }

    /// Truthful completeness: sound because summaries never produce false
    /// negatives — `!may_match` proves absence, and every dispatched child
    /// of a failed server ends the query either resolved or failed (with
    /// its own entry in `failed` recursing this check).
    ///
    /// A failed *entry* additionally requires that some Entry-mode reply
    /// landed (`entry_served`): the entry role covers the overlay
    /// evaluation for the whole hierarchy — ancestor probes, replica
    /// shortcuts — not just the dead server's local data and children. If
    /// no replacement entry took over (failover disabled, or every
    /// candidate dead), nothing ever examined the rest of the hierarchy
    /// and completeness cannot be claimed.
    fn completeness(&self) -> bool {
        if self.deadline_hit {
            return false;
        }
        let net = &self.cluster.net;
        let children_covered = |s: ServerId| {
            net.tree().children(s).iter().all(|&c| {
                !net.branch_summary(c).may_match(self.query)
                    || self.resolved.contains(&c)
                    || self.failed.contains_key(&c)
            })
        };
        self.failed.iter().all(|(&s, &mode)| {
            let local_ok = !net.local_summary(s).may_match(self.query);
            match mode {
                ContactMode::LocalOnly => local_ok,
                ContactMode::Branch => local_ok && children_covered(s),
                ContactMode::Entry => self.entry_served && local_ok && children_covered(s),
                ContactMode::Failover { .. } => true, // stand-ins hold no queried data
            }
        })
    }

    fn emit(&self, ev: Event) {
        if let Some(r) = self.rec {
            r.record(ev);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn server_loop(
    id: ServerId,
    store: RecordStore,
    net: Arc<RoadsNetwork>,
    cfg: RuntimeConfig,
    policy: Arc<dyn SharingPolicy>,
    rx: Receiver<ServerRequest>,
    alive: Arc<AtomicBool>,
    search_hist: Option<Arc<Histogram>>,
    queue: Option<Arc<Gauge>>,
    slow: SlowSlot,
) {
    while let Ok(req) = rx.recv() {
        if !alive.load(Ordering::Relaxed) {
            break; // killed: close the mailbox without touching queued work
        }
        match req {
            ServerRequest::Shutdown => break,
            ServerRequest::Query {
                query,
                mode,
                requester,
                reply,
                enqueued,
            } => {
                // Picked up: it no longer sits in the mailbox. (Kill and
                // restart reset the gauge, covering requests dropped with
                // a dead mailbox.)
                if let Some(q) = &queue {
                    q.add(-1);
                }
                // Mailbox delivery → pickup is pure queue wait; everything
                // from here to the reply send is this server's compute
                // (summary evaluation + search + emulated backend cost).
                let queue_us = enqueued.elapsed().as_micros() as f64;
                let work_t0 = Instant::now();
                let (targets, do_local) = match mode {
                    ContactMode::LocalOnly => (Vec::new(), true),
                    ContactMode::Entry => {
                        let ev = net.evaluate(id, &query, true);
                        let mut t: Vec<(ServerId, ContactMode)> = ev
                            .child_targets
                            .iter()
                            .map(|&c| (c, ContactMode::Branch))
                            .collect();
                        t.extend(ev.replica_targets.iter().map(|&r| (r, ContactMode::Branch)));
                        t.extend(
                            ev.ancestor_targets
                                .iter()
                                .map(|&a| (a, ContactMode::LocalOnly)),
                        );
                        (t, ev.local_match)
                    }
                    ContactMode::Branch => {
                        let ev = net.evaluate(id, &query, false);
                        let t = ev
                            .child_targets
                            .iter()
                            .map(|&c| (c, ContactMode::Branch))
                            .collect();
                        (t, ev.local_match)
                    }
                    ContactMode::Failover { dead } => {
                        // Stand in for the crashed server using its branch
                        // summary replicated here (§III-C): forward to its
                        // matching children, no local search — this
                        // helper's own data is queried separately.
                        let t = net
                            .tree()
                            .children(dead)
                            .iter()
                            .filter(|c| net.branch_summary(**c).may_match(&query))
                            .map(|&c| (c, ContactMode::Branch))
                            .collect();
                        (t, false)
                    }
                };
                let records: Vec<Record> = if do_local {
                    let found = match &search_hist {
                        Some(h) => timed(h, || store.search(&query)),
                        None => store.search(&query),
                    };
                    // The owner's final say: policy filters/redacts what
                    // actually leaves this server.
                    apply_policy(policy.as_ref(), requester, found)
                } else {
                    Vec::new()
                };
                // Emulated backend + result-transfer cost, stretched by
                // the straggler factor when this server is slowed.
                let result_bytes: usize = records.iter().map(WireSize::wire_size).sum();
                let busy_us = cfg.base_query_cost_us
                    + cfg.per_record_retrieval_us * records.len() as u64
                    + cfg.transfer_us(result_bytes);
                let busy_us = (busy_us as f64 * slow.factor()) as u64;
                thread::sleep(Duration::from_micros(busy_us));
                if !alive.load(Ordering::Relaxed) {
                    break; // killed mid-query: the in-flight reply is lost
                }
                reply.send(
                    targets,
                    records,
                    queue_us,
                    work_t0.elapsed().as_micros() as f64,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_core::RoadsConfig;
    use roads_records::{OwnerId, QueryBuilder, QueryId, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;

    fn test_net(n: usize) -> RoadsNetwork {
        let schema = Schema::unit_numeric(2);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(100),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                (0..20)
                    .map(|i| {
                        Record::new_unchecked(
                            RecordId((s * 20 + i) as u64),
                            OwnerId(s as u32),
                            vec![
                                Value::Float(s as f64 / n as f64),
                                Value::Float(i as f64 / 20.0),
                            ],
                        )
                    })
                    .collect()
            })
            .collect();
        RoadsNetwork::build(schema, cfg, records)
    }

    fn cluster(n: usize) -> RoadsCluster {
        RoadsCluster::start(
            test_net(n),
            DelaySpace::paper(n, 21),
            RuntimeConfig::test_fast(),
        )
    }

    #[test]
    fn live_query_finds_all_matches() {
        let c = cluster(9);
        let q = QueryBuilder::new(c.network().schema(), QueryId(1))
            .range("x0", 0.3, 0.6) // servers 3..=5 (values 3/9, 4/9, 5/9)
            .range("x1", 0.0, 1.0)
            .build();
        let expected: usize = c.network().matching_servers(&q).len() * 20;
        for start in [0u32, 4, 8] {
            let out = c.query(&q, ServerId(start));
            assert_eq!(out.records.len(), expected, "start={start}");
        }
        c.shutdown();
    }

    #[test]
    fn response_time_positive_and_bounded() {
        let c = cluster(6);
        let q = QueryBuilder::new(c.network().schema(), QueryId(2))
            .range("x0", 0.0, 1.0)
            .build();
        let out = c.query(&q, ServerId(2));
        assert!(out.records.len() == 6 * 20);
        assert!(out.response_ms > 0.0);
        assert!(out.response_ms < 10_000.0, "runaway response time");
        assert_eq!(out.servers_contacted, 6);
        c.shutdown();
    }

    #[test]
    fn healthy_cluster_reports_complete() {
        let c = cluster(6);
        let q = QueryBuilder::new(c.network().schema(), QueryId(7))
            .range("x0", 0.0, 1.0)
            .build();
        let out = c.query(&q, ServerId(0));
        assert!(out.complete, "no faults ⇒ provably complete");
        assert!(out.failed_servers.is_empty());
        assert_eq!(out.retries, 0);
        c.shutdown();
    }

    #[test]
    fn concurrent_queries_supported() {
        let c = Arc::new(cluster(6));
        let q = QueryBuilder::new(c.network().schema(), QueryId(3))
            .range("x0", 0.0, 1.0)
            .build();
        let mut handles = Vec::new();
        for start in 0..4u32 {
            let c = Arc::clone(&c);
            let q = q.clone();
            handles.push(thread::spawn(move || {
                c.query(&q, ServerId(start)).records.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 120);
        }
    }

    #[test]
    fn inflight_gate_blocks_past_capacity() {
        let gate = Arc::new(InflightGate::new(2));
        assert_eq!(gate.acquire(), 1);
        assert_eq!(gate.acquire(), 2);
        let (tx, rx) = unbounded::<usize>();
        let waiter = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                let n = gate.acquire();
                tx.send(n).unwrap();
            })
        };
        // The third acquire must be parked, not admitted.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        gate.release();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 2);
        waiter.join().unwrap();
        gate.release();
        gate.release();
        assert_eq!(gate.acquire(), 1, "all slots returned");
    }

    #[test]
    fn unbounded_gate_never_blocks() {
        let gate = InflightGate::new(0);
        for i in 1..=64 {
            assert_eq!(gate.acquire(), i);
        }
    }

    #[test]
    fn gated_cluster_serves_many_concurrent_clients() {
        let n = 9;
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect();
        let net = RoadsNetwork::build(schema, cfg, records);
        let reg = Registry::new();
        let c = Arc::new(RoadsCluster::start_instrumented(
            net,
            DelaySpace::paper(n, 5),
            RuntimeConfig {
                max_inflight_queries: 2,
                ..RuntimeConfig::test_fast()
            },
            &reg,
        ));
        let q = QueryBuilder::new(c.network().schema(), QueryId(30))
            .range("x0", 0.0, 1.0)
            .build();
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let c = Arc::clone(&c);
                let q = q.clone();
                thread::spawn(move || c.query(&q, ServerId(i % n as u32)))
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert_eq!(out.records.len(), n);
            assert!(out.complete);
        }
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauges["runtime.inflight_queries"], 0,
            "every admitted query released its slot"
        );
    }

    #[test]
    fn policies_enforced_per_owner() {
        use roads_core::policy::TieredPolicy;
        // 4 servers; server 2's owner withholds everything from the
        // public but shares with partner 42.
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 2,
            summary: SummaryConfig::with_buckets(50),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..4)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / 4.0)],
                )]
            })
            .collect();
        let net = RoadsNetwork::build(schema.clone(), cfg, records);
        let mut policies: Vec<Arc<dyn roads_core::policy::SharingPolicy>> = (0..4)
            .map(|_| Arc::new(roads_core::policy::OpenPolicy) as Arc<_>)
            .collect();
        // Member-tier default + no allowlisted members ⇒ public sees nothing.
        policies[2] = Arc::new(TieredPolicy::new([roads_core::policy::RequesterId(42)], []));
        let c = RoadsCluster::start_with_policies(
            net,
            DelaySpace::paper(4, 3),
            RuntimeConfig::test_fast(),
            policies,
        );
        let q = QueryBuilder::new(c.network().schema(), QueryId(9))
            .range("x0", 0.0, 1.0)
            .build();
        let anon = c.query(&q, ServerId(0));
        assert_eq!(anon.records.len(), 3, "server 2 withholds from the public");
        let partner = c.query_as(&q, ServerId(0), roads_core::policy::RequesterId(42));
        assert_eq!(partner.records.len(), 4, "partner sees everything");
        c.shutdown();
    }

    #[test]
    fn instrumented_cluster_records_phase_spans() {
        let n = 9;
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(100),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect();
        let net = RoadsNetwork::build(schema, cfg, records);
        let reg = Registry::new();
        let c = RoadsCluster::start_instrumented(
            net,
            DelaySpace::paper(n, 5),
            RuntimeConfig::test_fast(),
            &reg,
        );
        let q = QueryBuilder::new(c.network().schema(), QueryId(11))
            .range("x0", 0.0, 1.0)
            .build();
        let out = c.query(&q, ServerId(0));
        assert_eq!(out.records.len(), n);
        c.shutdown();
        let snap = reg.snapshot();
        // Every contacted server searched its store once; the client waited
        // on and merged one reply per server.
        assert_eq!(snap.histograms["runtime.local_search_us"].count, n);
        assert_eq!(snap.histograms["runtime.channel_wait_us"].count, n);
        assert_eq!(snap.histograms["runtime.result_merge_us"].count, n);
        assert!(snap.histograms["runtime.channel_wait_us"].max > 0.0);
    }

    #[test]
    fn recorded_live_query_builds_wall_clock_span_tree() {
        use roads_telemetry::{span_tree_root, trace_events, TraceId};
        let mut c = cluster(9);
        let rec = Arc::new(Recorder::new(1024));
        c.set_recorder(Arc::clone(&rec));
        let q = QueryBuilder::new(c.network().schema(), QueryId(5))
            .range("x0", 0.0, 1.0)
            .range("x1", 0.0, 1.0)
            .build();
        let out = c.query(&q, ServerId(4));
        assert_eq!(out.records.len(), 9 * 20);
        let events = rec.events();
        let tev = trace_events(&events, TraceId(1));
        let root = span_tree_root(&tev, TraceId(1)).expect("valid span tree");
        let hops: Vec<_> = tev
            .iter()
            .filter(|e| e.kind == EventKind::QueryHop)
            .collect();
        assert_eq!(hops.len(), out.servers_contacted);
        let root_hop = hops.iter().find(|e| e.span == root).unwrap();
        assert_eq!(root_hop.node, 4, "rooted at the entry server");
        assert!(
            hops.iter().all(|e| e.dur_us >= 1),
            "hop spans carry wall-clock durations"
        );
        let total: u64 = hops.iter().map(|e| e.detail).sum();
        assert_eq!(total, (9 * 20) as u64, "hop details sum to records");
        assert!(tev
            .iter()
            .any(|e| e.kind == EventKind::QueryComplete && e.detail == (9 * 20) as u64));
        c.shutdown();
    }

    #[test]
    fn narrow_query_contacts_few_servers() {
        let c = cluster(9);
        let q = QueryBuilder::new(c.network().schema(), QueryId(4))
            .range("x0", 0.32, 0.34) // exactly server 3 (3/9 ≈ 0.333)
            .build();
        let out = c.query(&q, ServerId(3));
        assert_eq!(out.records.len(), 20);
        assert!(
            out.servers_contacted < 9,
            "summaries should prune most servers"
        );
        c.shutdown();
    }

    #[test]
    fn kill_and_restart_round_trip() {
        let c = cluster(6);
        let victim = ServerId(3);
        assert!(c.is_alive(victim));
        assert!(c.kill_server(victim));
        assert!(!c.is_alive(victim));
        assert!(!c.kill_server(victim), "double kill is a no-op");
        assert!(!c.restart_server(ServerId(0)), "running server: no-op");
        assert!(c.restart_server(victim));
        assert!(c.is_alive(victim));
        // The restarted server serves its reloaded records again.
        let q = QueryBuilder::new(c.network().schema(), QueryId(21))
            .range("x0", 0.0, 1.0)
            .build();
        let out = c.query(&q, ServerId(0));
        assert_eq!(out.records.len(), 6 * 20);
        assert!(out.complete);
        c.shutdown();
    }

    #[test]
    fn planner_cluster_matches_greedy_results() {
        let n = 9;
        let greedy = cluster(n);
        let reg = Registry::new();
        let planned = RoadsCluster::start_instrumented(
            test_net(n),
            DelaySpace::paper(n, 21),
            RuntimeConfig {
                enable_planner: true,
                ..RuntimeConfig::test_fast()
            },
            &reg,
        );
        let ranges = [(0.0, 1.0), (0.3, 0.6), (0.87, 0.9)];
        let (mut greedy_contacts, mut planned_contacts) = (0usize, 0usize);
        for (i, (lo, hi)) in ranges.iter().enumerate() {
            let q = QueryBuilder::new(greedy.network().schema(), QueryId(30 + i as u64))
                .range("x0", *lo, *hi)
                .build();
            for start in [0u32, 4, 8] {
                let a = greedy.query(&q, ServerId(start));
                let b = planned.query(&q, ServerId(start));
                let mut ra: Vec<u64> = a.records.iter().map(|r| r.id.0).collect();
                let mut rb: Vec<u64> = b.records.iter().map(|r| r.id.0).collect();
                ra.sort_unstable();
                rb.sort_unstable();
                assert_eq!(
                    ra, rb,
                    "recall must not change (x0∈[{lo},{hi}] start={start})"
                );
                assert!(b.complete, "planned query stays provably complete");
                greedy_contacts += a.servers_contacted;
                planned_contacts += b.servers_contacted;
            }
        }
        assert!(
            planned_contacts <= greedy_contacts,
            "planner must never contact more servers ({planned_contacts} vs {greedy_contacts})"
        );
        assert_eq!(
            reg.counter("roads.planner.planned_queries").get(),
            (ranges.len() * 3) as u64
        );
        greedy.shutdown();
        planned.shutdown();
    }

    #[test]
    fn cache_replays_repeats_and_invalidates_on_round_advance() {
        let reg = Registry::new();
        let c = RoadsCluster::start_instrumented(
            test_net(9),
            DelaySpace::paper(9, 21),
            RuntimeConfig {
                cache_ttl_rounds: 1,
                ..RuntimeConfig::test_fast()
            },
            &reg,
        );
        let q = QueryBuilder::new(c.network().schema(), QueryId(40))
            .range("x0", 0.0, 1.0)
            .build();
        let first = c.query(&q, ServerId(4));
        assert!(first.complete);
        assert_eq!(first.records.len(), 9 * 20);

        let (second, explain) = c.query_explained(&q, ServerId(4));
        assert_eq!(
            second.records.len(),
            first.records.len(),
            "replay is verbatim"
        );
        assert_eq!(second.servers_contacted, 1, "served by the entry alone");
        assert!(second.complete);
        assert_eq!(explain.hops.len(), 1);
        assert_eq!(explain.hops[0].decision, ExplainDecision::CacheHit);
        assert_eq!(explain.hops[0].local_matches, (9 * 20) as u64);

        // Different requester ⇒ different key (policy-filtered results
        // may differ), so no replay.
        let other = c.query_as(&q, ServerId(4), RequesterId(7));
        assert!(other.servers_contacted > 1);

        // An update round ages the ttl=1 entries out.
        let purged = c.advance_cache_round();
        assert!(purged >= 1, "round advance must purge the cached answers");
        let third = c.query(&q, ServerId(4));
        assert!(third.servers_contacted > 1, "expired ⇒ re-executed");

        let cache = c.result_cache().expect("cache enabled");
        assert_eq!(cache.hits(), 1);
        assert!(cache.hit_rate() > 0.0);
        assert_eq!(reg.counter("roads.cache.hits").get(), 1);
        assert_eq!(reg.counter("roads.cache.misses").get(), 3);
        assert_eq!(reg.counter("roads.cache.expired").get(), purged);
        assert_eq!(
            reg.counter("roads.cache.invalidated").get(),
            0,
            "TTL aging must not count as delta invalidation"
        );
        c.shutdown();
    }

    #[test]
    fn observed_delta_round_feeds_metrics_and_invalidates_stale_entries() {
        use roads_records::{OwnerId, RecordId, Value};

        // Apply the delta to a network copy *before* the cluster starts —
        // the simulation plane owns network mutation; the cluster observes.
        let mut net = test_net(9);
        let mut delta = roads_core::RecordDelta::new();
        delta.insert(
            ServerId(8),
            roads_records::Record::new_unchecked(
                RecordId(5_000),
                OwnerId(8),
                vec![Value::Float(0.42), Value::Float(0.42)],
            ),
        );
        let outcome = net.apply(&delta);

        let reg = Registry::new();
        let c = RoadsCluster::start_instrumented(
            net,
            DelaySpace::paper(9, 21),
            RuntimeConfig {
                cache_ttl_rounds: 10,
                ..RuntimeConfig::test_fast()
            },
            &reg,
        );
        // Cache a query the delta touches and one it provably cannot.
        let hit_q = QueryBuilder::new(c.network().schema(), QueryId(50))
            .range("x0", 0.40, 0.44)
            .build();
        let miss_q = QueryBuilder::new(c.network().schema(), QueryId(51))
            .range("x0", 0.60, 0.61)
            .build();
        let _ = c.query(&hit_q, ServerId(2));
        let _ = c.query(&miss_q, ServerId(2));
        let cache = c.result_cache().expect("cache enabled");
        assert_eq!(cache.len(), 2);

        let purged = c.observe_delta_round(&outcome);
        assert_eq!(purged, 1, "only the delta-matching entry is purged");
        assert_eq!(reg.counter("roads.cache.invalidated").get(), 1);
        assert_eq!(reg.counter("roads.cache.expired").get(), 0);
        assert_eq!(reg.counter("roads.delta.changes_applied").get(), 1);
        assert_eq!(reg.counter("roads.delta.changes_rejected").get(), 0);
        assert_eq!(reg.counter("roads.delta.dirty_servers").get(), 1);
        assert_eq!(
            reg.counter("roads.delta.dirty_branches").get(),
            outcome.dirty_branches.len() as u64
        );
        // The surviving entry still replays from cache.
        let replay = c.query(&miss_q, ServerId(2));
        assert_eq!(replay.servers_contacted, 1, "unaffected entry stays hot");
        c.shutdown();
    }
}
