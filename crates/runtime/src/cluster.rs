//! The live ROADS cluster: one OS thread per server, channels as links.
//!
//! The converged control state (hierarchy, summaries, replica sets) comes
//! from a [`RoadsNetwork`]; what runs *live* here is the part the paper
//! could not simulate — concurrent query processing against per-server
//! record stores, with real parallelism across servers and delay-space
//! latencies applied per message.

use crate::config::RuntimeConfig;
use crate::store::RecordStore;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use roads_core::policy::{apply_policy, OpenPolicy, RequesterId, SharingPolicy};
use roads_core::{RoadsNetwork, ServerId};
use roads_netsim::DelaySpace;
use roads_records::{Query, Record, WireSize};
use roads_telemetry::{
    span::timed, Event, EventKind, Histogram, Recorder, Registry, SpanId, TraceId,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Pre-resolved phase histograms for an instrumented cluster. All three
/// record wall-clock microseconds, aggregated across every server thread
/// and every query:
/// `runtime.local_search_us` (per-server record-store search),
/// `runtime.channel_wait_us` (client blocked on reply channels), and
/// `runtime.result_merge_us` (client folding replies and dispatching
/// redirects).
#[derive(Debug, Clone)]
struct PhaseTimers {
    local_search: Arc<Histogram>,
    channel_wait: Arc<Histogram>,
    result_merge: Arc<Histogram>,
}

impl PhaseTimers {
    fn new(reg: &Registry) -> Self {
        PhaseTimers {
            local_search: reg.histogram("runtime.local_search_us"),
            channel_wait: reg.histogram("runtime.channel_wait_us"),
            result_merge: reg.histogram("runtime.result_merge_us"),
        }
    }
}

/// How a contacted server treats the query (mirrors the simulator's
/// redirect protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactMode {
    /// Entry server: children + overlay shortcuts + ancestor probes.
    Entry,
    /// Branch server: local data + children.
    Branch,
    /// Ancestor probe: local data only.
    LocalOnly,
}

enum ServerRequest {
    Query {
        query: Query,
        mode: ContactMode,
        requester: RequesterId,
        reply: Sender<ServerReply>,
    },
    Shutdown,
}

struct ServerReply {
    server: ServerId,
    targets: Vec<(ServerId, ContactMode)>,
    records: Vec<Record>,
}

/// Result of one live query.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOutcome {
    /// Total response time: query sent → all matching records received.
    pub response_ms: f64,
    /// Records received.
    pub records: Vec<Record>,
    /// Servers contacted.
    pub servers_contacted: usize,
}

/// A running ROADS federation of server threads.
pub struct RoadsCluster {
    net: Arc<RoadsNetwork>,
    delays: Arc<DelaySpace>,
    cfg: RuntimeConfig,
    senders: Vec<Sender<ServerRequest>>,
    handles: Vec<JoinHandle<()>>,
    phases: Option<PhaseTimers>,
    recorder: Option<Arc<Recorder>>,
}

impl RoadsCluster {
    /// Spawn one server thread per federation member, every owner using
    /// the [`OpenPolicy`] (share everything).
    pub fn start(net: RoadsNetwork, delays: DelaySpace, cfg: RuntimeConfig) -> Self {
        let n = net.len();
        let policies: Vec<Arc<dyn SharingPolicy>> = (0..n)
            .map(|_| Arc::new(OpenPolicy) as Arc<dyn SharingPolicy>)
            .collect();
        Self::start_with_policies(net, delays, cfg, policies)
    }

    /// [`RoadsCluster::start`] with phase timing into `reg`: per-server
    /// local store search, client channel wait, and result merge all land
    /// in `runtime.*_us` histograms. The uninstrumented constructors skip
    /// every timer (no telemetry cost when unused).
    pub fn start_instrumented(
        net: RoadsNetwork,
        delays: DelaySpace,
        cfg: RuntimeConfig,
        reg: &Registry,
    ) -> Self {
        let n = net.len();
        let policies: Vec<Arc<dyn SharingPolicy>> = (0..n)
            .map(|_| Arc::new(OpenPolicy) as Arc<dyn SharingPolicy>)
            .collect();
        Self::start_inner(net, delays, cfg, policies, Some(PhaseTimers::new(reg)))
    }

    /// Spawn one server thread per federation member, each enforcing its
    /// owner's [`SharingPolicy`] before returning records (§II voluntary
    /// sharing: the owner retains final control over what is returned).
    pub fn start_with_policies(
        net: RoadsNetwork,
        delays: DelaySpace,
        cfg: RuntimeConfig,
        policies: Vec<Arc<dyn SharingPolicy>>,
    ) -> Self {
        Self::start_inner(net, delays, cfg, policies, None)
    }

    fn start_inner(
        net: RoadsNetwork,
        delays: DelaySpace,
        cfg: RuntimeConfig,
        policies: Vec<Arc<dyn SharingPolicy>>,
        phases: Option<PhaseTimers>,
    ) -> Self {
        assert_eq!(net.len(), delays.len(), "delay space must cover servers");
        assert_eq!(net.len(), policies.len(), "one policy per server");
        let net = Arc::new(net);
        let delays = Arc::new(delays);
        let mut senders = Vec::with_capacity(net.len());
        let mut handles = Vec::with_capacity(net.len());
        for (s, policy) in policies.into_iter().enumerate() {
            let (tx, rx) = unbounded::<ServerRequest>();
            senders.push(tx);
            let id = ServerId(s as u32);
            let store = RecordStore::new(net.schema().clone(), net.records(id).to_vec());
            let net = Arc::clone(&net);
            let search_hist = phases.as_ref().map(|p| Arc::clone(&p.local_search));
            let handle = thread::Builder::new()
                .name(format!("roads-server-{s}"))
                .spawn(move || server_loop(id, store, net, cfg, policy, rx, search_hist))
                .expect("spawn server thread");
            handles.push(handle);
        }
        RoadsCluster {
            net,
            delays,
            cfg,
            senders,
            handles,
            phases,
            recorder: None,
        }
    }

    /// Attach a flight recorder: every subsequent [`Self::query_as`]
    /// records its dispatch tree as causal `QueryHop` spans (wall-clock
    /// microseconds from query start) under a fresh trace. Without a
    /// recorder, queries do zero event-recording work.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        self.recorder = Some(rec);
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// The converged control state.
    pub fn network(&self) -> &RoadsNetwork {
        &self.net
    }

    /// Execute one query from a client co-located with `start`, driving the
    /// redirect protocol and gathering records in parallel. The client is
    /// anonymous (requester 0) — owners treat it per their public tier.
    pub fn query(&self, query: &Query, start: ServerId) -> RuntimeOutcome {
        self.query_as(query, start, RequesterId(0))
    }

    /// [`Self::query`] with an authenticated requester identity, which each
    /// owner's policy classifies independently.
    pub fn query_as(
        &self,
        query: &Query,
        start: ServerId,
        requester: RequesterId,
    ) -> RuntimeOutcome {
        let t0 = Instant::now();
        let (done_tx, done_rx) = unbounded::<ServerReply>();
        let visited = Arc::new(Mutex::new(std::collections::HashSet::<ServerId>::new()));
        let mut outstanding = 0usize;
        let mut records = Vec::new();
        let mut contacted = 0usize;
        let rec = self.recorder.as_deref();
        let trace = rec.map(|r| r.next_trace_id()).unwrap_or(TraceId::NONE);
        // Per-server (span, dispatch-time µs, parent span): filled at
        // dispatch, turned into a QueryHop event when the reply lands.
        let spans = Mutex::new(HashMap::<ServerId, (SpanId, u64, SpanId)>::new());

        let dispatch =
            |target: ServerId, mode: ContactMode, parent: SpanId, outstanding: &mut usize| {
                if !visited.lock().insert(target) {
                    return;
                }
                if let Some(r) = rec {
                    let span = r.next_span_id();
                    spans
                        .lock()
                        .insert(target, (span, t0.elapsed().as_micros() as u64, parent));
                }
                *outstanding += 1;
                let delay_out = self.scaled_delay(start, target);
                let sender = self.senders[target.index()].clone();
                let done = done_tx.clone();
                let q = query.clone();
                let delay_back = delay_out; // symmetric one-way latency
                thread::spawn(move || {
                    thread::sleep(delay_out);
                    let (reply_tx, reply_rx) = unbounded();
                    if sender
                        .send(ServerRequest::Query {
                            query: q,
                            mode,
                            requester,
                            reply: reply_tx.clone(),
                        })
                        .is_err()
                    {
                        // Channel closed (cluster shutting down): synthesize an
                        // empty reply below via the dropped sender.
                        drop(reply_tx);
                    }
                    let reply = reply_rx.recv().unwrap_or(ServerReply {
                        // Server thread gone (crashed or shut down): report an
                        // empty reply so the client's outstanding count drains
                        // instead of hanging forever.
                        server: target,
                        targets: Vec::new(),
                        records: Vec::new(),
                    });
                    thread::sleep(delay_back);
                    let _ = done.send(reply);
                });
            };

        dispatch(start, ContactMode::Entry, SpanId::NONE, &mut outstanding);
        if let Some(r) = rec {
            if let Some(&(span, at_us, _)) = spans.lock().get(&start) {
                r.record(Event {
                    at_us,
                    dur_us: 0,
                    node: start.0,
                    trace,
                    span,
                    parent: SpanId::NONE,
                    kind: EventKind::QueryStart,
                    detail: trace.0,
                });
            }
        }
        while outstanding > 0 {
            let reply = match &self.phases {
                Some(p) => timed(&p.channel_wait, || done_rx.recv()),
                None => done_rx.recv(),
            }
            .expect("helper threads hold the sender");
            debug_assert!(visited.lock().contains(&reply.server));
            outstanding -= 1;
            contacted += 1;
            // RAII: the merge span covers folding this reply's records and
            // dispatching its redirect targets, ending with the iteration.
            let _merge_span = self
                .phases
                .as_ref()
                .map(|p| roads_telemetry::SpanTimer::start(Arc::clone(&p.result_merge)));
            let reply_span = spans.lock().get(&reply.server).copied();
            if let (Some(r), Some((span, at_us, parent))) = (rec, reply_span) {
                let now_us = t0.elapsed().as_micros() as u64;
                r.record(Event {
                    at_us,
                    dur_us: now_us.saturating_sub(at_us).max(1),
                    node: reply.server.0,
                    trace,
                    span,
                    parent,
                    kind: EventKind::QueryHop,
                    detail: reply.records.len() as u64,
                });
            }
            let parent_span = reply_span.map(|(s, _, _)| s).unwrap_or(SpanId::NONE);
            records.extend(reply.records);
            for (target, mode) in reply.targets {
                dispatch(target, mode, parent_span, &mut outstanding);
            }
        }
        if let Some(r) = rec {
            if let Some(&(span, _, _)) = spans.lock().get(&start) {
                r.record(Event {
                    at_us: t0.elapsed().as_micros() as u64,
                    dur_us: 0,
                    node: start.0,
                    trace,
                    span,
                    parent: SpanId::NONE,
                    kind: EventKind::QueryComplete,
                    detail: records.len() as u64,
                });
            }
        }

        RuntimeOutcome {
            response_ms: t0.elapsed().as_secs_f64() * 1000.0,
            records,
            servers_contacted: contacted,
        }
    }

    fn scaled_delay(&self, a: ServerId, b: ServerId) -> Duration {
        let ms = self.delays.delay_ms(a.index(), b.index()) * self.cfg.delay_scale;
        Duration::from_micros((ms * 1000.0) as u64)
    }

    /// Stop all server threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ServerRequest::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RoadsCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn server_loop(
    id: ServerId,
    store: RecordStore,
    net: Arc<RoadsNetwork>,
    cfg: RuntimeConfig,
    policy: Arc<dyn SharingPolicy>,
    rx: Receiver<ServerRequest>,
    search_hist: Option<Arc<Histogram>>,
) {
    while let Ok(req) = rx.recv() {
        match req {
            ServerRequest::Shutdown => break,
            ServerRequest::Query {
                query,
                mode,
                requester,
                reply,
            } => {
                let (targets, do_local) = match mode {
                    ContactMode::LocalOnly => (Vec::new(), true),
                    ContactMode::Entry => {
                        let ev = net.evaluate(id, &query, true);
                        let mut t: Vec<(ServerId, ContactMode)> = ev
                            .child_targets
                            .iter()
                            .map(|&c| (c, ContactMode::Branch))
                            .collect();
                        t.extend(ev.replica_targets.iter().map(|&r| (r, ContactMode::Branch)));
                        t.extend(
                            ev.ancestor_targets
                                .iter()
                                .map(|&a| (a, ContactMode::LocalOnly)),
                        );
                        (t, ev.local_match)
                    }
                    ContactMode::Branch => {
                        let ev = net.evaluate(id, &query, false);
                        let t = ev
                            .child_targets
                            .iter()
                            .map(|&c| (c, ContactMode::Branch))
                            .collect();
                        (t, ev.local_match)
                    }
                };
                let records: Vec<Record> = if do_local {
                    let found = match &search_hist {
                        Some(h) => timed(h, || store.search(&query)),
                        None => store.search(&query),
                    };
                    // The owner's final say: policy filters/redacts what
                    // actually leaves this server.
                    apply_policy(policy.as_ref(), requester, found)
                } else {
                    Vec::new()
                };
                // Emulated backend + result-transfer cost.
                let result_bytes: usize = records.iter().map(WireSize::wire_size).sum();
                let busy_us = cfg.base_query_cost_us
                    + cfg.per_record_retrieval_us * records.len() as u64
                    + cfg.transfer_us(result_bytes);
                thread::sleep(Duration::from_micros(busy_us));
                let _ = reply.send(ServerReply {
                    server: id,
                    targets,
                    records,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_core::RoadsConfig;
    use roads_records::{OwnerId, QueryBuilder, QueryId, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;

    fn cluster(n: usize) -> RoadsCluster {
        let schema = Schema::unit_numeric(2);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(100),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                (0..20)
                    .map(|i| {
                        Record::new_unchecked(
                            RecordId((s * 20 + i) as u64),
                            OwnerId(s as u32),
                            vec![
                                Value::Float(s as f64 / n as f64),
                                Value::Float(i as f64 / 20.0),
                            ],
                        )
                    })
                    .collect()
            })
            .collect();
        let net = RoadsNetwork::build(schema, cfg, records);
        RoadsCluster::start(net, DelaySpace::paper(n, 21), RuntimeConfig::test_fast())
    }

    #[test]
    fn live_query_finds_all_matches() {
        let c = cluster(9);
        let q = QueryBuilder::new(c.network().schema(), QueryId(1))
            .range("x0", 0.3, 0.6) // servers 3..=5 (values 3/9, 4/9, 5/9)
            .range("x1", 0.0, 1.0)
            .build();
        let expected: usize = c.network().matching_servers(&q).len() * 20;
        for start in [0u32, 4, 8] {
            let out = c.query(&q, ServerId(start));
            assert_eq!(out.records.len(), expected, "start={start}");
        }
        c.shutdown();
    }

    #[test]
    fn response_time_positive_and_bounded() {
        let c = cluster(6);
        let q = QueryBuilder::new(c.network().schema(), QueryId(2))
            .range("x0", 0.0, 1.0)
            .build();
        let out = c.query(&q, ServerId(2));
        assert!(out.records.len() == 6 * 20);
        assert!(out.response_ms > 0.0);
        assert!(out.response_ms < 10_000.0, "runaway response time");
        assert_eq!(out.servers_contacted, 6);
        c.shutdown();
    }

    #[test]
    fn concurrent_queries_supported() {
        let c = Arc::new(cluster(6));
        let q = QueryBuilder::new(c.network().schema(), QueryId(3))
            .range("x0", 0.0, 1.0)
            .build();
        let mut handles = Vec::new();
        for start in 0..4u32 {
            let c = Arc::clone(&c);
            let q = q.clone();
            handles.push(thread::spawn(move || {
                c.query(&q, ServerId(start)).records.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 120);
        }
    }

    #[test]
    fn policies_enforced_per_owner() {
        use roads_core::policy::TieredPolicy;
        // 4 servers; server 2's owner withholds everything from the
        // public but shares with partner 42.
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 2,
            summary: SummaryConfig::with_buckets(50),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..4)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / 4.0)],
                )]
            })
            .collect();
        let net = RoadsNetwork::build(schema.clone(), cfg, records);
        let mut policies: Vec<Arc<dyn roads_core::policy::SharingPolicy>> = (0..4)
            .map(|_| Arc::new(roads_core::policy::OpenPolicy) as Arc<_>)
            .collect();
        // Member-tier default + no allowlisted members ⇒ public sees nothing.
        policies[2] = Arc::new(TieredPolicy::new([roads_core::policy::RequesterId(42)], []));
        let c = RoadsCluster::start_with_policies(
            net,
            DelaySpace::paper(4, 3),
            RuntimeConfig::test_fast(),
            policies,
        );
        let q = QueryBuilder::new(c.network().schema(), QueryId(9))
            .range("x0", 0.0, 1.0)
            .build();
        let anon = c.query(&q, ServerId(0));
        assert_eq!(anon.records.len(), 3, "server 2 withholds from the public");
        let partner = c.query_as(&q, ServerId(0), roads_core::policy::RequesterId(42));
        assert_eq!(partner.records.len(), 4, "partner sees everything");
        c.shutdown();
    }

    #[test]
    fn instrumented_cluster_records_phase_spans() {
        let n = 9;
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(100),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect();
        let net = RoadsNetwork::build(schema, cfg, records);
        let reg = Registry::new();
        let c = RoadsCluster::start_instrumented(
            net,
            DelaySpace::paper(n, 5),
            RuntimeConfig::test_fast(),
            &reg,
        );
        let q = QueryBuilder::new(c.network().schema(), QueryId(11))
            .range("x0", 0.0, 1.0)
            .build();
        let out = c.query(&q, ServerId(0));
        assert_eq!(out.records.len(), n);
        c.shutdown();
        let snap = reg.snapshot();
        // Every contacted server searched its store once; the client waited
        // on and merged one reply per server.
        assert_eq!(snap.histograms["runtime.local_search_us"].count, n);
        assert_eq!(snap.histograms["runtime.channel_wait_us"].count, n);
        assert_eq!(snap.histograms["runtime.result_merge_us"].count, n);
        assert!(snap.histograms["runtime.channel_wait_us"].max > 0.0);
    }

    #[test]
    fn recorded_live_query_builds_wall_clock_span_tree() {
        use roads_telemetry::{span_tree_root, trace_events, TraceId};
        let mut c = cluster(9);
        let rec = Arc::new(Recorder::new(1024));
        c.set_recorder(Arc::clone(&rec));
        let q = QueryBuilder::new(c.network().schema(), QueryId(5))
            .range("x0", 0.0, 1.0)
            .range("x1", 0.0, 1.0)
            .build();
        let out = c.query(&q, ServerId(4));
        assert_eq!(out.records.len(), 9 * 20);
        let events = rec.events();
        let tev = trace_events(&events, TraceId(1));
        let root = span_tree_root(&tev, TraceId(1)).expect("valid span tree");
        let hops: Vec<_> = tev
            .iter()
            .filter(|e| e.kind == EventKind::QueryHop)
            .collect();
        assert_eq!(hops.len(), out.servers_contacted);
        let root_hop = hops.iter().find(|e| e.span == root).unwrap();
        assert_eq!(root_hop.node, 4, "rooted at the entry server");
        assert!(
            hops.iter().all(|e| e.dur_us >= 1),
            "hop spans carry wall-clock durations"
        );
        let total: u64 = hops.iter().map(|e| e.detail).sum();
        assert_eq!(total, (9 * 20) as u64, "hop details sum to records");
        assert!(tev
            .iter()
            .any(|e| e.kind == EventKind::QueryComplete && e.detail == (9 * 20) as u64));
        c.shutdown();
    }

    #[test]
    fn narrow_query_contacts_few_servers() {
        let c = cluster(9);
        let q = QueryBuilder::new(c.network().schema(), QueryId(4))
            .range("x0", 0.32, 0.34) // exactly server 3 (3/9 ≈ 0.333)
            .build();
        let out = c.query(&q, ServerId(3));
        assert_eq!(out.records.len(), 20);
        assert!(
            out.servers_contacted < 9,
            "summaries should prune most servers"
        );
        c.shutdown();
    }
}
