//! The background auditor: budgeted ground-truth auditing of the live
//! replication overlay.
//!
//! Runs the `roads-core` audit plane ([`ReplicaLedger`],
//! [`audit_probe`](roads_core::audit_probe)) on a wall-clock schedule,
//! mirroring the tail sampler's lifecycle (`roads_telemetry::Sampler`): a
//! condvar-paced thread, `tick_now` for deterministic tests, one final
//! tick on shutdown, and `stop()` returning the final [`AuditReport`].
//!
//! Each tick is budgeted — `probes_per_tick` queries rotate through the
//! probe set, so the ground-truth sweep amortizes over many ticks instead
//! of stalling the cluster — and every outcome lands in pre-resolved
//! OpenMetrics instruments ([`AuditMetrics`]): per-level FP/FN/probe
//! counters, plus overlay-wide divergence/staleness/drift/saturation
//! gauges (fractions exported as parts-per-million, since gauges are
//! integral). An instrumented [`crate::RoadsCluster`] given the same
//! [`AuditMetrics`] additionally folds *live* query outcomes — branch
//! dispatches whose lossy summary matched spuriously — into the
//! `audit.live_*` families, tying the sampled ground truth to real
//! traffic.

use roads_core::audit::{audit_probe, LevelAudit, ReplicaLedger};
use roads_core::{RoadsNetwork, ServerId};
use roads_records::Query;
use roads_summary::AttributeSummary;
use roads_telemetry::{labeled, Counter, Gauge, Json, Registry};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Liveness oracle for the auditor: `true` while a server is up. An
/// instrumented cluster provides one via [`crate::RoadsCluster::liveness`];
/// tests can hand in any closure.
pub type Liveness = Arc<dyn Fn(ServerId) -> bool + Send + Sync>;

/// Background auditor schedule and budget.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Wall-clock pause between audit ticks.
    pub interval: Duration,
    /// Ground-truth probe queries evaluated per tick (rotating through
    /// the probe set — the sampling budget).
    pub probes_per_tick: usize,
    /// Run a ledger refresh (replication wave) every this many ticks;
    /// 0 disables refreshes (the ledger only ages).
    pub refresh_every: u64,
    /// Where to write the periodic `AUDIT.json` artifact (none = skip).
    pub report_path: Option<PathBuf>,
    /// Write the artifact every this many ticks (0 = only at `stop`).
    pub report_every: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            interval: Duration::from_millis(250),
            probes_per_tick: 4,
            refresh_every: 4,
            report_path: None,
            report_every: 0,
        }
    }
}

/// Per-tree-level audit instruments, labeled `{level="N"}`.
#[derive(Debug, Clone)]
pub struct LevelInstruments {
    /// `audit.probes`: ground-truth probes evaluated at this level.
    pub probes: Arc<Counter>,
    /// `audit.false_positives`: stale copy said match, no live record.
    pub false_positives: Arc<Counter>,
    /// `audit.false_negatives`: stale copy pruned a live match.
    pub false_negatives: Arc<Counter>,
    /// `audit.live_probes`: branch replies folded in from real queries.
    pub live_probes: Arc<Counter>,
    /// `audit.live_false_positives`: real branch dispatches whose lossy
    /// summary matched spuriously (no records, no redirects).
    pub live_false_positives: Arc<Counter>,
}

/// Every instrument the audit plane records into, pre-resolved so all
/// families appear in a scrape from the first moment.
#[derive(Debug, Clone)]
pub struct AuditMetrics {
    /// `audit.epoch`: the ledger's update-round epoch.
    pub epoch: Arc<Gauge>,
    /// `audit.divergence_ppm`: diverged overlay fraction × 10⁶.
    pub divergence_ppm: Arc<Gauge>,
    /// `audit.staleness_p99_rounds`: p99 replica staleness age in rounds.
    pub staleness_p99: Arc<Gauge>,
    /// `audit.drift_ppm`: worst per-attribute summary drift × 10⁶.
    pub drift_ppm: Arc<Gauge>,
    /// `audit.bloom_saturation_ppm`: worst Bloom fill ratio × 10⁶ across
    /// branch summaries (0 when no attribute uses a Bloom filter).
    pub bloom_saturation_ppm: Arc<Gauge>,
    /// `audit.ticks`: audit ticks completed.
    pub ticks: Arc<Counter>,
    /// `audit.reports`: `AUDIT.json` artifacts written.
    pub reports: Arc<Counter>,
    /// Per-level instruments, indexed by tree depth of the audited branch.
    pub levels: Vec<LevelInstruments>,
}

impl AuditMetrics {
    /// Resolve (and thereby declare) every audit instrument for a
    /// hierarchy of `levels` tree levels in `reg`.
    pub fn new(reg: &Registry, levels: usize) -> Self {
        let levels = (0..levels.max(1))
            .map(|l| {
                let id = l.to_string();
                let lbl = [("level", id.as_str())];
                LevelInstruments {
                    probes: reg.counter(&labeled("audit.probes", &lbl)),
                    false_positives: reg.counter(&labeled("audit.false_positives", &lbl)),
                    false_negatives: reg.counter(&labeled("audit.false_negatives", &lbl)),
                    live_probes: reg.counter(&labeled("audit.live_probes", &lbl)),
                    live_false_positives: reg.counter(&labeled("audit.live_false_positives", &lbl)),
                }
            })
            .collect();
        AuditMetrics {
            epoch: reg.gauge("audit.epoch"),
            divergence_ppm: reg.gauge("audit.divergence_ppm"),
            staleness_p99: reg.gauge("audit.staleness_p99_rounds"),
            drift_ppm: reg.gauge("audit.drift_ppm"),
            bloom_saturation_ppm: reg.gauge("audit.bloom_saturation_ppm"),
            ticks: reg.counter("audit.ticks"),
            reports: reg.counter("audit.reports"),
            levels,
        }
    }

    /// The instruments for tree level `l` (clamped to the deepest known
    /// level, so a grown hierarchy never panics the hot path).
    pub fn level(&self, l: usize) -> &LevelInstruments {
        &self.levels[l.min(self.levels.len() - 1)]
    }

    /// Fold one live branch reply observed by the cluster.
    pub(crate) fn observe_live(&self, level: usize, false_positive: bool) {
        let li = self.level(level);
        li.live_probes.inc();
        if false_positive {
            li.live_false_positives.inc();
        }
    }
}

/// One level's row in an [`AuditReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditLevelRow {
    /// Tree depth of the audited branches.
    pub level: usize,
    /// Overlay entries audited at the last tick.
    pub entries: usize,
    /// Cumulative ground-truth probes.
    pub probes: u64,
    /// Cumulative false positives.
    pub false_positives: u64,
    /// Cumulative false negatives.
    pub false_negatives: u64,
    /// Diverged entries at the last tick.
    pub diverged: usize,
    /// Worst staleness age at the last tick (rounds).
    pub staleness_max: u64,
    /// Live branch replies folded in from real queries.
    pub live_probes: u64,
    /// Live spurious summary matches.
    pub live_false_positives: u64,
}

impl AuditLevelRow {
    /// Ground-truth false-positive rate.
    pub fn fp_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.probes as f64
        }
    }

    /// Ground-truth false-negative rate.
    pub fn fn_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.false_negatives as f64 / self.probes as f64
        }
    }
}

/// The periodic audit artifact (`AUDIT.json`), and what `stop()` returns.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Ledger epoch at report time.
    pub epoch: u64,
    /// Audit ticks completed.
    pub ticks: u64,
    /// Diverged overlay fraction at report time, in `[0, 1]`.
    pub divergence: f64,
    /// p99 replica staleness age, rounds.
    pub staleness_p99: u64,
    /// Worst per-attribute drift across diverged entries.
    pub max_drift: f64,
    /// Worst Bloom fill ratio across branch summaries.
    pub bloom_saturation: f64,
    /// Per-level rows, ascending by level.
    pub levels: Vec<AuditLevelRow>,
}

impl AuditReport {
    /// Total ground-truth probes across levels.
    pub fn probes(&self) -> u64 {
        self.levels.iter().map(|l| l.probes).sum()
    }

    /// Total ground-truth false positives across levels.
    pub fn false_positives(&self) -> u64 {
        self.levels.iter().map(|l| l.false_positives).sum()
    }

    /// Total ground-truth false negatives across levels.
    pub fn false_negatives(&self) -> u64 {
        self.levels.iter().map(|l| l.false_negatives).sum()
    }

    /// Serialize as the `AUDIT.json` document (marker key `audit`).
    pub fn to_json(&self) -> Json {
        let levels = self
            .levels
            .iter()
            .map(|l| {
                Json::obj(vec![
                    ("level", Json::num(l.level as f64)),
                    ("entries", Json::num(l.entries as f64)),
                    ("probes", Json::num(l.probes as f64)),
                    ("false_positives", Json::num(l.false_positives as f64)),
                    ("false_negatives", Json::num(l.false_negatives as f64)),
                    ("diverged", Json::num(l.diverged as f64)),
                    ("staleness_max", Json::num(l.staleness_max as f64)),
                    ("live_probes", Json::num(l.live_probes as f64)),
                    (
                        "live_false_positives",
                        Json::num(l.live_false_positives as f64),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("audit", Json::num(1.0)),
            ("epoch", Json::num(self.epoch as f64)),
            ("ticks", Json::num(self.ticks as f64)),
            ("divergence", Json::num(self.divergence)),
            ("staleness_p99", Json::num(self.staleness_p99 as f64)),
            ("max_drift", Json::num(self.max_drift)),
            ("bloom_saturation", Json::num(self.bloom_saturation)),
            ("levels", Json::arr(levels)),
        ])
    }

    /// Strict parse of a document produced by [`to_json`]: every field
    /// must be present and well-typed, errors name the offending entry.
    ///
    /// [`to_json`]: AuditReport::to_json
    pub fn from_json(doc: &Json) -> Result<AuditReport, String> {
        if doc.get("audit").and_then(Json::as_f64) != Some(1.0) {
            return Err("not an audit document (missing `audit: 1` marker)".into());
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("audit document missing `{key}`"))
        };
        let levels_json = doc
            .get("levels")
            .and_then(Json::as_arr)
            .ok_or("audit document missing `levels` array")?;
        let mut levels = Vec::with_capacity(levels_json.len());
        for (i, row) in levels_json.iter().enumerate() {
            let field = |key: &str| {
                row.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("levels[{i}] missing `{key}`"))
            };
            levels.push(AuditLevelRow {
                level: field("level")? as usize,
                entries: field("entries")? as usize,
                probes: field("probes")? as u64,
                false_positives: field("false_positives")? as u64,
                false_negatives: field("false_negatives")? as u64,
                diverged: field("diverged")? as usize,
                staleness_max: field("staleness_max")? as u64,
                live_probes: field("live_probes")? as u64,
                live_false_positives: field("live_false_positives")? as u64,
            });
        }
        Ok(AuditReport {
            epoch: num("epoch")? as u64,
            ticks: num("ticks")? as u64,
            divergence: num("divergence")?,
            staleness_p99: num("staleness_p99")? as u64,
            max_drift: num("max_drift")?,
            bloom_saturation: num("bloom_saturation")?,
            levels,
        })
    }

    /// Write the document to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

/// True when a parsed JSON document carries the `AUDIT.json` marker.
pub fn is_audit_doc(doc: &Json) -> bool {
    doc.get("audit").is_some()
}

/// Worst Bloom fill ratio across all branch summaries (0 when no
/// attribute is summarized with a Bloom filter).
fn worst_bloom_load(net: &RoadsNetwork) -> f64 {
    let mut worst: f64 = 0.0;
    for s in net.tree().servers() {
        let summary = net.branch_summary(s);
        for i in 0..summary.arity() {
            if let AttributeSummary::Bloom(f) = summary.attr(i) {
                worst = worst.max(f.saturation().load);
            }
        }
    }
    worst
}

struct AuditorShared {
    net: Arc<RoadsNetwork>,
    metrics: Arc<AuditMetrics>,
    cfg: AuditConfig,
    probes: Vec<Query>,
    liveness: Liveness,
    state: StdMutex<AuditorState>,
    cv: Condvar,
}

struct AuditorState {
    stop: bool,
    ledger: ReplicaLedger,
    ticks: u64,
    /// Cumulative per-level tallies; `entries`/`diverged`/`staleness_max`
    /// hold the *last* tick's observation, counters accumulate.
    levels: Vec<LevelAudit>,
    /// Last-tick overlay scalars, carried into the report.
    divergence: f64,
    staleness_p99: u64,
    max_drift: f64,
    bloom_saturation: f64,
}

impl AuditorShared {
    fn tick(&self) {
        let mut st = self.state.lock().expect("auditor state");
        st.ticks += 1;
        self.metrics.ticks.inc();
        let live: Vec<bool> = (0..self.net.len())
            .map(|i| (self.liveness)(ServerId(i as u32)))
            .collect();
        if self.cfg.refresh_every > 0 && st.ticks.is_multiple_of(self.cfg.refresh_every) {
            st.ledger.refresh(&self.net, &live);
        }
        // Budgeted ground truth: rotate a window through the probe set so
        // the sweep amortizes across ticks.
        let batch: Vec<Query> = if self.probes.is_empty() {
            Vec::new()
        } else {
            let k = self.cfg.probes_per_tick.min(self.probes.len()).max(1);
            let start = ((st.ticks - 1) as usize * k) % self.probes.len();
            (0..k)
                .map(|i| self.probes[(start + i) % self.probes.len()].clone())
                .collect()
        };
        let observed = audit_probe(&self.net, &st.ledger, &live, &batch);
        for (i, lvl) in observed.iter().enumerate() {
            if st.levels.len() <= i {
                st.levels.push(LevelAudit {
                    level: i,
                    ..LevelAudit::default()
                });
            }
            let acc = &mut st.levels[i];
            acc.entries = lvl.entries;
            acc.diverged = lvl.diverged;
            acc.staleness_max = lvl.staleness_max;
            acc.probes += lvl.probes;
            acc.false_positives += lvl.false_positives;
            acc.false_negatives += lvl.false_negatives;
            let li = self.metrics.level(i);
            li.probes.add(lvl.probes);
            li.false_positives.add(lvl.false_positives);
            li.false_negatives.add(lvl.false_negatives);
        }
        let d = st.ledger.divergence(&self.net, &live);
        st.divergence = d.score();
        st.staleness_p99 = st.ledger.staleness_p99();
        st.max_drift = d.max_drift;
        st.bloom_saturation = worst_bloom_load(&self.net);
        self.metrics.epoch.set(st.ledger.epoch() as i64);
        self.metrics
            .divergence_ppm
            .set((st.divergence * 1e6) as i64);
        self.metrics.staleness_p99.set(st.staleness_p99 as i64);
        self.metrics.drift_ppm.set((st.max_drift * 1e6) as i64);
        self.metrics
            .bloom_saturation_ppm
            .set((st.bloom_saturation * 1e6) as i64);
        let report_due = self.cfg.report_every > 0
            && st.ticks.is_multiple_of(self.cfg.report_every)
            && self.cfg.report_path.is_some();
        let report = report_due.then(|| self.report_locked(&st));
        drop(st);
        if let (Some(r), Some(path)) = (report, &self.cfg.report_path) {
            if r.write(path).is_ok() {
                self.metrics.reports.inc();
            }
        }
    }

    fn report_locked(&self, st: &AuditorState) -> AuditReport {
        let levels = st
            .levels
            .iter()
            .map(|l| {
                let li = self.metrics.level(l.level);
                AuditLevelRow {
                    level: l.level,
                    entries: l.entries,
                    probes: l.probes,
                    false_positives: l.false_positives,
                    false_negatives: l.false_negatives,
                    diverged: l.diverged,
                    staleness_max: l.staleness_max,
                    live_probes: li.live_probes.get(),
                    live_false_positives: li.live_false_positives.get(),
                }
            })
            .collect();
        AuditReport {
            epoch: st.ledger.epoch(),
            ticks: st.ticks,
            divergence: st.divergence,
            staleness_p99: st.staleness_p99,
            max_drift: st.max_drift,
            bloom_saturation: st.bloom_saturation,
            levels,
        }
    }
}

/// The background audit thread. `stop` joins it and returns the final
/// report; dropping without stopping also signals and joins. Either
/// shutdown path runs one final tick first, so late kills/restarts are
/// always audited.
pub struct Auditor {
    shared: Arc<AuditorShared>,
    handle: Option<JoinHandle<()>>,
}

impl Auditor {
    /// Snapshot the overlay into a fresh [`ReplicaLedger`] and start
    /// auditing `net` every [`AuditConfig::interval`], evaluating ground
    /// truth with `probes` and liveness from `liveness`. The first tick
    /// runs immediately.
    pub fn start(
        net: Arc<RoadsNetwork>,
        metrics: Arc<AuditMetrics>,
        cfg: AuditConfig,
        probes: Vec<Query>,
        liveness: Liveness,
    ) -> Self {
        assert!(!cfg.interval.is_zero(), "audit interval must be positive");
        let ledger = ReplicaLedger::new(&net);
        let interval = cfg.interval;
        let shared = Arc::new(AuditorShared {
            net,
            metrics,
            cfg,
            probes,
            liveness,
            state: StdMutex::new(AuditorState {
                stop: false,
                ledger,
                ticks: 0,
                levels: Vec::new(),
                divergence: 0.0,
                staleness_p99: 0,
                max_drift: 0.0,
                bloom_saturation: 0.0,
            }),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("roads-auditor".into())
            .spawn(move || {
                let sh = thread_shared;
                // First scheduled tick fires one full interval after start:
                // an immediate tick would offset the refresh phase under
                // manually driven schedules (tick_now with a long interval).
                let mut next = std::time::Instant::now() + interval;
                loop {
                    let mut st = sh.state.lock().expect("auditor state");
                    while !st.stop && std::time::Instant::now() < next {
                        let wait = next.saturating_duration_since(std::time::Instant::now());
                        let (guard, _) = sh.cv.wait_timeout(st, wait).expect("auditor state");
                        st = guard;
                    }
                    let stopping = st.stop;
                    drop(st);
                    // One final tick on shutdown: kills/restarts since the
                    // last scheduled tick must reach the final report.
                    sh.tick();
                    if stopping {
                        return;
                    }
                    next += interval;
                }
            })
            .expect("spawn auditor thread");
        Auditor {
            shared,
            handle: Some(handle),
        }
    }

    /// Run one audit tick right now, outside the schedule (deterministic
    /// tests).
    pub fn tick_now(&self) {
        self.shared.tick();
    }

    /// The report accumulated so far.
    pub fn report(&self) -> AuditReport {
        let st = self.shared.state.lock().expect("auditor state");
        self.shared.report_locked(&st)
    }

    /// Stop the background thread and return the final report (written to
    /// [`AuditConfig::report_path`] as well, when configured).
    pub fn stop(mut self) -> AuditReport {
        self.shutdown();
        let report = {
            let st = self.shared.state.lock().expect("auditor state");
            self.shared.report_locked(&st)
        };
        if let Some(path) = &self.shared.cfg.report_path {
            if report.write(path).is_ok() {
                self.shared.metrics.reports.inc();
            }
        }
        report
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.state.lock().expect("auditor state").stop = true;
            self.shared.cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Auditor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_core::RoadsConfig;
    use roads_records::{OwnerId, QueryBuilder, QueryId, Record, RecordId, Schema, Value};
    use roads_summary::SummaryConfig;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn network(n: usize) -> RoadsNetwork {
        let schema = Schema::unit_numeric(1);
        let cfg = RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(128),
            ..RoadsConfig::paper_default()
        };
        let records: Vec<Vec<Record>> = (0..n)
            .map(|s| {
                vec![Record::new_unchecked(
                    RecordId(s as u64),
                    OwnerId(s as u32),
                    vec![Value::Float(s as f64 / n as f64)],
                )]
            })
            .collect();
        RoadsNetwork::build(schema, cfg, records)
    }

    fn probes(net: &RoadsNetwork) -> Vec<Query> {
        let n = net.len();
        net.tree()
            .servers()
            .iter()
            .map(|&s| {
                let v = s.index() as f64 / n as f64;
                QueryBuilder::new(net.schema(), QueryId(s.0 as u64))
                    .range("x0", v - 0.002, v + 0.002)
                    .build()
            })
            .collect()
    }

    /// A liveness oracle backed by a shared flag vector.
    fn board(n: usize) -> (Arc<Vec<AtomicBool>>, Liveness) {
        let flags: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(true)).collect());
        let view = Arc::clone(&flags);
        let live: Liveness = Arc::new(move |s: ServerId| view[s.index()].load(Ordering::Relaxed));
        (flags, live)
    }

    fn quiet_auditor(net: &Arc<RoadsNetwork>, live: Liveness, reg: &Registry) -> Auditor {
        let metrics = Arc::new(AuditMetrics::new(reg, net.tree().levels()));
        let cfg = AuditConfig {
            interval: Duration::from_secs(3600), // ticks driven manually
            probes_per_tick: net.len(),
            refresh_every: 0,
            ..AuditConfig::default()
        };
        Auditor::start(Arc::clone(net), metrics, cfg, probes(net), live)
    }

    #[test]
    fn clean_overlay_audits_clean() {
        let net = Arc::new(network(13));
        let reg = Registry::new();
        let (_, live) = board(13);
        let auditor = quiet_auditor(&net, live, &reg);
        auditor.tick_now();
        let report = auditor.stop();
        assert!(report.ticks >= 1);
        assert!(report.probes() > 0);
        assert_eq!(report.false_positives(), 0);
        assert_eq!(report.false_negatives(), 0);
        assert_eq!(report.divergence, 0.0);
        assert_eq!(reg.gauge_values()["audit.divergence_ppm"], 0);
    }

    #[test]
    fn kill_surfaces_in_metrics_and_report() {
        let net = Arc::new(network(13));
        let reg = Registry::new();
        let (flags, live) = board(13);
        let victim = *net.tree().leaves().iter().max().unwrap();
        let auditor = quiet_auditor(&net, live, &reg);
        flags[victim.index()].store(false, Ordering::Relaxed);
        auditor.tick_now();
        let report = auditor.report();
        assert!(report.false_positives() > 0, "{report:?}");
        assert!(report.divergence > 0.0);
        let gauges = reg.gauge_values();
        assert!(gauges["audit.divergence_ppm"] > 0);
        let fp: u64 = reg
            .counter_values()
            .iter()
            .filter(|(k, _)| k.starts_with("audit.false_positives"))
            .map(|(_, &v)| v)
            .sum();
        assert!(fp > 0);
        drop(auditor);
    }

    #[test]
    fn report_round_trips_and_rejects_corruption() {
        let net = Arc::new(network(13));
        let reg = Registry::new();
        let (flags, live) = board(13);
        let victim = *net.tree().leaves().iter().max().unwrap();
        let auditor = quiet_auditor(&net, live, &reg);
        flags[victim.index()].store(false, Ordering::Relaxed);
        auditor.tick_now();
        let report = auditor.stop();
        let doc = report.to_json();
        assert!(is_audit_doc(&doc));
        let back = AuditReport::from_json(&doc).unwrap();
        assert_eq!(back, report);
        // Wrong marker.
        let not_audit = Json::obj(vec![("benches", Json::num(1.0))]);
        assert!(!is_audit_doc(&not_audit));
        assert!(AuditReport::from_json(&not_audit).is_err());
        // Missing scalar.
        let mut missing = report.to_json();
        if let Json::Obj(pairs) = &mut missing {
            pairs.retain(|(k, _)| k != "divergence");
        }
        let err = AuditReport::from_json(&missing).unwrap_err();
        assert!(err.contains("divergence"), "{err}");
        // Corrupt level row.
        let mut bad_row = report.to_json();
        if let Json::Obj(pairs) = &mut bad_row {
            for (k, v) in pairs.iter_mut() {
                if k == "levels" {
                    if let Json::Arr(rows) = v {
                        if let Some(Json::Obj(row)) = rows.first_mut() {
                            row.retain(|(k, _)| k != "probes");
                        }
                    }
                }
            }
        }
        let err = AuditReport::from_json(&bad_row).unwrap_err();
        assert!(err.contains("levels[0]") && err.contains("probes"), "{err}");
    }

    #[test]
    fn refresh_schedule_reconverges_divergence() {
        let net = Arc::new(network(13));
        let reg = Registry::new();
        let (flags, live) = board(13);
        let metrics = Arc::new(AuditMetrics::new(&reg, net.tree().levels()));
        let cfg = AuditConfig {
            interval: Duration::from_secs(3600),
            probes_per_tick: 13,
            refresh_every: 1, // refresh on every tick
            ..AuditConfig::default()
        };
        let auditor = Auditor::start(Arc::clone(&net), metrics, cfg, probes(&net), live);
        let victim = *net.tree().leaves().iter().max().unwrap();
        flags[victim.index()].store(false, Ordering::Relaxed);
        auditor.tick_now();
        let during = auditor.report();
        assert!(during.divergence > 0.0, "{during:?}");
        // Restart; the next refresh re-pushes every copy.
        flags[victim.index()].store(true, Ordering::Relaxed);
        auditor.tick_now();
        let after = auditor.report();
        assert_eq!(after.divergence, 0.0, "{after:?}");
        assert!(after.epoch >= 2);
        let report = auditor.stop();
        assert_eq!(report.divergence, 0.0);
    }

    #[test]
    fn report_file_written_on_stop() {
        let net = Arc::new(network(9));
        let reg = Registry::new();
        let (_, live) = board(9);
        let metrics = Arc::new(AuditMetrics::new(&reg, net.tree().levels()));
        let dir = std::env::temp_dir().join("roads_audit_test");
        let path = dir.join("AUDIT.json");
        let _ = std::fs::remove_file(&path);
        let cfg = AuditConfig {
            interval: Duration::from_secs(3600),
            probes_per_tick: 4,
            refresh_every: 2,
            report_path: Some(path.clone()),
            report_every: 0,
        };
        let auditor = Auditor::start(Arc::clone(&net), metrics, cfg, probes(&net), live);
        auditor.tick_now();
        let report = auditor.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = AuditReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, report);
        assert!(reg.counter_values()["audit.reports"] >= 1);
        let _ = std::fs::remove_file(&path);
    }
}
