//! Live cluster health: instrument bundle and snapshot API.
//!
//! An instrumented [`crate::RoadsCluster`] pre-resolves every instrument
//! here at startup ([`RuntimeMetrics::new`]), so all metric families are
//! present in a scrape from the first moment (counters at 0) and the hot
//! query path never touches the registry's name map — only the `Arc`'d
//! instruments themselves.
//!
//! Naming follows the exposition label convention
//! ([`roads_telemetry::labeled`]): per-server series are
//! `runtime.server.<what>{server="N"}`, per-mode dispatch latency is
//! `runtime.dispatch_latency_ms{mode="entry"|...}`, and fault events are
//! one counter family `runtime.fault_events{kind="kill"|"restart"}` so a
//! kill/restart/failover storm shows up as labeled series on one chart.
//!
//! [`ClusterHealth`] is the pull API: a consistent-enough point-in-time
//! table of per-server liveness, mailbox queue depth, reply count and
//! dispatch p99 that `roads-inspect health` renders from a scrape and
//! tests assert on directly.

use crate::cluster::ContactMode;
use parking_lot::Mutex;
use roads_core::ServerId;
use roads_telemetry::{labeled, Counter, Gauge, Histogram, Registry};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// The exposition label for a contact mode.
pub(crate) fn mode_label(mode: ContactMode) -> &'static str {
    match mode {
        ContactMode::Entry => "entry",
        ContactMode::Branch => "branch",
        ContactMode::LocalOnly => "local_only",
        ContactMode::Failover { .. } => "failover",
    }
}

/// Per-server instruments, labeled `{server="N"}`.
#[derive(Debug, Clone)]
pub(crate) struct ServerInstruments {
    /// `runtime.server.alive`: 1 while the server thread runs, 0 after a
    /// kill (until restart).
    pub alive: Arc<Gauge>,
    /// `runtime.server.queue_depth`: queries sitting in the server's
    /// mailbox, maintained explicitly — incremented when the dispatcher
    /// delivers a request, decremented when the server thread picks it
    /// up, reset on kill/restart (a dead mailbox drops its queue).
    pub queue_depth: Arc<Gauge>,
    /// `runtime.server.dispatch_latency_ms`: dispatch → reply wall time
    /// for sub-queries answered by this server.
    pub dispatch_ms: Arc<Histogram>,
    /// `runtime.server.replies`: replies received from this server.
    pub replies: Arc<Counter>,
}

/// Every instrument an instrumented cluster records into, pre-resolved.
#[derive(Debug, Clone)]
pub(crate) struct RuntimeMetrics {
    // Phase timers (wall-clock µs, aggregated across servers/queries).
    pub local_search: Arc<Histogram>,
    pub channel_wait: Arc<Histogram>,
    pub result_merge: Arc<Histogram>,
    /// `runtime.inflight_queries`: queries admitted past the gate.
    pub inflight: Arc<Gauge>,
    /// `runtime.queries`: queries completed (any outcome).
    pub queries: Arc<Counter>,
    /// `runtime.incomplete_queries`: completed with `complete = false`.
    pub incomplete: Arc<Counter>,
    /// `runtime.deadline_miss`: queries cut short by the query deadline.
    pub deadline_miss: Arc<Counter>,
    /// `runtime.dispatch_timeouts`: per-dispatch timeouts (incl. closed
    /// mailboxes and deadline closures).
    pub dispatch_timeout: Arc<Counter>,
    /// `runtime.retries`: re-dispatches after a timeout.
    pub retries: Arc<Counter>,
    /// `runtime.failovers`: overlay stand-ins nominated for dead servers.
    pub failovers: Arc<Counter>,
    /// `runtime.slo_violations`: queries slower than
    /// [`crate::RuntimeConfig::slo_response_ms`] (SLO burn counter).
    pub slo_violation: Arc<Counter>,
    /// `runtime.query_response_ms`: end-to-end query response time.
    pub response_ms: Arc<Histogram>,
    /// `runtime.dispatch_latency_ms{mode=...}`, indexed entry, branch,
    /// local_only, failover.
    pub dispatch_by_mode: [Arc<Histogram>; 4],
    /// `runtime.fault_events{kind="kill"}`.
    pub kills: Arc<Counter>,
    /// `runtime.fault_events{kind="restart"}`.
    pub restarts: Arc<Counter>,
    /// `runtime.fault_events{kind="slow"}`: straggler injections.
    pub slows: Arc<Counter>,
    /// `runtime.fault_events{kind="restore"}`: stragglers restored.
    pub restores: Arc<Counter>,
    /// `roads.cache.hits`: queries answered from the TTL'd result cache.
    pub cache_hits: Arc<Counter>,
    /// `roads.cache.misses`: cache lookups that fell through to execution
    /// (only counted while the cache is enabled).
    pub cache_misses: Arc<Counter>,
    /// `roads.cache.expired`: cached results that aged past the TTL on a
    /// [`crate::RoadsCluster::advance_cache_round`] epoch advance.
    pub cache_expired: Arc<Counter>,
    /// `roads.cache.invalidated`: cached results purged because an applied
    /// record delta could have changed their answer.
    pub cache_invalidated: Arc<Counter>,
    /// `roads.delta.changes_applied`: record changes applied by deltas.
    pub delta_applied: Arc<Counter>,
    /// `roads.delta.changes_rejected`: delta changes that matched nothing
    /// (removal of an absent record id).
    pub delta_rejected: Arc<Counter>,
    /// `roads.delta.dirty_servers`: servers whose local summaries a delta
    /// round refreshed.
    pub delta_dirty_servers: Arc<Counter>,
    /// `roads.delta.dirty_branches`: branch summaries a delta round
    /// recomputed (the dirty ancestor closure).
    pub delta_dirty_branches: Arc<Counter>,
    /// `roads.delta.shard_rebuilds`: shard summaries re-aggregated from
    /// raw records because a removal could not be unlearned exactly.
    pub delta_shard_rebuilds: Arc<Counter>,
    /// `roads.planner.planned_queries`: queries dispatched via the
    /// replica-aware set-cover planner instead of greedy expansion.
    pub planned_queries: Arc<Counter>,
    /// `roads.planner.pruned_probes`: ancestor probes the planner skipped
    /// because the replicated *local* summary ruled the ancestor out.
    pub pruned_probes: Arc<Counter>,
    /// Per-server instruments, indexed by `ServerId::index`.
    pub servers: Vec<ServerInstruments>,
}

impl RuntimeMetrics {
    /// Resolve (and thereby declare) every instrument for an `n`-server
    /// cluster in `reg`.
    pub fn new(reg: &Registry, n: usize) -> Self {
        let mode_hist = |m: ContactMode| {
            reg.histogram(&labeled(
                "runtime.dispatch_latency_ms",
                &[("mode", mode_label(m))],
            ))
        };
        let servers = (0..n)
            .map(|s| {
                let id = s.to_string();
                let lbl = [("server", id.as_str())];
                let si = ServerInstruments {
                    alive: reg.gauge(&labeled("runtime.server.alive", &lbl)),
                    queue_depth: reg.gauge(&labeled("runtime.server.queue_depth", &lbl)),
                    dispatch_ms: reg
                        .histogram(&labeled("runtime.server.dispatch_latency_ms", &lbl)),
                    replies: reg.counter(&labeled("runtime.server.replies", &lbl)),
                };
                si.alive.set(1);
                si
            })
            .collect();
        RuntimeMetrics {
            local_search: reg.histogram("runtime.local_search_us"),
            channel_wait: reg.histogram("runtime.channel_wait_us"),
            result_merge: reg.histogram("runtime.result_merge_us"),
            inflight: reg.gauge("runtime.inflight_queries"),
            queries: reg.counter("runtime.queries"),
            incomplete: reg.counter("runtime.incomplete_queries"),
            deadline_miss: reg.counter("runtime.deadline_miss"),
            dispatch_timeout: reg.counter("runtime.dispatch_timeouts"),
            retries: reg.counter("runtime.retries"),
            failovers: reg.counter("runtime.failovers"),
            slo_violation: reg.counter("runtime.slo_violations"),
            response_ms: reg.histogram("runtime.query_response_ms"),
            dispatch_by_mode: [
                mode_hist(ContactMode::Entry),
                mode_hist(ContactMode::Branch),
                mode_hist(ContactMode::LocalOnly),
                mode_hist(ContactMode::Failover {
                    dead: ServerId(u32::MAX), // label only; dead id unused
                }),
            ],
            kills: reg.counter(&labeled("runtime.fault_events", &[("kind", "kill")])),
            restarts: reg.counter(&labeled("runtime.fault_events", &[("kind", "restart")])),
            slows: reg.counter(&labeled("runtime.fault_events", &[("kind", "slow")])),
            restores: reg.counter(&labeled("runtime.fault_events", &[("kind", "restore")])),
            cache_hits: reg.counter("roads.cache.hits"),
            cache_misses: reg.counter("roads.cache.misses"),
            cache_expired: reg.counter("roads.cache.expired"),
            cache_invalidated: reg.counter("roads.cache.invalidated"),
            delta_applied: reg.counter("roads.delta.changes_applied"),
            delta_rejected: reg.counter("roads.delta.changes_rejected"),
            delta_dirty_servers: reg.counter("roads.delta.dirty_servers"),
            delta_dirty_branches: reg.counter("roads.delta.dirty_branches"),
            delta_shard_rebuilds: reg.counter("roads.delta.shard_rebuilds"),
            planned_queries: reg.counter("roads.planner.planned_queries"),
            pruned_probes: reg.counter("roads.planner.pruned_probes"),
            servers,
        }
    }

    /// The dispatch-latency histogram for `mode`.
    pub fn dispatch_hist(&self, mode: ContactMode) -> &Arc<Histogram> {
        let i = match mode {
            ContactMode::Entry => 0,
            ContactMode::Branch => 1,
            ContactMode::LocalOnly => 2,
            ContactMode::Failover { .. } => 3,
        };
        &self.dispatch_by_mode[i]
    }
}

/// The kind of an injected fault, as logged for incident correlation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Server thread torn down ([`crate::RoadsCluster::kill_server`]).
    Kill,
    /// Server respawned ([`crate::RoadsCluster::restart_server`]).
    Restart,
    /// Straggler injected ([`crate::RoadsCluster::slow_server`]).
    Slow,
    /// Straggler restored ([`crate::RoadsCluster::restore_server`]).
    Restore,
}

impl FaultKind {
    /// The exposition / artifact label for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Kill => "kill",
            FaultKind::Restart => "restart",
            FaultKind::Slow => "slow",
            FaultKind::Restore => "restore",
        }
    }

    /// Whether this kind marks a fault *onset* (kill/slow) rather than a
    /// recovery (restart/restore).
    pub fn is_onset(self) -> bool {
        matches!(self, FaultKind::Kill | FaultKind::Slow)
    }

    /// Inverse of [`as_str`](FaultKind::as_str), for artifact parsers.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "kill" => Some(FaultKind::Kill),
            "restart" => Some(FaultKind::Restart),
            "slow" => Some(FaultKind::Slow),
            "restore" => Some(FaultKind::Restore),
            _ => None,
        }
    }

    /// The recovery kind that clears this onset (`None` for recoveries).
    pub fn clears_with(self) -> Option<FaultKind> {
        match self {
            FaultKind::Kill => Some(FaultKind::Restart),
            FaultKind::Slow => Some(FaultKind::Restore),
            _ => None,
        }
    }
}

/// One injected-fault event with its wall-clock onset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault was injected.
    pub at: Instant,
    /// The faulted server.
    pub server: ServerId,
    /// What happened to it.
    pub kind: FaultKind,
    /// Straggler factor for `Slow` events; 1.0 otherwise.
    pub factor: f64,
}

/// A timestamped log of injected faults (kills, restarts, stragglers),
/// shared between the cluster (writer) and the watchdog (reader): the
/// `runtime.fault_events` counters say *how many* faults happened, this
/// log says *when* and *to whom*, which is what incident correlation
/// and detection-latency measurement need.
#[derive(Debug, Default)]
pub struct FaultLog {
    events: Mutex<Vec<FaultEvent>>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event stamped now.
    pub fn record(&self, server: ServerId, kind: FaultKind, factor: f64) {
        self.events.lock().push(FaultEvent {
            at: Instant::now(),
            server,
            kind,
            factor,
        });
    }

    /// A snapshot of every event logged so far, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().clone()
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

/// Point-in-time health of one server, from [`ClusterHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerHealth {
    /// The server.
    pub server: ServerId,
    /// Whether its thread is running (kill/restart bookkeeping).
    pub alive: bool,
    /// Queries sitting in its mailbox right now.
    pub queue_depth: i64,
    /// Replies received from it since cluster start.
    pub replies: u64,
    /// p99 of dispatch → reply wall time, ms; `None` before any reply.
    pub dispatch_p99_ms: Option<f64>,
}

/// A point-in-time health snapshot of a live instrumented cluster
/// ([`crate::RoadsCluster::health`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterHealth {
    /// Per-server rows, ascending by id.
    pub servers: Vec<ServerHealth>,
    /// Queries currently admitted past the inflight gate.
    pub inflight_queries: i64,
    /// Queries completed.
    pub queries: u64,
    /// Re-dispatches after timeouts.
    pub retries: u64,
    /// Queries cut short by the deadline.
    pub deadline_misses: u64,
    /// Overlay stand-ins nominated.
    pub failovers: u64,
}

impl ClusterHealth {
    /// Number of servers currently alive.
    pub fn alive_count(&self) -> usize {
        self.servers.iter().filter(|s| s.alive).count()
    }
}

impl fmt::Display for ClusterHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster: {}/{} alive, {} inflight, {} queries ({} retries, {} deadline misses, {} failovers)",
            self.alive_count(),
            self.servers.len(),
            self.inflight_queries,
            self.queries,
            self.retries,
            self.deadline_misses,
            self.failovers,
        )?;
        writeln!(
            f,
            "{:>6} {:>6} {:>7} {:>8} {:>14}",
            "server", "alive", "queue", "replies", "dispatch p99"
        )?;
        for s in &self.servers {
            writeln!(
                f,
                "{:>6} {:>6} {:>7} {:>8} {:>14}",
                s.server.0,
                if s.alive { "up" } else { "DOWN" },
                s.queue_depth,
                s.replies,
                match s.dispatch_p99_ms {
                    Some(p) => format!("{p:.1} ms"),
                    None => "-".to_string(),
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_declare_families_at_startup() {
        let reg = Registry::new();
        let m = RuntimeMetrics::new(&reg, 3);
        assert_eq!(m.servers.len(), 3);
        let counters = reg.counter_values();
        assert_eq!(counters["runtime.deadline_miss"], 0);
        assert_eq!(
            counters[&labeled("runtime.fault_events", &[("kind", "kill")])],
            0
        );
        let gauges = reg.gauge_values();
        assert_eq!(
            gauges[&labeled("runtime.server.alive", &[("server", "1")])],
            1
        );
        assert_eq!(
            gauges[&labeled("runtime.server.queue_depth", &[("server", "2")])],
            0
        );
        // All four mode-labeled dispatch histograms exist.
        let hists = reg.histogram_snapshots();
        for mode in ["entry", "branch", "local_only", "failover"] {
            assert!(hists.contains_key(&labeled("runtime.dispatch_latency_ms", &[("mode", mode)])));
        }
    }

    #[test]
    fn mode_labels_cover_all_modes() {
        assert_eq!(mode_label(ContactMode::Entry), "entry");
        assert_eq!(mode_label(ContactMode::Branch), "branch");
        assert_eq!(mode_label(ContactMode::LocalOnly), "local_only");
        assert_eq!(
            mode_label(ContactMode::Failover { dead: ServerId(7) }),
            "failover"
        );
    }

    #[test]
    fn cluster_health_renders_table() {
        let h = ClusterHealth {
            servers: vec![
                ServerHealth {
                    server: ServerId(0),
                    alive: true,
                    queue_depth: 2,
                    replies: 10,
                    dispatch_p99_ms: Some(12.5),
                },
                ServerHealth {
                    server: ServerId(1),
                    alive: false,
                    queue_depth: 0,
                    replies: 0,
                    dispatch_p99_ms: None,
                },
            ],
            inflight_queries: 1,
            queries: 5,
            retries: 2,
            deadline_misses: 0,
            failovers: 1,
        };
        assert_eq!(h.alive_count(), 1);
        let text = h.to_string();
        assert!(text.contains("1/2 alive"));
        assert!(text.contains("DOWN"));
        assert!(text.contains("12.5 ms"));
    }
}
