//! The background watchdog: online anomaly detection over the live
//! cluster, correlated into incident timelines.
//!
//! A [`Watchdog`] mirrors the [`crate::audit::Auditor`] lifecycle — a
//! condvar-paced thread, `tick_now` for deterministic tests, one final
//! tick on shutdown, `stop()` returning the final [`IncidentReport`] —
//! but instead of probing ground truth it watches the cluster's own
//! telemetry. Each tick it:
//!
//! 1. **samples** a set of [`Probe`]s from the shared
//!    [`Registry`] — raw counter/gauge values, per-tick counter rates,
//!    counter-delta ratios (e.g. SLO burn = `Δslo_violations/Δqueries`),
//!    and *windowed* histogram p99s (`<name>.p99w`, the p99 of only the
//!    samples recorded since the previous tick, so a straggler shifts
//!    the signal within one tick instead of being diluted by the
//!    cumulative distribution);
//! 2. **evaluates** a [`DetectorBank`] (`roads_telemetry::detect`) over
//!    those samples, producing epoch-stamped [`DetectorFiring`]s;
//! 3. **coalesces** firings into [`Incident`]s — firings within
//!    [`WatchdogConfig::coalesce`] of an open incident's last activity
//!    merge into it, everything else opens a new incident;
//! 4. **correlates** each new incident with the flight recorder's view
//!    of the world: injected fault events ([`FaultLog`] kills /
//!    stragglers, ranked by onset proximity), overlay audit divergence
//!    (`audit.divergence_ppm`), per-server queue-depth locality, and
//!    tail-sampled slow-query explains retained while the incident is
//!    open. The ranked [`SuspectedCause`] list keeps that tier order:
//!    fault-event proximity first, then audit divergence, then queue
//!    depth. An incident matching a fault onset records its
//!    detection-latency-from-onset; one matching nothing is counted as
//!    a false alarm.
//!
//! Every outcome lands in pre-resolved `roads.watchdog.*` OpenMetrics
//! instruments ([`WatchdogMetrics`]), and the incident timeline is
//! exported as the `INCIDENTS.json` artifact ([`IncidentReport`], same
//! marker/strict-parse discipline as `AUDIT.json`).

use crate::cluster::RoadsCluster;
use crate::health::{FaultKind, FaultLog};
use roads_telemetry::BurnRateRule;
use roads_telemetry::{
    labeled, Counter, DetectorBank, DetectorFiring, EwmaSpikeDetector, Gauge, Histogram, Json,
    Registry, TailSampler, ThresholdRule,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Most slow-query ids correlated into a single incident.
const SLOW_QUERY_CAP: usize = 32;

/// Background watchdog schedule and correlation policy.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Wall-clock pause between detection ticks.
    pub interval: Duration,
    /// Firings within this gap of an open incident's last activity merge
    /// into it; an incident idle for longer closes.
    pub coalesce: Duration,
    /// Maximum gap between a *cleared* fault onset and a firing for the
    /// two to correlate. Faults still active (no restart/restore yet)
    /// match regardless of age.
    pub fault_match: Duration,
    /// Per-server mailbox depth at or above which queue locality is
    /// reported as a suspected cause.
    pub queue_alert_depth: i64,
    /// Where to write the periodic `INCIDENTS.json` artifact (none =
    /// skip).
    pub report_path: Option<PathBuf>,
    /// Write the artifact every this many ticks (0 = only at `stop`).
    pub report_every: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval: Duration::from_millis(100),
            coalesce: Duration::from_millis(300),
            fault_match: Duration::from_secs(5),
            queue_alert_depth: 4,
            report_path: None,
            report_every: 0,
        }
    }
}

/// Every instrument the watchdog records into, pre-resolved so all
/// families appear in a scrape from the first moment.
#[derive(Debug, Clone)]
pub struct WatchdogMetrics {
    /// `roads.watchdog.ticks`: detection ticks completed.
    pub ticks: Arc<Counter>,
    /// `roads.watchdog.incidents`: incidents opened.
    pub incidents: Arc<Counter>,
    /// `roads.watchdog.false_alarms`: incidents matching no fault.
    pub false_alarms: Arc<Counter>,
    /// `roads.watchdog.reports`: `INCIDENTS.json` artifacts written.
    pub reports: Arc<Counter>,
    /// `roads.watchdog.open_incidents`: incidents currently open.
    pub open_incidents: Arc<Gauge>,
    /// `roads.watchdog.detection_latency_ms`: firing-to-fault-onset gap
    /// for each first detection of an injected fault.
    pub detection_latency_ms: Arc<Histogram>,
    /// `roads.watchdog.firings{detector="..."}`: firings per detector.
    firings: Vec<(String, Arc<Counter>)>,
}

impl WatchdogMetrics {
    /// Resolve (and thereby declare) every watchdog instrument in `reg`
    /// for the given detector names (see
    /// [`DetectorBank::detector_names`]).
    pub fn new(reg: &Registry, detectors: &[String]) -> Self {
        WatchdogMetrics {
            ticks: reg.counter("roads.watchdog.ticks"),
            incidents: reg.counter("roads.watchdog.incidents"),
            false_alarms: reg.counter("roads.watchdog.false_alarms"),
            reports: reg.counter("roads.watchdog.reports"),
            open_incidents: reg.gauge("roads.watchdog.open_incidents"),
            detection_latency_ms: reg.histogram("roads.watchdog.detection_latency_ms"),
            firings: detectors
                .iter()
                .map(|d| {
                    let name = labeled("roads.watchdog.firings", &[("detector", d)]);
                    (d.clone(), reg.counter(&name))
                })
                .collect(),
        }
    }

    /// The firing counter for `detector`, if it was declared.
    pub fn firing_counter(&self, detector: &str) -> Option<&Arc<Counter>> {
        self.firings
            .iter()
            .find(|(d, _)| d == detector)
            .map(|(_, c)| c)
    }
}

/// One registry-derived series the watchdog samples each tick.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    /// Current value of the counter or gauge `name`, recorded under its
    /// own name.
    Value(String),
    /// Per-tick increase of the counter `name`, recorded as
    /// `<name>.rate`.
    Rate(String),
    /// `Δnum / Δden` of two counters over the tick, recorded as
    /// `series`; skipped on ticks where `den` did not move.
    Ratio {
        /// Series name the ratio is recorded under.
        series: String,
        /// Numerator counter.
        num: String,
        /// Denominator counter.
        den: String,
    },
    /// p99 of the histogram samples recorded since the previous tick,
    /// as `<name>.p99w`; skipped on ticks with no new samples.
    WindowP99(String),
}

/// Suspected-cause tiers, in ranking order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CauseKind {
    /// A kill/straggler injection near the firing (from the
    /// [`FaultLog`]).
    FaultEvent,
    /// Non-zero overlay audit divergence at detection time.
    AuditDivergence,
    /// An unusually deep per-server mailbox at detection time.
    QueueDepth,
}

impl CauseKind {
    /// The artifact label for this tier.
    pub fn as_str(self) -> &'static str {
        match self {
            CauseKind::FaultEvent => "fault-event",
            CauseKind::AuditDivergence => "audit-divergence",
            CauseKind::QueueDepth => "queue-depth",
        }
    }

    /// Inverse of [`as_str`](CauseKind::as_str).
    pub fn parse(s: &str) -> Option<CauseKind> {
        match s {
            "fault-event" => Some(CauseKind::FaultEvent),
            "audit-divergence" => Some(CauseKind::AuditDivergence),
            "queue-depth" => Some(CauseKind::QueueDepth),
            _ => None,
        }
    }
}

/// One entry in an incident's ranked suspected-cause list.
#[derive(Debug, Clone, PartialEq)]
pub struct SuspectedCause {
    /// Which correlation tier produced this cause.
    pub kind: CauseKind,
    /// The implicated server, when the tier localizes one.
    pub server: Option<u32>,
    /// Relative confidence within the tier, in `(0, 1]`.
    pub score: f64,
    /// Human-readable explanation.
    pub detail: String,
}

/// The fault onset an incident was attributed to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// The faulted server.
    pub server: u32,
    /// Onset time, ms since watchdog start.
    pub onset_ms: f64,
}

/// A coalesced run of detector firings with its correlation verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Monotone incident id (1-based).
    pub id: u64,
    /// First firing, ms since watchdog start.
    pub opened_ms: f64,
    /// Most recent firing absorbed.
    pub last_ms: f64,
    /// Total firings absorbed.
    pub firings: u64,
    /// Distinct detector names involved, in first-seen order.
    pub detectors: Vec<String>,
    /// Distinct series involved, in first-seen order.
    pub series: Vec<String>,
    /// Ranked suspected causes (fault proximity, then audit divergence,
    /// then queue depth).
    pub causes: Vec<SuspectedCause>,
    /// The fault onset this incident detected, when one correlates.
    pub matched: Option<MatchedFault>,
    /// Firing-to-onset gap for the *first* incident detecting a given
    /// fault; `None` for repeats and false alarms.
    pub detection_latency_ms: Option<f64>,
    /// No fault onset correlates with this incident.
    pub false_alarm: bool,
    /// Query ids of tail-sampled slow-query explains retained while the
    /// incident was open (capped).
    pub slow_queries: Vec<u64>,
}

impl Incident {
    fn absorb(&mut self, f: &DetectorFiring) {
        self.firings += 1;
        if !self.detectors.iter().any(|d| d == &f.detector) {
            self.detectors.push(f.detector.clone());
        }
        if !self.series.iter().any(|s| s == &f.series) {
            self.series.push(f.series.clone());
        }
        self.last_ms = self.last_ms.max(f.at_ms);
    }

    fn to_json(&self) -> Json {
        let causes = self
            .causes
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("kind", Json::str(c.kind.as_str())),
                    (
                        "server",
                        c.server.map_or(Json::Null, |s| Json::num(s as f64)),
                    ),
                    ("score", Json::num(c.score)),
                    ("detail", Json::str(c.detail.as_str())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("id", Json::num(self.id as f64)),
            ("opened_ms", Json::num(self.opened_ms)),
            ("last_ms", Json::num(self.last_ms)),
            ("firings", Json::num(self.firings as f64)),
            (
                "detectors",
                Json::arr(self.detectors.iter().map(Json::str).collect()),
            ),
            (
                "series",
                Json::arr(self.series.iter().map(Json::str).collect()),
            ),
            ("causes", Json::arr(causes)),
            (
                "matched",
                self.matched.map_or(Json::Null, |m| {
                    Json::obj(vec![
                        ("kind", Json::str(m.kind.as_str())),
                        ("server", Json::num(m.server as f64)),
                        ("onset_ms", Json::num(m.onset_ms)),
                    ])
                }),
            ),
            (
                "detection_latency_ms",
                self.detection_latency_ms.map_or(Json::Null, Json::num),
            ),
            ("false_alarm", Json::Bool(self.false_alarm)),
            (
                "slow_queries",
                Json::arr(
                    self.slow_queries
                        .iter()
                        .map(|&q| Json::num(q as f64))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(i: usize, row: &Json) -> Result<Incident, String> {
        let field = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("rows[{i}] missing `{key}`"))
        };
        let strings = |key: &str| -> Result<Vec<String>, String> {
            row.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("rows[{i}] missing `{key}` array"))?
                .iter()
                .map(|v| {
                    v.as_str_val()
                        .map(str::to_string)
                        .ok_or_else(|| format!("rows[{i}].{key} has a non-string entry"))
                })
                .collect()
        };
        let causes_json = row
            .get("causes")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("rows[{i}] missing `causes` array"))?;
        let mut causes = Vec::with_capacity(causes_json.len());
        for (j, c) in causes_json.iter().enumerate() {
            let at = |key: &str| format!("rows[{i}].causes[{j}] missing `{key}`");
            let kind = c
                .get("kind")
                .and_then(Json::as_str_val)
                .and_then(CauseKind::parse)
                .ok_or_else(|| format!("rows[{i}].causes[{j}] has an unknown cause `kind`"))?;
            let server = match c.get("server") {
                Some(Json::Null) => None,
                Some(v) => Some(v.as_f64().ok_or_else(|| at("server"))? as u32),
                None => return Err(at("server")),
            };
            causes.push(SuspectedCause {
                kind,
                server,
                score: c
                    .get("score")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| at("score"))?,
                detail: c
                    .get("detail")
                    .and_then(Json::as_str_val)
                    .ok_or_else(|| at("detail"))?
                    .to_string(),
            });
        }
        let matched = match row.get("matched") {
            Some(Json::Null) => None,
            Some(m) => {
                let at = |key: &str| format!("rows[{i}].matched missing `{key}`");
                Some(MatchedFault {
                    kind: m
                        .get("kind")
                        .and_then(Json::as_str_val)
                        .and_then(FaultKind::parse)
                        .ok_or_else(|| format!("rows[{i}].matched has an unknown fault `kind`"))?,
                    server: m
                        .get("server")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| at("server"))? as u32,
                    onset_ms: m
                        .get("onset_ms")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| at("onset_ms"))?,
                })
            }
            None => return Err(format!("rows[{i}] missing `matched`")),
        };
        let detection_latency_ms = match row.get("detection_latency_ms") {
            Some(Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| format!("rows[{i}] has a non-numeric `detection_latency_ms`"))?,
            ),
            None => return Err(format!("rows[{i}] missing `detection_latency_ms`")),
        };
        let false_alarm = match row.get("false_alarm") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("rows[{i}] missing boolean `false_alarm`")),
        };
        let slow_queries = row
            .get("slow_queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("rows[{i}] missing `slow_queries` array"))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .map(|q| q as u64)
                    .ok_or_else(|| format!("rows[{i}].slow_queries has a non-numeric entry"))
            })
            .collect::<Result<Vec<u64>, String>>()?;
        Ok(Incident {
            id: field("id")? as u64,
            opened_ms: field("opened_ms")?,
            last_ms: field("last_ms")?,
            firings: field("firings")? as u64,
            detectors: strings("detectors")?,
            series: strings("series")?,
            causes,
            matched,
            detection_latency_ms,
            false_alarm,
            slow_queries,
        })
    }
}

/// The periodic incident artifact (`INCIDENTS.json`), and what `stop()`
/// returns.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReport {
    /// Detection ticks completed.
    pub ticks: u64,
    /// Configured tick interval, ms.
    pub interval_ms: f64,
    /// Total detector firings.
    pub firings: u64,
    /// Incidents that matched no fault onset.
    pub false_alarms: u64,
    /// Every incident (closed and still open), ascending by id.
    pub rows: Vec<Incident>,
}

impl IncidentReport {
    /// Incidents attributed to a fault onset.
    pub fn matched(&self) -> usize {
        self.rows.iter().filter(|r| r.matched.is_some()).count()
    }

    /// First-detection latencies, ms, in incident order.
    pub fn detection_latencies_ms(&self) -> Vec<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.detection_latency_ms)
            .collect()
    }

    /// Worst first-detection latency, ms.
    pub fn max_detection_latency_ms(&self) -> Option<f64> {
        self.detection_latencies_ms()
            .into_iter()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Serialize as the `INCIDENTS.json` document (marker key
    /// `incidents`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("incidents", Json::num(1.0)),
            ("ticks", Json::num(self.ticks as f64)),
            ("interval_ms", Json::num(self.interval_ms)),
            ("firings", Json::num(self.firings as f64)),
            ("false_alarms", Json::num(self.false_alarms as f64)),
            (
                "rows",
                Json::arr(self.rows.iter().map(Incident::to_json).collect()),
            ),
        ])
    }

    /// Strict parse of a document produced by [`to_json`]: every field
    /// must be present and well-typed, errors name the offending entry.
    ///
    /// [`to_json`]: IncidentReport::to_json
    pub fn from_json(doc: &Json) -> Result<IncidentReport, String> {
        if doc.get("incidents").and_then(Json::as_f64) != Some(1.0) {
            return Err("not an incidents document (missing `incidents: 1` marker)".into());
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("incidents document missing `{key}`"))
        };
        let rows_json = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("incidents document missing `rows` array")?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, row) in rows_json.iter().enumerate() {
            rows.push(Incident::from_json(i, row)?);
        }
        Ok(IncidentReport {
            ticks: num("ticks")? as u64,
            interval_ms: num("interval_ms")?,
            firings: num("firings")? as u64,
            false_alarms: num("false_alarms")? as u64,
            rows,
        })
    }

    /// Write the document to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

/// True when a parsed JSON document carries the `INCIDENTS.json` marker.
pub fn is_incidents_doc(doc: &Json) -> bool {
    doc.get("incidents").is_some()
}

/// The default detector set for an instrumented cluster: a per-server
/// liveness rule (`server-down`), an EWMA spike detector over the
/// windowed query-response p99 (`latency-spike`), and a multi-window
/// SLO burn-rate rule (`slo-burn`) over `Δslo_violations/Δqueries`.
pub fn standard_bank(n_servers: usize, interval: Duration) -> (DetectorBank, Vec<Probe>) {
    let interval_ms = (interval.as_secs_f64() * 1e3).max(1.0);
    let mut bank = DetectorBank::new();
    let mut probes = Vec::new();
    for s in 0..n_servers {
        let id = s.to_string();
        let series = labeled("runtime.server.alive", &[("server", id.as_str())]);
        bank.bind(&series, ThresholdRule::below("server-down", 0.5, 1));
        probes.push(Probe::Value(series));
    }
    bank.bind(
        "runtime.query_response_ms.p99w",
        EwmaSpikeDetector::new("latency-spike", 0.3, 4.0, 5.0),
    );
    probes.push(Probe::WindowP99("runtime.query_response_ms".into()));
    bank.bind(
        "watchdog.slo_burn",
        BurnRateRule::new("slo-burn", 0.05, 2.0, 2.0 * interval_ms, 8.0 * interval_ms),
    );
    probes.push(Probe::Ratio {
        series: "watchdog.slo_burn".into(),
        num: "runtime.slo_violations".into(),
        den: "runtime.queries".into(),
    });
    (bank, probes)
}

struct WatchdogShared {
    registry: Arc<Registry>,
    fault_log: Arc<FaultLog>,
    tail: Option<Arc<TailSampler>>,
    metrics: Arc<WatchdogMetrics>,
    cfg: WatchdogConfig,
    probes: Vec<Probe>,
    t0: Instant,
    state: StdMutex<WatchdogState>,
    cv: Condvar,
}

struct WatchdogState {
    stop: bool,
    ticks: u64,
    bank: DetectorBank,
    /// Last raw counter values, for `Rate`/`Ratio` probes.
    counters_last: BTreeMap<String, f64>,
    /// Last bucket counts per watched histogram (keyed by the bucket
    /// value's bit pattern — ascending for non-negative floats), for
    /// `WindowP99` probes.
    hist_last: BTreeMap<String, BTreeMap<u64, u64>>,
    /// Tail-sampler retained entries already correlated.
    tail_seen: usize,
    /// Fault-log onset indices whose detection latency is recorded.
    matched_onsets: BTreeSet<usize>,
    open: Vec<Incident>,
    closed: Vec<Incident>,
    next_id: u64,
    firings: u64,
    false_alarms: u64,
}

impl WatchdogShared {
    fn onset_ms(&self, at: Instant) -> f64 {
        at.saturating_duration_since(self.t0).as_secs_f64() * 1e3
    }

    /// Sample every probe from the registry into `(series, value)`
    /// pairs for this tick.
    fn collect(&self, st: &mut WatchdogState) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(self.probes.len());
        let counter_delta = |st: &mut WatchdogState, name: &str| -> Option<f64> {
            let c = self.registry.find_counter(name)?;
            let v = c.get() as f64;
            let last = st.counters_last.insert(name.to_string(), v).unwrap_or(v);
            Some(v - last)
        };
        for probe in &self.probes {
            match probe {
                Probe::Value(name) => {
                    if let Some(c) = self.registry.find_counter(name) {
                        out.push((name.clone(), c.get() as f64));
                    } else if let Some(g) = self.registry.find_gauge(name) {
                        out.push((name.clone(), g.get() as f64));
                    }
                }
                Probe::Rate(name) => {
                    if let Some(d) = counter_delta(st, name) {
                        out.push((format!("{name}.rate"), d));
                    }
                }
                Probe::Ratio { series, num, den } => {
                    let dd = counter_delta(st, den);
                    let dn = counter_delta(st, num);
                    if let (Some(dn), Some(dd)) = (dn, dd) {
                        if dd > 0.0 {
                            out.push((series.clone(), dn / dd));
                        }
                    }
                }
                Probe::WindowP99(name) => {
                    let Some(h) = self.registry.find_histogram(name) else {
                        continue;
                    };
                    let snap = h.full_snapshot();
                    let cur: BTreeMap<u64, u64> = snap
                        .buckets
                        .iter()
                        .map(|&(v, c)| (v.to_bits(), c))
                        .collect();
                    let prev = st
                        .hist_last
                        .insert(name.clone(), cur.clone())
                        .unwrap_or_default();
                    let mut total = 0u64;
                    let mut delta: Vec<(f64, u64)> = Vec::new();
                    for (&bits, &c) in &cur {
                        let d = c.saturating_sub(prev.get(&bits).copied().unwrap_or(0));
                        if d > 0 {
                            delta.push((f64::from_bits(bits), d));
                            total += d;
                        }
                    }
                    if total > 0 {
                        let rank = ((total as f64) * 0.99).ceil().max(1.0) as u64;
                        let mut cum = 0u64;
                        for (v, c) in delta {
                            cum += c;
                            if cum >= rank {
                                out.push((format!("{name}.p99w"), v));
                                break;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Open a new incident from this tick's firings: correlate against
    /// the fault log, audit divergence gauge, and queue-depth gauges.
    fn open_incident(
        &self,
        st: &mut WatchdogState,
        now_ms: f64,
        firings: &[DetectorFiring],
    ) -> Incident {
        st.next_id += 1;
        let mut inc = Incident {
            id: st.next_id,
            opened_ms: now_ms,
            last_ms: now_ms,
            firings: 0,
            detectors: Vec::new(),
            series: Vec::new(),
            causes: Vec::new(),
            matched: None,
            detection_latency_ms: None,
            false_alarm: true,
            slow_queries: Vec::new(),
        };
        for f in firings {
            inc.absorb(f);
        }
        // Tier 1: fault-event proximity. Candidates are onsets at or
        // before the firing that are either recent or still active
        // (not yet cleared by the matching recovery event).
        let match_ms = self.cfg.fault_match.as_secs_f64() * 1e3;
        let events = self.fault_log.events();
        let mut candidates: Vec<(usize, f64, FaultKind, u32)> = Vec::new();
        for (idx, ev) in events.iter().enumerate() {
            if !ev.kind.is_onset() {
                continue;
            }
            let onset = self.onset_ms(ev.at);
            if onset > now_ms {
                continue;
            }
            let cleared = events[idx + 1..].iter().any(|e| {
                e.server == ev.server
                    && Some(e.kind) == ev.kind.clears_with()
                    && self.onset_ms(e.at) <= now_ms
            });
            if !cleared || now_ms - onset <= match_ms {
                candidates.push((idx, onset, ev.kind, ev.server.index() as u32));
            }
        }
        // Newest onset first: the most recent injection is the most
        // plausible trigger.
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for &(_, onset, kind, server) in &candidates {
            let gap = now_ms - onset;
            inc.causes.push(SuspectedCause {
                kind: CauseKind::FaultEvent,
                server: Some(server),
                score: 1.0 / (1.0 + gap / 1e3),
                detail: format!(
                    "{} of server {server} {gap:.0} ms before detection",
                    kind.as_str()
                ),
            });
        }
        if let Some(&(idx, onset, kind, server)) = candidates.first() {
            inc.false_alarm = false;
            inc.matched = Some(MatchedFault {
                kind,
                server,
                onset_ms: onset,
            });
            if st.matched_onsets.insert(idx) {
                let latency = now_ms - onset;
                inc.detection_latency_ms = Some(latency);
                self.metrics.detection_latency_ms.record(latency);
            }
        }
        // Tier 2: overlay audit divergence at detection time.
        if let Some(g) = self.registry.find_gauge("audit.divergence_ppm") {
            let ppm = g.get();
            if ppm > 0 {
                inc.causes.push(SuspectedCause {
                    kind: CauseKind::AuditDivergence,
                    server: None,
                    score: (ppm as f64 / 1e6).min(1.0),
                    detail: format!("overlay divergence {ppm} ppm"),
                });
            }
        }
        // Tier 3: queue-depth locality — the deepest per-server mailbox
        // at or above the alert depth.
        let mut worst: Option<(u32, i64)> = None;
        for (name, v) in self.registry.gauge_values() {
            let Some(rest) = name.strip_prefix("runtime.server.queue_depth{server=\"") else {
                continue;
            };
            let Some(id) = rest.strip_suffix("\"}").and_then(|s| s.parse::<u32>().ok()) else {
                continue;
            };
            if v >= self.cfg.queue_alert_depth && worst.is_none_or(|(_, w)| v > w) {
                worst = Some((id, v));
            }
        }
        if let Some((server, depth)) = worst {
            inc.causes.push(SuspectedCause {
                kind: CauseKind::QueueDepth,
                server: Some(server),
                score: depth as f64 / (depth as f64 + 1.0),
                detail: format!("queue depth {depth} at server {server}"),
            });
        }
        self.metrics.incidents.inc();
        if inc.false_alarm {
            self.metrics.false_alarms.inc();
            st.false_alarms += 1;
        }
        inc
    }

    fn tick(&self) {
        let now_ms = self.t0.elapsed().as_secs_f64() * 1e3;
        let mut st = self.state.lock().expect("watchdog state");
        st.ticks += 1;
        self.metrics.ticks.inc();
        let samples = self.collect(&mut st);
        st.bank.advance_epoch();
        let mut firings: Vec<DetectorFiring> = Vec::new();
        for (series, v) in samples {
            firings.extend(st.bank.observe_sample(&series, now_ms, v));
        }
        for f in &firings {
            st.firings += 1;
            if let Some(c) = self.metrics.firing_counter(&f.detector) {
                c.inc();
            }
        }
        let coalesce_ms = self.cfg.coalesce.as_secs_f64() * 1e3;
        if !firings.is_empty() {
            // All of one tick's firings are the same burst; absorb into
            // a recently-active open incident or start a new one.
            match st
                .open
                .iter()
                .position(|i| now_ms - i.last_ms <= coalesce_ms)
            {
                Some(at) => {
                    let mut inc = std::mem::replace(&mut st.open[at], placeholder());
                    for f in &firings {
                        inc.absorb(f);
                    }
                    inc.last_ms = inc.last_ms.max(now_ms);
                    st.open[at] = inc;
                }
                None => {
                    let inc = self.open_incident(&mut st, now_ms, &firings);
                    st.open.push(inc);
                }
            }
        }
        // Correlate newly retained slow-query explains into every open
        // incident (they overlap its window).
        if let Some(tail) = &self.tail {
            let retained = tail.retained();
            if retained.len() > st.tail_seen {
                let seen = st.tail_seen;
                for rq in &retained[seen..] {
                    for inc in &mut st.open {
                        if inc.slow_queries.len() < SLOW_QUERY_CAP {
                            inc.slow_queries.push(rq.explain.query_id);
                        }
                    }
                }
                st.tail_seen = retained.len();
            }
        }
        // Close incidents idle past the coalescing gap.
        let open = std::mem::take(&mut st.open);
        for inc in open {
            if now_ms - inc.last_ms > coalesce_ms {
                st.closed.push(inc);
            } else {
                st.open.push(inc);
            }
        }
        self.metrics.open_incidents.set(st.open.len() as i64);
        let report_due = self.cfg.report_every > 0
            && st.ticks.is_multiple_of(self.cfg.report_every)
            && self.cfg.report_path.is_some();
        let report = report_due.then(|| self.report_locked(&st));
        drop(st);
        if let (Some(r), Some(path)) = (report, &self.cfg.report_path) {
            if r.write(path).is_ok() {
                self.metrics.reports.inc();
            }
        }
    }

    fn report_locked(&self, st: &WatchdogState) -> IncidentReport {
        let mut rows: Vec<Incident> = st.closed.iter().chain(st.open.iter()).cloned().collect();
        rows.sort_by_key(|r| r.id);
        IncidentReport {
            ticks: st.ticks,
            interval_ms: self.cfg.interval.as_secs_f64() * 1e3,
            firings: st.firings,
            false_alarms: st.false_alarms,
            rows,
        }
    }
}

/// Placeholder for the in-place absorb swap; never observable.
fn placeholder() -> Incident {
    Incident {
        id: 0,
        opened_ms: 0.0,
        last_ms: 0.0,
        firings: 0,
        detectors: Vec::new(),
        series: Vec::new(),
        causes: Vec::new(),
        matched: None,
        detection_latency_ms: None,
        false_alarm: true,
        slow_queries: Vec::new(),
    }
}

/// The background watchdog thread. `stop` joins it and returns the
/// final report; dropping without stopping also signals and joins.
/// Either shutdown path runs one final tick first, so late faults are
/// always evaluated.
pub struct Watchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Start watching `registry` every [`WatchdogConfig::interval`],
    /// evaluating `bank` over the series derived by `probes` and
    /// correlating firings against `fault_log` (and `tail`, when
    /// given). The first scheduled tick fires one full interval after
    /// start.
    pub fn start(
        registry: Arc<Registry>,
        fault_log: Arc<FaultLog>,
        tail: Option<Arc<TailSampler>>,
        metrics: Arc<WatchdogMetrics>,
        cfg: WatchdogConfig,
        bank: DetectorBank,
        probes: Vec<Probe>,
    ) -> Self {
        assert!(
            !cfg.interval.is_zero(),
            "watchdog interval must be positive"
        );
        let interval = cfg.interval;
        let shared = Arc::new(WatchdogShared {
            registry,
            fault_log,
            tail,
            metrics,
            cfg,
            probes,
            t0: Instant::now(),
            state: StdMutex::new(WatchdogState {
                stop: false,
                ticks: 0,
                bank,
                counters_last: BTreeMap::new(),
                hist_last: BTreeMap::new(),
                tail_seen: 0,
                matched_onsets: BTreeSet::new(),
                open: Vec::new(),
                closed: Vec::new(),
                next_id: 0,
                firings: 0,
                false_alarms: 0,
            }),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("roads-watchdog".into())
            .spawn(move || {
                let sh = thread_shared;
                // First scheduled tick fires one full interval after
                // start, matching the auditor: an immediate tick would
                // skew manually driven schedules (tick_now with a long
                // interval).
                let mut next = Instant::now() + interval;
                loop {
                    let mut st = sh.state.lock().expect("watchdog state");
                    while !st.stop && Instant::now() < next {
                        let wait = next.saturating_duration_since(Instant::now());
                        let (guard, _) = sh.cv.wait_timeout(st, wait).expect("watchdog state");
                        st = guard;
                    }
                    let stopping = st.stop;
                    drop(st);
                    // One final tick on shutdown: faults injected since
                    // the last scheduled tick must reach the report.
                    sh.tick();
                    if stopping {
                        return;
                    }
                    next += interval;
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// [`Watchdog::start`] wired to an instrumented cluster: the
    /// [`standard_bank`] detector set, the cluster's fault log and tail
    /// sampler, and `roads.watchdog.*` instruments resolved in `reg`.
    pub fn for_cluster(cluster: &RoadsCluster, reg: &Arc<Registry>, cfg: WatchdogConfig) -> Self {
        let (bank, probes) = standard_bank(cluster.network().len(), cfg.interval);
        let metrics = Arc::new(WatchdogMetrics::new(reg, &bank.detector_names()));
        Watchdog::start(
            Arc::clone(reg),
            cluster.fault_log(),
            cluster.tail_sampler().cloned(),
            metrics,
            cfg,
            bank,
            probes,
        )
    }

    /// Run one detection tick right now, outside the schedule
    /// (deterministic tests).
    pub fn tick_now(&self) {
        self.shared.tick();
    }

    /// The pre-resolved `roads.watchdog.*` instruments.
    pub fn metrics(&self) -> Arc<WatchdogMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The report accumulated so far.
    pub fn report(&self) -> IncidentReport {
        let st = self.shared.state.lock().expect("watchdog state");
        self.shared.report_locked(&st)
    }

    /// Stop the background thread and return the final report (written
    /// to [`WatchdogConfig::report_path`] as well, when configured).
    pub fn stop(mut self) -> IncidentReport {
        self.shutdown();
        let report = {
            let st = self.shared.state.lock().expect("watchdog state");
            self.shared.report_locked(&st)
        };
        if let Some(path) = &self.shared.cfg.report_path {
            if report.write(path).is_ok() {
                self.shared.metrics.reports.inc();
            }
        }
        report
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.state.lock().expect("watchdog state").stop = true;
            self.shared.cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_core::ServerId;

    /// A watchdog that only ticks when told to.
    fn quiet(
        reg: &Arc<Registry>,
        log: &Arc<FaultLog>,
        bank: DetectorBank,
        probes: Vec<Probe>,
        cfg: WatchdogConfig,
    ) -> (Watchdog, Arc<WatchdogMetrics>) {
        let metrics = Arc::new(WatchdogMetrics::new(reg, &bank.detector_names()));
        let wd = Watchdog::start(
            Arc::clone(reg),
            Arc::clone(log),
            None,
            Arc::clone(&metrics),
            WatchdogConfig {
                interval: Duration::from_secs(3600),
                ..cfg
            },
            bank,
            probes,
        );
        (wd, metrics)
    }

    #[test]
    fn detects_kill_and_names_the_server() {
        let reg = Arc::new(Registry::new());
        let series = labeled("runtime.server.alive", &[("server", "1")]);
        let alive = reg.gauge(&series);
        alive.set(1);
        let depth = reg.gauge(&labeled("runtime.server.queue_depth", &[("server", "1")]));
        depth.set(7);
        let log = Arc::new(FaultLog::new());
        let mut bank = DetectorBank::new();
        bank.bind(&series, ThresholdRule::below("server-down", 0.5, 1));
        let probes = vec![Probe::Value(series.clone())];
        let (wd, metrics) = quiet(
            &reg,
            &log,
            bank,
            probes,
            WatchdogConfig {
                coalesce: Duration::from_secs(3600),
                ..WatchdogConfig::default()
            },
        );

        wd.tick_now(); // healthy baseline
        assert_eq!(metrics.incidents.get(), 0);

        alive.set(0);
        log.record(ServerId(1), FaultKind::Kill, 1.0);
        wd.tick_now();

        let report = wd.report();
        assert_eq!(report.rows.len(), 1);
        let inc = &report.rows[0];
        assert!(!inc.false_alarm);
        assert_eq!(inc.detectors, vec!["server-down".to_string()]);
        let m = inc.matched.expect("matched fault");
        assert_eq!((m.kind, m.server), (FaultKind::Kill, 1));
        let latency = inc.detection_latency_ms.expect("first detection");
        assert!(latency >= 0.0);
        // Ranked causes: the fault event leads and names the server;
        // the deep queue at the same server rides along in tier 3.
        assert_eq!(inc.causes[0].kind, CauseKind::FaultEvent);
        assert_eq!(inc.causes[0].server, Some(1));
        assert!(inc
            .causes
            .iter()
            .any(|c| c.kind == CauseKind::QueueDepth && c.server == Some(1)));
        assert_eq!(metrics.incidents.get(), 1);
        assert_eq!(metrics.false_alarms.get(), 0);
        assert!(metrics.firing_counter("server-down").unwrap().get() >= 1);
        assert_eq!(metrics.detection_latency_ms.count(), 1);

        // Continued firing coalesces into the same incident instead of
        // opening a second one, and the repeat match records no second
        // detection latency.
        wd.tick_now();
        let report = wd.stop();
        assert_eq!(report.rows.len(), 1);
        assert!(report.rows[0].firings >= 2);
        assert_eq!(metrics.detection_latency_ms.count(), 1);
    }

    #[test]
    fn spike_without_fault_is_a_false_alarm() {
        let reg = Arc::new(Registry::new());
        let load = reg.gauge("load");
        let log = Arc::new(FaultLog::new());
        let mut bank = DetectorBank::new();
        bank.bind("load", EwmaSpikeDetector::new("load-spike", 0.5, 3.0, 1.0));
        let probes = vec![Probe::Value("load".into())];
        let (wd, metrics) = quiet(&reg, &log, bank, probes, WatchdogConfig::default());

        load.set(10);
        for _ in 0..4 {
            wd.tick_now();
        }
        assert_eq!(metrics.incidents.get(), 0);
        load.set(100);
        wd.tick_now();
        let report = wd.stop();
        assert_eq!(report.rows.len(), 1);
        assert!(report.rows[0].false_alarm);
        assert_eq!(report.rows[0].matched, None);
        assert_eq!(report.false_alarms, 1);
        assert_eq!(metrics.false_alarms.get(), 1);
    }

    #[test]
    fn windowed_p99_sees_a_tail_shift_within_one_tick() {
        let reg = Arc::new(Registry::new());
        let lat = reg.histogram("lat");
        let log = Arc::new(FaultLog::new());
        let mut bank = DetectorBank::new();
        bank.bind(
            "lat.p99w",
            EwmaSpikeDetector::new("latency-spike", 0.5, 3.0, 1.0),
        );
        let probes = vec![Probe::WindowP99("lat".into())];
        let (wd, metrics) = quiet(&reg, &log, bank, probes, WatchdogConfig::default());

        for _ in 0..4 {
            for _ in 0..50 {
                lat.record(10.0);
            }
            wd.tick_now();
        }
        assert_eq!(metrics.incidents.get(), 0);
        // 20 slow samples against 200 fast historical ones: the
        // cumulative p99 barely moves, the windowed p99 jumps to the
        // slow bucket immediately.
        for _ in 0..20 {
            lat.record(400.0);
        }
        wd.tick_now();
        let report = wd.stop();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].series, vec!["lat.p99w".to_string()]);
        assert!(report.rows[0].firings >= 1);
    }

    #[test]
    fn rate_probe_feeds_per_tick_deltas() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("ops");
        let log = Arc::new(FaultLog::new());
        let mut bank = DetectorBank::new();
        bank.bind("ops.rate", ThresholdRule::above("ops-surge", 5.0, 1));
        let probes = vec![Probe::Rate("ops".into())];
        let (wd, metrics) = quiet(&reg, &log, bank, probes, WatchdogConfig::default());

        c.add(100);
        wd.tick_now(); // first observation seeds the baseline: delta 0
        assert_eq!(metrics.incidents.get(), 0);
        c.add(3);
        wd.tick_now(); // delta 3 < 5
        assert_eq!(metrics.incidents.get(), 0);
        c.add(10);
        wd.tick_now(); // delta 10 >= 5
        assert_eq!(metrics.incidents.get(), 1);
    }

    #[test]
    fn idle_incident_closes_after_the_coalesce_gap() {
        let reg = Arc::new(Registry::new());
        let series = labeled("runtime.server.alive", &[("server", "0")]);
        let alive = reg.gauge(&series);
        alive.set(1);
        let log = Arc::new(FaultLog::new());
        let mut bank = DetectorBank::new();
        bank.bind(&series, ThresholdRule::below("server-down", 0.5, 1));
        let probes = vec![Probe::Value(series.clone())];
        let (wd, metrics) = quiet(
            &reg,
            &log,
            bank,
            probes,
            WatchdogConfig {
                coalesce: Duration::from_millis(30),
                ..WatchdogConfig::default()
            },
        );

        wd.tick_now();
        alive.set(0);
        log.record(ServerId(0), FaultKind::Kill, 1.0);
        wd.tick_now();
        wd.tick_now(); // immediate re-fire coalesces
        assert_eq!(metrics.incidents.get(), 1);
        assert_eq!(metrics.open_incidents.get(), 1);

        alive.set(1); // recovered: detector stops firing
        log.record(ServerId(0), FaultKind::Restart, 1.0);
        std::thread::sleep(Duration::from_millis(45));
        wd.tick_now(); // idle past the gap: the incident closes
        assert_eq!(metrics.open_incidents.get(), 0);
        let report = wd.stop();
        assert_eq!(report.rows.len(), 1);
        assert!(report.rows[0].firings >= 2);
    }

    #[test]
    fn report_round_trips_and_rejects_corruption() {
        let report = IncidentReport {
            ticks: 12,
            interval_ms: 100.0,
            firings: 5,
            false_alarms: 1,
            rows: vec![
                Incident {
                    id: 1,
                    opened_ms: 250.0,
                    last_ms: 410.0,
                    firings: 4,
                    detectors: vec!["server-down".into(), "latency-spike".into()],
                    series: vec!["runtime.server.alive{server=\"2\"}".into()],
                    causes: vec![
                        SuspectedCause {
                            kind: CauseKind::FaultEvent,
                            server: Some(2),
                            score: 0.9,
                            detail: "kill of server 2 110 ms before detection".into(),
                        },
                        SuspectedCause {
                            kind: CauseKind::AuditDivergence,
                            server: None,
                            score: 0.01,
                            detail: "overlay divergence 10000 ppm".into(),
                        },
                    ],
                    matched: Some(MatchedFault {
                        kind: FaultKind::Kill,
                        server: 2,
                        onset_ms: 140.0,
                    }),
                    detection_latency_ms: Some(110.0),
                    false_alarm: false,
                    slow_queries: vec![7, 9],
                },
                Incident {
                    id: 2,
                    opened_ms: 900.0,
                    last_ms: 900.0,
                    firings: 1,
                    detectors: vec!["slo-burn".into()],
                    series: vec!["watchdog.slo_burn".into()],
                    causes: Vec::new(),
                    matched: None,
                    detection_latency_ms: None,
                    false_alarm: true,
                    slow_queries: Vec::new(),
                },
            ],
        };
        let doc = report.to_json();
        assert!(is_incidents_doc(&doc));
        assert_eq!(IncidentReport::from_json(&doc).unwrap(), report);
        assert_eq!(report.matched(), 1);
        assert_eq!(report.max_detection_latency_ms(), Some(110.0));

        // Wrong marker.
        let err =
            IncidentReport::from_json(&Json::obj(vec![("audit", Json::num(1.0))])).unwrap_err();
        assert!(err.contains("marker"), "{err}");

        // Top-level field dropped.
        let Json::Obj(mut pairs) = doc.clone() else {
            panic!("object doc")
        };
        pairs.retain(|(k, _)| k != "firings");
        let err = IncidentReport::from_json(&Json::Obj(pairs)).unwrap_err();
        assert!(err.contains("firings"), "{err}");

        // Row field dropped: the error names the row and the field.
        let Json::Obj(mut pairs) = doc.clone() else {
            panic!("object doc")
        };
        for (k, v) in &mut pairs {
            if k == "rows" {
                let Json::Arr(rows) = v else {
                    panic!("rows array")
                };
                let Json::Obj(row) = &mut rows[0] else {
                    panic!("row object")
                };
                row.retain(|(k, _)| k != "opened_ms");
            }
        }
        let err = IncidentReport::from_json(&Json::Obj(pairs)).unwrap_err();
        assert!(
            err.contains("rows[0]") && err.contains("opened_ms"),
            "{err}"
        );

        // Unknown cause kind.
        let Json::Obj(mut pairs) = doc.clone() else {
            panic!("object doc")
        };
        for (k, v) in &mut pairs {
            if k == "rows" {
                let Json::Arr(rows) = v else {
                    panic!("rows array")
                };
                let Json::Obj(row) = &mut rows[0] else {
                    panic!("row object")
                };
                for (rk, rv) in row {
                    if rk == "causes" {
                        let Json::Arr(causes) = rv else {
                            panic!("causes array")
                        };
                        let Json::Obj(cause) = &mut causes[0] else {
                            panic!("cause object")
                        };
                        for (ck, cv) in cause {
                            if ck == "kind" {
                                *cv = Json::str("gremlins");
                            }
                        }
                    }
                }
            }
        }
        let err = IncidentReport::from_json(&Json::Obj(pairs)).unwrap_err();
        assert!(err.contains("kind"), "{err}");
    }

    #[test]
    fn standard_bank_covers_liveness_latency_and_burn() {
        let (bank, probes) = standard_bank(3, Duration::from_millis(100));
        let names = bank.detector_names();
        assert!(names.iter().any(|n| n == "server-down"));
        assert!(names.iter().any(|n| n == "latency-spike"));
        assert!(names.iter().any(|n| n == "slo-burn"));
        // One liveness binding per server plus the two cluster-wide ones.
        assert_eq!(bank.len(), 5);
        assert_eq!(probes.len(), 5);
    }

    /// Scheduled ticks, `tick_now` hammering, registry writers and
    /// exposition renders all race on the same shared state; the final
    /// report and instruments must come out coherent.
    #[test]
    fn ticks_race_with_writers_and_scrapes() {
        use roads_telemetry::OpenMetricsSnapshot;
        use std::sync::atomic::{AtomicBool, Ordering};

        let reg = Arc::new(Registry::new());
        let log = Arc::new(FaultLog::new());
        let (bank, probes) = standard_bank(2, Duration::from_millis(1));
        let metrics = Arc::new(WatchdogMetrics::new(&reg, &bank.detector_names()));
        let wd = Watchdog::start(
            Arc::clone(&reg),
            Arc::clone(&log),
            None,
            Arc::clone(&metrics),
            WatchdogConfig {
                interval: Duration::from_millis(1),
                ..WatchdogConfig::default()
            },
            bank,
            probes,
        );

        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let q = reg.counter("runtime.queries");
                    let h = reg.histogram("runtime.query_response_ms");
                    let mut v = 5.0;
                    while !stop.load(Ordering::Relaxed) {
                        q.inc();
                        h.record(v);
                        v = if v > 8.0 { 5.0 } else { v + 0.01 };
                    }
                })
            })
            .collect();

        for i in 0..200u64 {
            wd.tick_now();
            if i.is_multiple_of(20) {
                // Exposition renders concurrently with detector ticks.
                let _ = OpenMetricsSnapshot::from_registry(&reg).render();
                let _ = wd.report();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let report = wd.stop();
        // 200 manual + however many scheduled ticks landed in between;
        // the counter and the report must agree.
        assert!(report.ticks >= 200, "lost ticks: {}", report.ticks);
        assert_eq!(metrics.ticks.get(), report.ticks);
        assert_eq!(
            report.rows.iter().map(|i| i.firings).sum::<u64>(),
            report.firings,
            "incident firing counts must sum to the report total"
        );
    }
}
