//! Prototype runtime configuration.

/// Tunables of the threaded prototype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Emulated backend cost to retrieve one matching record, in
    /// microseconds.
    ///
    /// Calibration note: the paper's servers query a DB2 database over JDBC
    /// holding 200K × 120-attribute records; result retrieval there costs
    /// milliseconds per row once result sets grow. 2.5 ms/row puts the
    /// prototype in the paper's regime (central ≈ 5–6 s at 3 % selectivity
    /// over ~160K records, ROADS ≈ 1 s below 0.3 %).
    pub per_record_retrieval_us: u64,
    /// Fixed per-query backend cost (index lookup / query planning), µs.
    pub base_query_cost_us: u64,
    /// Result-return bandwidth per server link, in megabits per second.
    pub bandwidth_mbps: f64,
    /// Scale factor applied to delay-space latencies (1.0 = as synthesized;
    /// tests use small factors to stay fast).
    pub delay_scale: f64,
}

impl RuntimeConfig {
    /// Calibration matching the paper's testbed regime.
    pub fn paper_like() -> Self {
        RuntimeConfig {
            per_record_retrieval_us: 2_500,
            base_query_cost_us: 20_000,
            bandwidth_mbps: 100.0,
            delay_scale: 1.0,
        }
    }

    /// Fast settings for unit tests: microsecond-scale costs, compressed
    /// network delays.
    pub fn test_fast() -> Self {
        RuntimeConfig {
            per_record_retrieval_us: 200,
            base_query_cost_us: 500,
            bandwidth_mbps: 1_000.0,
            delay_scale: 0.05,
        }
    }

    /// Time to push `bytes` through one server link, in microseconds.
    pub fn transfer_us(&self, bytes: usize) -> u64 {
        ((bytes as f64 * 8.0) / self.bandwidth_mbps.max(1e-9)) as u64
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time() {
        let cfg = RuntimeConfig {
            bandwidth_mbps: 8.0,
            ..RuntimeConfig::paper_like()
        };
        // 8 Mbps = 1 byte/µs.
        assert_eq!(cfg.transfer_us(1_000), 1_000);
    }

    #[test]
    fn presets_sane() {
        let p = RuntimeConfig::paper_like();
        let t = RuntimeConfig::test_fast();
        assert!(p.per_record_retrieval_us > t.per_record_retrieval_us);
        assert!(t.delay_scale < p.delay_scale);
    }
}
