//! Prototype runtime configuration.

/// Tunables of the threaded prototype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Emulated backend cost to retrieve one matching record, in
    /// microseconds.
    ///
    /// Calibration note: the paper's servers query a DB2 database over JDBC
    /// holding 200K × 120-attribute records; result retrieval there costs
    /// milliseconds per row once result sets grow. 2.5 ms/row puts the
    /// prototype in the paper's regime (central ≈ 5–6 s at 3 % selectivity
    /// over ~160K records, ROADS ≈ 1 s below 0.3 %).
    pub per_record_retrieval_us: u64,
    /// Fixed per-query backend cost (index lookup / query planning), µs.
    pub base_query_cost_us: u64,
    /// Result-return bandwidth per server link, in megabits per second.
    pub bandwidth_mbps: f64,
    /// Scale factor applied to delay-space latencies (1.0 = as synthesized;
    /// tests use small factors to stay fast).
    pub delay_scale: f64,
    /// Wall-clock budget for one whole query, in milliseconds. When the
    /// deadline passes the client stops waiting, marks every still-pending
    /// server failed and returns what it has with `complete = false`.
    /// `0` disables the deadline (a dead server can then stall the client
    /// indefinitely — only use 0 in controlled experiments).
    pub query_deadline_ms: u64,
    /// Per-dispatch timeout in milliseconds, measured at the client from
    /// handing the sub-query to the dispatcher until its reply lands (so it
    /// must cover both one-way delays plus the server's retrieval time).
    /// On expiry the dispatch is retried and eventually failed over.
    /// `0` disables per-dispatch timeouts.
    pub dispatch_timeout_ms: u64,
    /// Re-dispatch attempts per target after the first try, before the
    /// target is declared failed and failover kicks in.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based): `backoff_base_ms << (k - 1)`
    /// milliseconds, i.e. exponential doubling from this base.
    pub backoff_base_ms: u64,
    /// Worker threads in the bounded dispatcher pool that executes timed
    /// message deliveries (requests out, replies back). Clamped to ≥ 1.
    pub dispatcher_threads: usize,
    /// Route around dead `Branch` servers via the replication overlay
    /// (§III-C): re-dispatch the subtree query through a sibling replica.
    /// Disable to measure the availability the overlay buys (fig13).
    pub enable_failover: bool,
    /// Maximum queries in flight at once across all client threads. The
    /// shared dispatcher pool and per-server mailboxes are safe at any
    /// concurrency, but unbounded admission lets a burst of clients queue
    /// arbitrary work behind every mailbox; past this limit `query_as`
    /// blocks until a slot frees. `0` disables admission control.
    pub max_inflight_queries: usize,
    /// Response-time SLO in milliseconds: on an instrumented cluster,
    /// queries slower than this bump the `runtime.slo_violations` burn
    /// counter (the query itself is unaffected — unlike the deadline,
    /// an SLO miss changes nothing about execution). `0` disables the
    /// counter.
    pub slo_response_ms: u64,
    /// Plan queries with the replica-aware set-cover planner
    /// (`roads_core::planner`) and dispatch the planned contacts as one
    /// batch from the entry, instead of greedy hop-by-hop overlay
    /// expansion. Off by default: greedy remains the reference path, and
    /// experiments opt in (fig17).
    pub enable_planner: bool,
    /// TTL of the per-entry result cache, in update-round epochs: a result
    /// cached at epoch `e` is replayed while `current − e <` this value,
    /// and [`RoadsCluster::advance_cache_round`](crate::RoadsCluster)
    /// purges aged entries. `0` disables the cache (the default).
    pub cache_ttl_rounds: u64,
}

impl RuntimeConfig {
    /// Calibration matching the paper's testbed regime.
    pub fn paper_like() -> Self {
        RuntimeConfig {
            per_record_retrieval_us: 2_500,
            base_query_cost_us: 20_000,
            bandwidth_mbps: 100.0,
            delay_scale: 1.0,
            query_deadline_ms: 60_000,
            dispatch_timeout_ms: 10_000,
            max_retries: 2,
            backoff_base_ms: 100,
            dispatcher_threads: 4,
            enable_failover: true,
            max_inflight_queries: 64,
            slo_response_ms: 10_000,
            enable_planner: false,
            cache_ttl_rounds: 0,
        }
    }

    /// Fast settings for unit tests: microsecond-scale costs, compressed
    /// network delays.
    pub fn test_fast() -> Self {
        RuntimeConfig {
            per_record_retrieval_us: 200,
            base_query_cost_us: 500,
            bandwidth_mbps: 1_000.0,
            delay_scale: 0.05,
            query_deadline_ms: 10_000,
            dispatch_timeout_ms: 2_000,
            max_retries: 2,
            backoff_base_ms: 10,
            dispatcher_threads: 2,
            enable_failover: true,
            max_inflight_queries: 16,
            slo_response_ms: 5_000,
            enable_planner: false,
            cache_ttl_rounds: 0,
        }
    }

    /// [`RuntimeConfig::test_fast`] tuned for fault-injection: short
    /// per-dispatch timeouts so dead servers are detected in milliseconds,
    /// one retry, failover on.
    pub fn test_faulty() -> Self {
        RuntimeConfig {
            dispatch_timeout_ms: 250,
            max_retries: 1,
            backoff_base_ms: 5,
            query_deadline_ms: 8_000,
            ..Self::test_fast()
        }
    }

    /// Time to push `bytes` through one server link, in microseconds.
    pub fn transfer_us(&self, bytes: usize) -> u64 {
        ((bytes as f64 * 8.0) / self.bandwidth_mbps.max(1e-9)) as u64
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time() {
        let cfg = RuntimeConfig {
            bandwidth_mbps: 8.0,
            ..RuntimeConfig::paper_like()
        };
        // 8 Mbps = 1 byte/µs.
        assert_eq!(cfg.transfer_us(1_000), 1_000);
    }

    #[test]
    fn presets_sane() {
        let p = RuntimeConfig::paper_like();
        let t = RuntimeConfig::test_fast();
        assert!(p.per_record_retrieval_us > t.per_record_retrieval_us);
        assert!(t.delay_scale < p.delay_scale);
    }

    #[test]
    fn fault_presets_bound_every_wait() {
        for cfg in [
            RuntimeConfig::paper_like(),
            RuntimeConfig::test_fast(),
            RuntimeConfig::test_faulty(),
        ] {
            assert!(cfg.query_deadline_ms > 0, "deadline must be on by default");
            assert!(cfg.dispatch_timeout_ms > 0);
            assert!(cfg.dispatch_timeout_ms < cfg.query_deadline_ms);
            assert!(cfg.dispatcher_threads >= 1);
            assert!(cfg.enable_failover);
            assert!(
                cfg.max_inflight_queries >= 1,
                "admission control on by default"
            );
            assert!(cfg.slo_response_ms > 0, "SLO burn counter on by default");
            assert!(
                cfg.slo_response_ms <= cfg.query_deadline_ms,
                "an SLO beyond the deadline could never fire"
            );
            assert!(
                !cfg.enable_planner && cfg.cache_ttl_rounds == 0,
                "planner and cache are opt-in; greedy is the reference path"
            );
        }
    }
}
