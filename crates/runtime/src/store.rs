//! Indexed in-memory record store — the DB2+JDBC stand-in.
//!
//! Each ROADS prototype server "maintains a DB2 database to emulate the
//! attached resource stores, and uses JDBC … to query this database for
//! specific resource records or to generate summaries". This store provides
//! the same two operations — exact multi-attribute search and summary
//! generation — over column indexes: a sorted index per ordered attribute
//! and a hash index per categorical attribute.

use roads_records::{AttrType, Predicate, Query, Record, Schema};
use roads_summary::{Summary, SummaryConfig};
use std::collections::HashMap;

/// Column-indexed record store.
#[derive(Debug, Clone)]
pub struct RecordStore {
    schema: Schema,
    records: Vec<Record>,
    /// Per ordered attribute: `(value, row)` sorted by value.
    numeric_idx: Vec<Vec<(f64, u32)>>,
    /// Per categorical attribute: value → rows.
    cat_idx: Vec<HashMap<String, Vec<u32>>>,
}

impl RecordStore {
    /// Build the store and its indexes.
    pub fn new(schema: Schema, records: Vec<Record>) -> Self {
        let arity = schema.len();
        let mut numeric_idx: Vec<Vec<(f64, u32)>> = vec![Vec::new(); arity];
        let mut cat_idx: Vec<HashMap<String, Vec<u32>>> = vec![HashMap::new(); arity];
        for (row, rec) in records.iter().enumerate() {
            for (attr, def) in schema.iter() {
                let v = rec.get(attr);
                match def.ty {
                    AttrType::Categorical | AttrType::Text => {
                        if let Some(s) = v.as_str() {
                            cat_idx[attr.index()]
                                .entry(s.to_owned())
                                .or_default()
                                .push(row as u32);
                        }
                    }
                    _ => {
                        if let Some(f) = v.as_f64() {
                            numeric_idx[attr.index()].push((f, row as u32));
                        }
                    }
                }
            }
        }
        for idx in &mut numeric_idx {
            idx.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite attribute values"));
        }
        RecordStore {
            schema,
            records,
            numeric_idx,
            cat_idx,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All stored records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Candidate rows for one predicate via the indexes; `None` means the
    /// predicate cannot be served by an index (full scan required).
    fn candidates(&self, pred: &Predicate) -> Option<Vec<u32>> {
        match pred {
            Predicate::Range { attr, lo, hi } => {
                let idx = &self.numeric_idx[attr.index()];
                if idx.is_empty() && !self.records.is_empty() {
                    return None; // unindexed (categorical attr queried by range)
                }
                let start = idx.partition_point(|&(v, _)| v < *lo);
                let end = idx.partition_point(|&(v, _)| v <= *hi);
                Some(idx[start..end].iter().map(|&(_, r)| r).collect())
            }
            Predicate::Eq { attr, value } => {
                if let Some(s) = value.as_str() {
                    Some(
                        self.cat_idx[attr.index()]
                            .get(s)
                            .cloned()
                            .unwrap_or_default(),
                    )
                } else {
                    value.as_f64().map(|f| {
                        let idx = &self.numeric_idx[attr.index()];
                        let start = idx.partition_point(|&(v, _)| v < f);
                        let end = idx.partition_point(|&(v, _)| v <= f);
                        idx[start..end].iter().map(|&(_, r)| r).collect()
                    })
                }
            }
            Predicate::OneOf { attr, values } => {
                let mut rows: Vec<u32> = values
                    .iter()
                    .flat_map(|v| {
                        self.cat_idx[attr.index()]
                            .get(v)
                            .into_iter()
                            .flatten()
                            .copied()
                    })
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                Some(rows)
            }
        }
    }

    /// Exact search: serve the most selective predicate from an index, then
    /// filter candidates against the full query. Falls back to a full scan
    /// for index-less queries.
    pub fn search(&self, query: &Query) -> Vec<&Record> {
        let best = query
            .predicates()
            .iter()
            .filter_map(|p| self.candidates(p))
            .min_by_key(Vec::len);
        match best {
            Some(rows) => rows
                .into_iter()
                .map(|r| &self.records[r as usize])
                .filter(|rec| query.matches(rec))
                .collect(),
            None => self.records.iter().filter(|r| query.matches(r)).collect(),
        }
    }

    /// Number of matching records without materializing them.
    pub fn count(&self, query: &Query) -> usize {
        self.search(query).len()
    }

    /// Generate the store's summary (the owner-export operation).
    pub fn summary(&self, config: &SummaryConfig) -> Summary {
        Summary::from_records(&self.schema, config, &self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roads_records::{AttrDef, OwnerId, QueryBuilder, QueryId, RecordBuilder, RecordId};

    fn mixed_schema() -> Schema {
        Schema::new(vec![
            AttrDef::categorical("type"),
            AttrDef::numeric("rate", 0.0, 1000.0),
            AttrDef::integer("priority", 0, 10),
        ])
        .unwrap()
    }

    fn store(n: usize) -> RecordStore {
        let schema = mixed_schema();
        let records = (0..n)
            .map(|i| {
                RecordBuilder::new(&schema, RecordId(i as u64), OwnerId(0))
                    .set("type", if i % 3 == 0 { "camera" } else { "sensor" })
                    .set("rate", (i as f64 * 10.0) % 1000.0)
                    .set("priority", (i % 10) as i64)
                    .build()
                    .unwrap()
            })
            .collect();
        RecordStore::new(schema, records)
    }

    #[test]
    fn search_matches_full_scan() {
        let s = store(300);
        let q = QueryBuilder::new(s.schema(), QueryId(1))
            .eq("type", "camera")
            .range("rate", 100.0, 500.0)
            .build();
        let indexed: Vec<_> = s.search(&q).iter().map(|r| r.id).collect();
        let scan: Vec<_> = s
            .records()
            .iter()
            .filter(|r| q.matches(r))
            .map(|r| r.id)
            .collect();
        assert_eq!(indexed, scan);
        assert!(!indexed.is_empty());
    }

    #[test]
    fn integer_index_range() {
        let s = store(100);
        let q = QueryBuilder::new(s.schema(), QueryId(2))
            .range("priority", 8.0, 10.0)
            .build();
        let hits = s.search(&q);
        assert_eq!(hits.len(), 20, "priorities 8 and 9 of 0..10 cycling");
    }

    #[test]
    fn eq_on_missing_value_empty() {
        let s = store(50);
        let q = QueryBuilder::new(s.schema(), QueryId(3))
            .eq("type", "drone")
            .build();
        assert!(s.search(&q).is_empty());
    }

    #[test]
    fn one_of_index() {
        let s = store(90);
        let q = QueryBuilder::new(s.schema(), QueryId(4))
            .one_of("type", &["camera", "drone"])
            .build();
        assert_eq!(s.search(&q).len(), 30);
    }

    #[test]
    fn empty_query_returns_everything() {
        let s = store(10);
        let q = roads_records::Query::new(QueryId(5), vec![]);
        assert_eq!(s.search(&q).len(), 10);
    }

    #[test]
    fn summary_round_trip() {
        let s = store(60);
        let cfg = SummaryConfig::with_buckets(64);
        let sum = s.summary(&cfg);
        assert_eq!(sum.record_count(), 60);
        let q = QueryBuilder::new(s.schema(), QueryId(6))
            .eq("type", "camera")
            .build();
        assert!(sum.may_match(&q));
    }

    #[test]
    fn empty_store() {
        let s = RecordStore::new(mixed_schema(), Vec::new());
        assert!(s.is_empty());
        let q = QueryBuilder::new(s.schema(), QueryId(7))
            .eq("type", "x")
            .build();
        assert!(s.search(&q).is_empty());
    }
}
