//! Threaded prototype runtime (§V, "Prototype Benchmarking").
//!
//! The paper benchmarks a Java prototype on a Xeon cluster where every
//! server fronts a DB2 database of 200K records and the measured metric is
//! *total response time*: "the time for a client to receive all matching
//! records after it sends out a query", including server-side retrieval —
//! the part "difficult to simulate or analyze because it may involve a
//! backend database".
//!
//! This crate reproduces that setup with real concurrency:
//!
//! * [`store::RecordStore`] — an indexed in-memory record store standing in
//!   for DB2+JDBC, with a calibrated per-record retrieval cost (see
//!   [`RuntimeConfig::per_record_retrieval_us`]) so retrieval dominates at
//!   high selectivity exactly as in the paper's testbed.
//! * [`cluster::RoadsCluster`] — one OS thread per ROADS server, crossbeam
//!   channels as the network, delay-space latencies applied per message;
//!   the client drives the redirect protocol and gathers records from
//!   matching servers **in parallel**.
//! * [`central::CentralCluster`] — the single-server baseline: one round
//!   trip, but serial retrieval of every matching record.
//! * `faults` — the fault-tolerant query plane: a bounded dispatcher
//!   pool delivers timed messages, per-dispatch timeouts trigger bounded
//!   retry with exponential backoff, and dead branches are routed around
//!   via the replication overlay (§III-C). [`cluster::RoadsCluster`]
//!   exposes `kill_server`/`restart_server` for live fault injection and
//!   reports `complete`/`failed_servers`/`retries` per query.
//! * [`health`] — the live observability plane: an instrumented cluster
//!   ([`RoadsCluster::start_instrumented`]) maintains per-server mailbox
//!   queue-depth and liveness gauges, per-mode and per-server dispatch
//!   latency histograms, deadline-miss/SLO-burn counters and labeled
//!   `runtime.fault_events` series, all scrapeable as OpenMetrics text
//!   via `roads_telemetry::OpenMetricsSnapshot` and summarized by
//!   [`RoadsCluster::health`] into a [`ClusterHealth`] table.
//! * [`audit`] — the summary-fidelity audit plane: a background
//!   [`audit::Auditor`] thread samples ground truth on a budget against a
//!   `roads_core` replica ledger, folds live branch-dispatch outcomes from
//!   real queries into per-level FP/FN counters, exports everything as
//!   `audit.*` OpenMetrics families and writes a periodic `AUDIT.json`
//!   artifact ([`audit::AuditReport`]).
//! * [`watchdog`] — the incident plane: a background
//!   [`watchdog::Watchdog`] thread runs online anomaly detectors
//!   (`roads_telemetry::detect`) over live registry series each tick,
//!   coalesces firings into [`watchdog::Incident`]s, correlates them
//!   with injected fault events / audit divergence / queue-depth
//!   locality into a ranked suspected-cause list, exports
//!   `roads.watchdog.*` OpenMetrics and writes the `INCIDENTS.json`
//!   artifact ([`watchdog::IncidentReport`]). `kill_server` has a
//!   non-lethal sibling, `slow_server`, which multiplies a straggler's
//!   compute and delivery delays to exercise the detectors.
//!
//! Fig. 11's crossover — the central repository wins at low selectivity
//! (fewer round trips), ROADS catches up and wins as selectivity grows
//! (parallel retrieval across servers) — emerges from these mechanics.
//! Fig. 13 (availability under crashes) exercises the fault plane.

pub mod audit;
pub mod central;
pub mod cluster;
pub mod config;
pub(crate) mod faults;
pub mod health;
pub mod store;
pub mod watchdog;

pub use audit::{
    is_audit_doc, AuditConfig, AuditLevelRow, AuditMetrics, AuditReport, Auditor, Liveness,
};
pub use central::CentralCluster;
pub use cluster::{ContactMode, RoadsCluster, RuntimeOutcome};
pub use config::RuntimeConfig;
pub use health::{ClusterHealth, FaultEvent, FaultKind, FaultLog, ServerHealth};
pub use store::RecordStore;
pub use watchdog::{
    is_incidents_doc, standard_bank, CauseKind, Incident, IncidentReport, MatchedFault, Probe,
    SuspectedCause, Watchdog, WatchdogConfig, WatchdogMetrics,
};
