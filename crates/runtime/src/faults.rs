//! Fault-tolerance machinery for the live query plane.
//!
//! Three pieces, all used by [`crate::cluster::RoadsCluster`]:
//!
//! * [`Dispatcher`] — a timer thread plus a bounded worker pool that
//!   delivers timed messages (requests after the outbound delay, replies
//!   after the return delay, retries after backoff). It replaces the old
//!   one-OS-thread-per-contacted-server dispatch: however wide a query
//!   fans out, the cluster runs a fixed number of dispatcher threads.
//! * [`VisitLedger`] — mode-aware dispatch deduplication. A server visited
//!   in a narrow mode (`LocalOnly` ancestor probe) can later be re-visited
//!   in a strictly wider mode (`Branch`); the old set-based dedup silently
//!   dropped the wider visit and with it the server's unexpanded children.
//!   Overlay failover visits dedup per `(helper, dead server)` pair so one
//!   helper can route around several dead siblings.
//! * [`backoff_delay`] — the bounded exponential retry backoff.

use crate::cluster::{ContactMode, DispatchJob};
use parking_lot::Mutex;
use roads_core::ServerId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Exponential backoff before retry `tries + 1` of a dispatch: the base
/// doubles per prior attempt, with the shift capped so large retry counts
/// cannot overflow into a zero delay.
pub(crate) fn backoff_delay(base_ms: u64, tries: u32) -> Duration {
    Duration::from_millis(base_ms.saturating_mul(1u64 << tries.min(16)))
}

enum TimerCmd {
    /// Run `job` no earlier than the given instant.
    Schedule(Instant, DispatchJob),
    Shutdown,
}

/// Cloneable handle for scheduling work on a [`Dispatcher`]; held by the
/// cluster and embedded in every in-flight reply path. Sends after the
/// dispatcher shut down are silently dropped (the cluster is going away).
#[derive(Clone)]
pub(crate) struct DispatchHandle {
    cmd_tx: Sender<TimerCmd>,
}

impl DispatchHandle {
    /// Schedule `job` to run at `due`.
    pub(crate) fn schedule(&self, due: Instant, job: DispatchJob) {
        let _ = self.cmd_tx.send(TimerCmd::Schedule(due, job));
    }

    /// Schedule `job` after `delay` from now.
    pub(crate) fn schedule_after(&self, delay: Duration, job: DispatchJob) {
        self.schedule(Instant::now() + delay, job);
    }
}

/// Heap entry ordered by due time, FIFO within a tick.
struct Timed {
    due: Instant,
    seq: u64,
    job: DispatchJob,
}

impl PartialEq for Timed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Timer thread + bounded worker pool executing timed [`DispatchJob`]s.
pub(crate) struct Dispatcher {
    handle: DispatchHandle,
    timer: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Dispatcher {
    /// Start the timer thread and `workers.max(1)` pool workers.
    pub(crate) fn start(workers: usize) -> Self {
        let (cmd_tx, cmd_rx) = unbounded::<TimerCmd>();
        let (job_tx, job_rx) = unbounded::<DispatchJob>();
        let timer = thread::Builder::new()
            .name("roads-dispatch-timer".into())
            .spawn(move || {
                let mut heap: BinaryHeap<Reverse<Timed>> = BinaryHeap::new();
                let mut seq = 0u64;
                loop {
                    // Fire everything that has matured.
                    let now = Instant::now();
                    while heap.peek().is_some_and(|Reverse(t)| t.due <= now) {
                        let Reverse(t) = heap.pop().expect("peeked");
                        let _ = job_tx.send(t.job);
                    }
                    // Sleep until the next job matures or a command lands.
                    let cmd = match heap.peek() {
                        Some(Reverse(next)) => {
                            let wait = next.due.saturating_duration_since(Instant::now());
                            match cmd_rx.recv_timeout(wait) {
                                Ok(cmd) => cmd,
                                Err(RecvTimeoutError::Timeout) => continue,
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                        None => match cmd_rx.recv() {
                            Ok(cmd) => cmd,
                            Err(_) => break,
                        },
                    };
                    match cmd {
                        TimerCmd::Schedule(due, job) => {
                            heap.push(Reverse(Timed { due, seq, job }));
                            seq += 1;
                        }
                        TimerCmd::Shutdown => break,
                    }
                }
                // job_tx drops here; idle workers drain and exit.
            })
            .expect("spawn dispatch timer");
        // The channel receiver is single-consumer; workers share it behind
        // a mutex, each blocking in recv() while holding it — the lock is
        // released between dequeue and job execution, so jobs still spread
        // across the pool.
        let job_rx: Arc<Mutex<Receiver<DispatchJob>>> = Arc::new(Mutex::new(job_rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let job_rx = Arc::clone(&job_rx);
                thread::Builder::new()
                    .name(format!("roads-dispatch-{i}"))
                    .spawn(move || loop {
                        let job = job_rx.lock().recv();
                        match job {
                            Ok(job) => job.run(),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn dispatch worker")
            })
            .collect();
        Dispatcher {
            handle: DispatchHandle { cmd_tx },
            timer: Some(timer),
            workers,
        }
    }

    /// The scheduling handle.
    pub(crate) fn handle(&self) -> &DispatchHandle {
        &self.handle
    }

    /// Stop the timer and drain the pool. Jobs not yet matured are
    /// discarded; jobs already handed to workers finish.
    pub(crate) fn shutdown(&mut self) {
        let _ = self.handle.cmd_tx.send(TimerCmd::Shutdown);
        if let Some(t) = self.timer.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Widening order of the redirect modes: an ancestor probe searches only
/// local data, a branch visit additionally expands children, an entry
/// visit additionally consults the replication overlay.
pub(crate) fn mode_rank(mode: ContactMode) -> u8 {
    match mode {
        ContactMode::LocalOnly => 0,
        ContactMode::Branch => 1,
        ContactMode::Entry => 2,
        ContactMode::Failover { .. } => unreachable!("failover visits dedup separately"),
    }
}

/// Mode-aware visited bookkeeping for one query's dispatch tree.
#[derive(Default)]
pub(crate) struct VisitLedger {
    visited: HashMap<ServerId, u8>,
    failover: HashSet<(ServerId, ServerId)>,
}

impl VisitLedger {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Whether a dispatch of `target` in `mode` should go out. Repeat
    /// visits are admitted only when `mode` is strictly wider than every
    /// prior visit (the mode *upgrade*: a `LocalOnly`-probed server later
    /// found to gate a matching branch must still expand its children).
    /// `Failover` visits are routing-only and tracked per
    /// `(target, dead server)` pair, independent of the widening ladder.
    pub(crate) fn admit(&mut self, target: ServerId, mode: ContactMode) -> bool {
        if let ContactMode::Failover { dead } = mode {
            return self.failover.insert((target, dead));
        }
        let rank = mode_rank(mode);
        match self.visited.get_mut(&target) {
            Some(prev) if *prev >= rank => false,
            Some(prev) => {
                *prev = rank;
                true
            }
            None => {
                self.visited.insert(target, rank);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    const S: fn(u32) -> ServerId = ServerId;

    #[test]
    fn ledger_admits_mode_upgrade_not_downgrade() {
        let mut l = VisitLedger::new();
        assert!(l.admit(S(3), ContactMode::LocalOnly));
        // Regression (mode-insensitive dedup): the same server targeted as
        // Branch after a LocalOnly ancestor probe must be re-dispatched,
        // otherwise its children are never expanded and records are lost.
        assert!(l.admit(S(3), ContactMode::Branch));
        assert!(!l.admit(S(3), ContactMode::Branch), "same mode dedups");
        assert!(!l.admit(S(3), ContactMode::LocalOnly), "downgrade dedups");
        assert!(l.admit(S(3), ContactMode::Entry), "entry is widest");
    }

    #[test]
    fn ledger_entry_covers_narrower_modes() {
        let mut l = VisitLedger::new();
        assert!(l.admit(S(0), ContactMode::Entry));
        assert!(!l.admit(S(0), ContactMode::Branch));
        assert!(!l.admit(S(0), ContactMode::LocalOnly));
    }

    #[test]
    fn ledger_failover_visits_track_per_dead_server() {
        let mut l = VisitLedger::new();
        assert!(l.admit(S(1), ContactMode::LocalOnly));
        // A visited server can still act as failover helper...
        assert!(l.admit(S(1), ContactMode::Failover { dead: S(7) }));
        // ...once per dead sibling...
        assert!(!l.admit(S(1), ContactMode::Failover { dead: S(7) }));
        assert!(l.admit(S(1), ContactMode::Failover { dead: S(8) }));
        // ...without consuming its widening ladder.
        assert!(l.admit(S(1), ContactMode::Branch));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        assert_eq!(backoff_delay(10, 0), Duration::from_millis(10));
        assert_eq!(backoff_delay(10, 1), Duration::from_millis(20));
        assert_eq!(backoff_delay(10, 3), Duration::from_millis(80));
        assert!(backoff_delay(u64::MAX, 40) >= Duration::from_millis(u64::MAX / 2));
    }

    #[test]
    fn dispatcher_runs_jobs_in_due_order() {
        let mut d = Dispatcher::start(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let now = Instant::now();
        for (tag, off_ms) in [(1u64, 30u64), (2, 5), (3, 15)] {
            let order = Arc::clone(&order);
            d.handle().schedule(
                now + Duration::from_millis(off_ms),
                DispatchJob::test_probe(move || order.lock().push(tag)),
            );
        }
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(&*order.lock(), &[2, 3, 1]);
        d.shutdown();
    }

    #[test]
    fn dispatcher_shutdown_discards_unmatured_jobs() {
        let mut d = Dispatcher::start(1);
        let ran = Arc::new(Mutex::new(false));
        {
            let ran = Arc::clone(&ran);
            d.handle().schedule_after(
                Duration::from_secs(60),
                DispatchJob::test_probe(move || *ran.lock() = true),
            );
        }
        d.shutdown();
        assert!(!*ran.lock());
        // Scheduling after shutdown is a silent no-op.
        d.handle()
            .schedule_after(Duration::ZERO, DispatchJob::test_probe(|| {}));
    }
}
