#!/bin/bash
# Regenerate every table and figure of the paper.
# Usage: ./run_all_figures.sh [--quick] [--runs N]
#
# Each binary writes two artifacts under results/ (override the directory
# with ROADS_RESULTS_DIR):
#   results/<name>.txt   the rendered console table/chart
#   results/<name>.json  machine-readable export: series, measured-vs-paper
#                        reference points, telemetry snapshot (counters +
#                        latency percentiles incl. p99), query traces
set -u
ARGS="${@:-}"
mkdir -p "${ROADS_RESULTS_DIR:-results}"
BINS="table_analysis table1_storage fig3_latency_vs_nodes fig4_update_vs_nodes \
fig5_query_vs_nodes fig6_latency_vs_dims fig7_query_vs_dims fig8_update_vs_records \
fig9_latency_vs_overlap fig10_latency_vs_degree fig11_prototype_response \
fig_ablation_overlay fig_ablation_buckets fig_ablation_join fig_ablation_churn fig_ablation_scope"
cargo build --release -q -p roads-bench
OUT="${ROADS_RESULTS_DIR:-results}"
for bin in $BINS; do
  echo "=== $bin ==="
  ./target/release/$bin $ARGS | tee "$OUT/$bin.txt"
done
