#!/bin/bash
# Regenerate every table and figure of the paper.
# Usage: ./run_all_figures.sh [--quick] [--runs N]
#
# Each binary writes three artifacts under results/ (override the directory
# with ROADS_RESULTS_DIR — it is exported here so every binary and the
# inspector agree on one location):
#   results/<name>.txt         the rendered console table/chart
#   results/<name>.json        machine-readable export: series, measured-vs-
#                              paper reference points, telemetry snapshot
#                              (counters + latency percentiles incl. p99),
#                              query traces
#   results/<name>.trace.json  flight-recorder export in Chrome trace-event
#                              format; open in ui.perfetto.dev
set -euo pipefail
ARGS="${*:-}"
export ROADS_RESULTS_DIR="${ROADS_RESULTS_DIR:-results}"
mkdir -p "$ROADS_RESULTS_DIR"
BINS="table_analysis table1_storage fig3_latency_vs_nodes fig4_update_vs_nodes \
fig5_query_vs_nodes fig6_latency_vs_dims fig7_query_vs_dims fig8_update_vs_records \
fig9_latency_vs_overlap fig10_latency_vs_degree fig11_prototype_response \
fig12_timeline fig13_availability fig14_throughput fig15_tail_attribution \
fig16_summary_fidelity fig17_planner fig18_delta_churn fig19_watchdog fig_ablation_overlay \
fig_ablation_buckets fig_ablation_join fig_ablation_churn fig_ablation_scope"
cargo build --release -q -p roads-bench
for bin in $BINS; do
  echo "=== $bin ==="
  # shellcheck disable=SC2086
  ./target/release/$bin $ARGS | tee "$ROADS_RESULTS_DIR/$bin.txt"
done
echo "=== roads-inspect check ==="
# shellcheck disable=SC2086
./target/release/roads-inspect check $(for bin in $BINS; do echo "$ROADS_RESULTS_DIR/$bin"; done)
