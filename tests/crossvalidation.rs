//! Cross-validation between independent implementations of the same
//! quantities: the live message-driven data plane vs the closed-form
//! accounting, and the analytic latency model vs the simulator.

use roads_federation::analysis::{roads_latency_ms, LatencyModel};
use roads_federation::core::protocol::{build_data_simulation, issue_query};
use roads_federation::core::{
    execute_query, update_round, HierarchyTree, RoadsConfig, RoadsNetwork, SearchScope, ServerId,
};
use roads_federation::netsim::{DelaySpace, NodeId, SimTime, TrafficClass};
use roads_federation::prelude::*;
use roads_federation::workload::{default_schema, generate_node_records, RecordWorkloadConfig};

fn workload(nodes: usize) -> (Schema, Vec<Vec<Record>>) {
    let schema = default_schema(8);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes,
        records_per_node: 20,
        attrs: 8,
        seed: 77,
    });
    (schema, records)
}

#[test]
fn live_data_plane_update_bytes_match_accounting() {
    // The analytic accounting (updates.rs) and the live protocol
    // (protocol.rs) are written independently; per aggregation round they
    // must agree on the update traffic to within the modeling differences
    // (the live plane skips the owner-export hop for co-located owners and
    // its replicate messages carry one 4-byte origin tag per summary).
    let nodes = 27;
    let (schema, records) = workload(nodes);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(64),
        ts_ms: 5_000,
        summary_ttl_ms: 30_000,
        ..RoadsConfig::paper_default()
    };
    let tree = HierarchyTree::build(nodes, cfg.max_children);
    let net = RoadsNetwork::with_tree(schema.clone(), cfg, tree.clone(), records.clone());
    let predicted = update_round(&net);

    let mut sim = build_data_simulation(&tree, cfg, schema, records, DelaySpace::paper(nodes, 9));
    // Warm up until replication converges, then measure whole rounds.
    sim.run_until(SimTime::from_millis(30_000));
    sim.clear_stats();
    let rounds = 4u64;
    let deadline = sim.now() + SimTime::from_millis(rounds * 5_000);
    sim.run_until(deadline);
    let measured_per_round = sim.stats().bytes(TrafficClass::Update) as f64 / rounds as f64;

    // The analytic round includes the owner-export wave the live sim skips
    // (owners are co-located); compare against aggregation + replication.
    let predicted_wire = (predicted.aggregation_bytes + predicted.replication_bytes) as f64;
    let ratio = measured_per_round / predicted_wire;
    assert!(
        (0.9..1.1).contains(&ratio),
        "live {measured_per_round:.0} B/round vs predicted {predicted_wire:.0} (ratio {ratio:.3})"
    );
}

#[test]
fn live_query_agrees_with_offline_execution() {
    let nodes = 27;
    let (schema, records) = workload(nodes);
    let cfg = RoadsConfig {
        max_children: 3,
        summary: SummaryConfig::with_buckets(64),
        ts_ms: 2_000,
        summary_ttl_ms: 10_000,
        ..RoadsConfig::paper_default()
    };
    let tree = HierarchyTree::build(nodes, cfg.max_children);
    let net = RoadsNetwork::with_tree(schema.clone(), cfg, tree.clone(), records.clone());
    let delays = DelaySpace::paper(nodes, 9);
    let mut sim = build_data_simulation(&tree, cfg, schema.clone(), records, delays.clone());
    sim.run_until(SimTime::from_millis(25_000));

    for (i, entry) in [0u32, 13, 26].into_iter().enumerate() {
        let q = QueryBuilder::new(&schema, QueryId(500 + i as u64))
            .range("x0", 0.2, 0.45)
            .range("x2", 0.4, 0.65)
            .build();
        let offline = execute_query(&net, &delays, &q, ServerId(entry), SearchScope::full());
        issue_query(&mut sim, NodeId(entry), q.clone());
        let deadline = sim.now() + SimTime::from_secs(30);
        sim.run_until(deadline);
        let (servers, records_found) = sim
            .node(NodeId(entry))
            .result(q.id)
            .expect("live result recorded");
        assert_eq!(
            servers as usize,
            offline.matching_servers.len(),
            "entry {entry}"
        );
        assert_eq!(records_found as usize, offline.matching_records);
    }
}

#[test]
fn latency_model_tracks_simulated_curve() {
    // The closed-form model of analysis::latency must predict the
    // simulator's ROADS growth trend (not absolute values): correlation in
    // direction across a node sweep.
    let model = LatencyModel {
        mean_delay_ms: 90.0,
        degree: 8,
        rings: 8,
        alpha: 0.25,
    };
    let mut sim_points = Vec::new();
    for &nodes in &[32usize, 128, 600] {
        let (schema, records) = workload(nodes);
        let net = RoadsNetwork::build(schema.clone(), RoadsConfig::paper_default(), records);
        let delays = DelaySpace::paper(nodes, 3);
        let q = QueryBuilder::new(&schema, QueryId(1))
            .range("x0", 0.1, 0.35)
            .build();
        let out = execute_query(&net, &delays, &q, ServerId(0), SearchScope::full());
        sim_points.push((nodes, out.latency_ms, roads_latency_ms(nodes, &model)));
    }
    // Model and simulation must agree on ordering (monotone non-decreasing
    // with level growth) and stay within a small constant factor.
    for w in sim_points.windows(2) {
        let (_, sim_a, model_a) = w[0];
        let (_, sim_b, model_b) = w[1];
        if model_b > model_a {
            assert!(
                sim_b >= sim_a * 0.8,
                "model predicts growth, simulation shrank: {sim_a} -> {sim_b}"
            );
        }
    }
    for (n, sim_ms, model_ms) in sim_points {
        let ratio = sim_ms / model_ms;
        assert!(
            (0.2..5.0).contains(&ratio),
            "n={n}: simulated {sim_ms:.0} ms vs model {model_ms:.0} ms"
        );
    }
}
