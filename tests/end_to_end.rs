//! End-to-end integration: workload → all three discovery systems return
//! consistent answers.

use roads_federation::central::CentralRepository;
use roads_federation::prelude::*;
use roads_federation::sword::SwordNetwork;
use roads_federation::workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};

fn workload(
    nodes: usize,
    records_per_node: usize,
    queries: usize,
) -> (Schema, Vec<Vec<Record>>, Vec<(Query, usize)>) {
    let schema = default_schema(16);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes,
        records_per_node,
        attrs: 16,
        seed: 99,
    });
    let qs = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: queries,
            dims: 6,
            range_len: 0.25,
            nodes,
            seed: 4242,
        },
    );
    (schema, records, qs)
}

#[test]
fn all_three_systems_agree_on_match_counts() {
    let (schema, records, queries) = workload(40, 50, 30);
    let ground_truth: Vec<usize> = queries
        .iter()
        .map(|(q, _)| records.iter().flatten().filter(|r| q.matches(r)).count())
        .collect();

    let roads = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig::paper_default(),
        records.clone(),
    );
    let sword = SwordNetwork::build(schema.clone(), records.clone());
    let central = CentralRepository::build(0, records);
    let delays = DelaySpace::paper(40, 5);

    for (i, (q, start)) in queries.iter().enumerate() {
        let r = execute_query(
            &roads,
            &delays,
            q,
            ServerId(*start as u32),
            SearchScope::full(),
        );
        assert_eq!(r.matching_records, ground_truth[i], "ROADS query {i}");

        let s = sword.execute_query(&delays, q, *start);
        assert_eq!(s.matching_records, ground_truth[i], "SWORD query {i}");

        let c = central.execute_query(&delays, q, *start);
        assert_eq!(c.matching_records, ground_truth[i], "central query {i}");
    }
}

#[test]
fn roads_complete_from_every_entry_point() {
    // The overlay invariant, end to end: the same query finds the same
    // match set no matter which server it enters at.
    let (schema, records, _) = workload(25, 30, 0);
    let roads = RoadsNetwork::build(schema.clone(), RoadsConfig::with_degree(3), records);
    let delays = DelaySpace::paper(25, 6);
    let q = QueryBuilder::new(&schema, QueryId(1))
        .range("x0", 0.2, 0.45)
        .range("x4", 0.3, 0.55)
        .range("x8", 0.0, 1.0)
        .build();
    let reference = execute_query(
        &roads,
        &delays,
        &q,
        roads.tree().root(),
        SearchScope::full(),
    );
    assert!(
        reference.matching_records > 0,
        "query should be non-trivial"
    );
    for entry in 0..25u32 {
        let out = execute_query(&roads, &delays, &q, ServerId(entry), SearchScope::full());
        assert_eq!(
            out.matching_servers, reference.matching_servers,
            "entry {entry} disagrees with root entry"
        );
        assert_eq!(out.matching_records, reference.matching_records);
    }
}

#[test]
fn summaries_never_produce_false_negatives_end_to_end() {
    let (schema, records, queries) = workload(30, 40, 50);
    let roads = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig::paper_default(),
        records.clone(),
    );
    for (q, _) in &queries {
        for server in roads.tree().servers() {
            let has_match = records[server.index()].iter().any(|r| q.matches(r));
            if has_match {
                assert!(
                    roads.local_summary(server).may_match(q),
                    "local summary of {server} hides a real match"
                );
                assert!(
                    roads.branch_summary(server).may_match(q),
                    "branch summary of {server} hides a real match"
                );
            }
        }
    }
}

#[test]
fn voluntary_sharing_only_summaries_leave_owners() {
    // What ROADS propagates is summaries whose size is independent of the
    // record count; raw records stay at their owner.
    let (schema, small, _) = workload(20, 10, 0);
    let (_, large, _) = workload(20, 200, 0);
    let cfg = RoadsConfig::paper_default();
    let net_small = RoadsNetwork::build(schema.clone(), cfg, small);
    let net_large = RoadsNetwork::build(schema, cfg, large);
    use roads_federation::core::update_round;
    assert_eq!(
        update_round(&net_small).total_bytes(),
        update_round(&net_large).total_bytes(),
        "update traffic must not grow with record count"
    );
    // While the central design ships 20x the bytes.
    let c_small = CentralRepository::build(0, (0..20).map(|_| vec![]).collect());
    assert_eq!(c_small.update_round().bytes, 0);
}

#[test]
fn scoped_search_trades_coverage_for_cost() {
    let (schema, records, _) = workload(40, 30, 0);
    let roads = RoadsNetwork::build(schema.clone(), RoadsConfig::with_degree(2), records);
    let delays = DelaySpace::paper(40, 7);
    let q = QueryBuilder::new(&schema, QueryId(9))
        .range("x0", 0.0, 1.0)
        .build();
    let leaf = *roads.tree().leaves().iter().max().unwrap();
    let full = execute_query(&roads, &delays, &q, leaf, SearchScope::full());
    let near = execute_query(&roads, &delays, &q, leaf, SearchScope::levels(1));
    assert!(near.servers_contacted < full.servers_contacted);
    assert!(near.query_bytes < full.query_bytes);
    assert!(near.matching_records <= full.matching_records);
}
