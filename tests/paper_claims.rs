//! The paper's headline claims, asserted as tests at reduced scale.
//!
//! These are the qualitative *shapes* of §IV–V: who wins, in which
//! direction curves move, and by roughly what magnitude class. Each test
//! names the figure or section it guards.

use roads_federation::central::CentralRepository;
use roads_federation::core::{
    execute_query, update_round, RoadsConfig, RoadsNetwork, SearchScope, ServerId,
};
use roads_federation::netsim::DelaySpace;
use roads_federation::sword::SwordNetwork;
use roads_federation::workload::{
    default_schema, generate_node_records, generate_queries, QueryWorkloadConfig,
    RecordWorkloadConfig,
};
use roads_summary::SummaryConfig;

fn mean_latencies(nodes: usize, dims: usize, degree: usize) -> (f64, f64) {
    let schema = default_schema(16);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes,
        records_per_node: 60,
        attrs: 16,
        seed: 7,
    });
    let queries = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: 60,
            dims,
            range_len: 0.25,
            nodes,
            seed: 11,
        },
    );
    let roads = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            max_children: degree,
            summary: SummaryConfig::with_buckets(300),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    let sword = SwordNetwork::build(schema, records);
    let delays = DelaySpace::paper(nodes, 3);
    let (mut rl, mut sl) = (0.0, 0.0);
    for (q, start) in &queries {
        rl += execute_query(
            &roads,
            &delays,
            q,
            ServerId(*start as u32),
            SearchScope::full(),
        )
        .latency_ms;
        sl += sword.execute_query(&delays, q, *start).latency_ms;
    }
    (rl / queries.len() as f64, sl / queries.len() as f64)
}

#[test]
fn fig3_roads_latency_below_sword_and_sublinear() {
    // ROADS 40–60% below SWORD; ROADS grows ~log, SWORD ~linear.
    let (r128, s128) = mean_latencies(128, 6, 8);
    let (r512, s512) = mean_latencies(512, 6, 8);
    assert!(
        r128 < s128 && r512 < s512,
        "ROADS must be faster: {r128} vs {s128}, {r512} vs {s512}"
    );
    // 4x more nodes: SWORD's growth factor must exceed ROADS'.
    let roads_growth = r512 / r128;
    let sword_growth = s512 / s128;
    assert!(
        sword_growth > roads_growth,
        "SWORD should grow faster: ROADS x{roads_growth:.2}, SWORD x{sword_growth:.2}"
    );
    assert!(roads_growth < 2.0, "ROADS growth should be logarithmic-ish");
}

#[test]
fn fig4_roads_update_overhead_orders_below_sword() {
    let schema = default_schema(16);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes: 100,
        records_per_node: 200,
        attrs: 16,
        seed: 5,
    });
    let roads = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig::paper_default(),
        records.clone(),
    );
    let sword = SwordNetwork::build(schema.clone(), records.clone());
    let central = CentralRepository::build(0, records);
    let cfg = RoadsConfig::paper_default();
    let roads_bps = update_round(&roads).bytes_per_second(cfg.ts_ms);
    let sword_bps = sword.update_round().bytes_per_second(cfg.tr_ms);
    let central_bps = central.update_round().bytes_per_second(cfg.tr_ms);
    assert!(
        sword_bps / roads_bps > 10.0,
        "1-2 orders of magnitude: got {:.1}x",
        sword_bps / roads_bps
    );
    assert!(
        sword_bps > central_bps,
        "SWORD replicates r times, central once"
    );
}

#[test]
fn fig5_roads_query_overhead_above_sword() {
    // "ROADS has 2∼5 times higher query overhead than SWORD" (we accept
    // 2–12x; the exact factor depends on unpublished data distributions).
    let schema = default_schema(16);
    let nodes = 128;
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes,
        records_per_node: 60,
        attrs: 16,
        seed: 9,
    });
    let queries = generate_queries(
        &schema,
        &QueryWorkloadConfig {
            count: 60,
            dims: 6,
            range_len: 0.25,
            nodes,
            seed: 2,
        },
    );
    let roads = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig::paper_default(),
        records.clone(),
    );
    let sword = SwordNetwork::build(schema, records);
    let delays = DelaySpace::paper(nodes, 4);
    let (mut rb, mut sb) = (0u64, 0u64);
    for (q, start) in &queries {
        rb += execute_query(
            &roads,
            &delays,
            q,
            ServerId(*start as u32),
            SearchScope::full(),
        )
        .query_bytes;
        sb += sword.execute_query(&delays, q, *start).query_bytes;
    }
    let ratio = rb as f64 / sb as f64;
    assert!(
        (1.5..20.0).contains(&ratio),
        "ROADS visits more servers, within reason: {ratio:.1}x"
    );
}

#[test]
fn fig6_roads_latency_decreases_with_dimensionality_sword_flat() {
    let (r2, s2) = mean_latencies(128, 2, 8);
    let (r8, s8) = mean_latencies(128, 8, 8);
    assert!(
        r8 < r2,
        "more dimensions confine the ROADS search: {r2:.0} -> {r8:.0}"
    );
    let sword_change = (s8 - s2).abs() / s2;
    assert!(
        sword_change < 0.25,
        "SWORD uses one dimension only; latency should stay flat ({sword_change:.2})"
    );
}

#[test]
fn fig8_roads_update_constant_sword_linear_in_records() {
    let schema = default_schema(16);
    let build = |records_per_node: usize| {
        let records = generate_node_records(&RecordWorkloadConfig {
            nodes: 60,
            records_per_node,
            attrs: 16,
            seed: 3,
        });
        let roads = RoadsNetwork::build(
            schema.clone(),
            RoadsConfig::paper_default(),
            records.clone(),
        );
        let sword = SwordNetwork::build(schema.clone(), records);
        (
            update_round(&roads).total_bytes(),
            sword.update_round().bytes,
        )
    };
    let (r50, s50) = build(50);
    let (r500, s500) = build(500);
    assert_eq!(r50, r500, "constant-size summaries");
    let growth = s500 as f64 / s50 as f64;
    assert!(
        (8.0..12.0).contains(&growth),
        "SWORD should grow ~10x, got {growth:.1}x"
    );
}

#[test]
fn fig10_latency_decreases_with_degree() {
    let (r_deg4, _) = mean_latencies(200, 6, 4);
    let (r_deg12, _) = mean_latencies(200, 6, 12);
    assert!(
        r_deg12 < r_deg4,
        "flatter hierarchy, fewer hops: {r_deg4:.0} -> {r_deg12:.0}"
    );
}

#[test]
fn table1_storage_ordering() {
    let schema = default_schema(16);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes: 60,
        records_per_node: 300,
        attrs: 16,
        seed: 13,
    });
    let roads = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig::paper_default(),
        records.clone(),
    );
    let sword = SwordNetwork::build(schema.clone(), records.clone());
    let central = CentralRepository::build(0, records);
    let r = roads.max_storage_bytes();
    let s = sword.max_storage_bytes();
    let c = central.storage_bytes();
    assert!(r < s, "ROADS {r} < SWORD {s}");
    assert!(s < c, "SWORD {s} < central {c}");
}
