//! The prototype runtime over the paper's mixed-type records: doubles,
//! integers, timestamps, categoricals and text in one schema, queried
//! through both the live ROADS cluster and the central repository.

use roads_federation::prelude::*;
use roads_federation::runtime::{CentralCluster, RecordStore, RoadsCluster, RuntimeConfig};
use roads_federation::workload::{generate_mixed_records, mixed_schema, MixedSchemaConfig};

fn mixed_setup() -> (Schema, Vec<Vec<Record>>) {
    let cfg = MixedSchemaConfig::small();
    let schema = mixed_schema(&cfg);
    let records = generate_mixed_records(&cfg, 8, 60, 12, 4);
    (schema, records)
}

fn sample_queries(schema: &Schema) -> Vec<Query> {
    vec![
        // Numeric + categorical conjunction.
        QueryBuilder::new(schema, QueryId(1))
            .range("d0", 0.2, 0.7)
            .eq("c0", "v0_0")
            .build(),
        // Integer range.
        QueryBuilder::new(schema, QueryId(2))
            .range("i0", 100_000.0, 800_000.0)
            .range("d1", 0.0, 0.9)
            .build(),
        // Timestamp window.
        QueryBuilder::new(schema, QueryId(3))
            .range("t0", 1_200_000_000_000.0, 1_225_000_000_000.0)
            .build(),
        // Categorical set membership.
        QueryBuilder::new(schema, QueryId(4))
            .one_of("c1", &["v1_0", "v1_1", "v1_2"])
            .build(),
    ]
}

#[test]
fn record_store_handles_every_column_type() {
    let (schema, records) = mixed_setup();
    let all: Vec<Record> = records.iter().flatten().cloned().collect();
    let store = RecordStore::new(schema.clone(), all.clone());
    for q in sample_queries(&schema) {
        // Index-served candidates arrive value-ordered; compare as sets.
        let mut indexed: Vec<RecordId> = store.search(&q).iter().map(|r| r.id).collect();
        let mut scan: Vec<RecordId> = all.iter().filter(|r| q.matches(r)).map(|r| r.id).collect();
        indexed.sort();
        scan.sort();
        assert_eq!(indexed, scan, "query {:?}", q.id);
    }
}

#[test]
fn summaries_cover_mixed_types_without_false_negatives() {
    let (schema, records) = mixed_setup();
    let net = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    for q in sample_queries(&schema) {
        for (s, set) in records.iter().enumerate() {
            if set.iter().any(|r| q.matches(r)) {
                assert!(
                    net.local_summary(ServerId(s as u32)).may_match(&q),
                    "mixed-type false negative at server {s}, query {:?}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn live_clusters_agree_on_mixed_queries() {
    let (schema, records) = mixed_setup();
    let delays = DelaySpace::paper(8, 6);
    let net = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(64),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    let roads = RoadsCluster::start(net, delays.clone(), RuntimeConfig::test_fast());
    let central = CentralCluster::start(
        schema.clone(),
        records.clone(),
        delays,
        0,
        RuntimeConfig::test_fast(),
    );
    for (i, q) in sample_queries(&schema).into_iter().enumerate() {
        let r = roads.query(&q, ServerId((i % 8) as u32));
        let c = central.query(&q, i % 8);
        let mut r_ids: Vec<RecordId> = r.records.iter().map(|x| x.id).collect();
        let mut c_ids: Vec<RecordId> = c.records.iter().map(|x| x.id).collect();
        r_ids.sort();
        c_ids.sort();
        assert_eq!(r_ids, c_ids, "query {:?}", q.id);
    }
    roads.shutdown();
    central.shutdown();
}
