//! Minimal vendored stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's `harness = false` bench targets
//! use: `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it runs a short calibrated loop and prints the
//! mean wall-clock time per iteration. When invoked by `cargo test`
//! (detected via the `--test` CLI flag) every benchmark body runs exactly
//! once, as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (kept tiny — this is a stand-in).
const MEASURE_TARGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.test_mode, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub runs a fixed number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark identified by a plain string.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.criterion.test_mode, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.criterion.test_mode, &mut |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark's identifier, optionally carrying a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    test_mode: bool,
    /// Mean wall-clock time per iteration, when measured.
    elapsed_per_iter: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, running it repeatedly until the measurement target
    /// is reached (or exactly once in test mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: grow the batch until it takes a measurable slice.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_TARGET || batch >= 1 << 20 {
                break elapsed / batch as u32;
            }
            batch = batch.saturating_mul(4);
        };
        self.elapsed_per_iter = Some(per_iter);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        test_mode,
        elapsed_per_iter: None,
    };
    f(&mut b);
    match b.elapsed_per_iter {
        Some(t) => println!("  {id}: {t:?}/iter"),
        None if test_mode => println!("  {id}: ok (test mode)"),
        None => println!("  {id}: no measurement (Bencher::iter never called)"),
    }
}

/// Bundle benchmark functions under one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench_fn(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("sample");
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 3)
        });
        g.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &n| {
            b.iter(|| black_box(n) + 1)
        });
        g.finish();
    }

    #[test]
    fn runs_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
        c.bench_function("top-level", |b| b.iter(|| black_box(1)));
    }

    #[test]
    fn measures_when_not_in_test_mode() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("measured");
        g.bench_function("noop", |b| b.iter(|| black_box(0u64)));
        g.finish();
    }
}
