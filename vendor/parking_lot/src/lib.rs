//! Minimal vendored stand-in for the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives with parking_lot's ergonomics: `lock()`
//! and `read()`/`write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered instead of propagating the poison — matching
//! parking_lot's behaviour of not poisoning at all.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (see [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (see [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
