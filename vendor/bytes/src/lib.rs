//! Minimal vendored stand-in for the `bytes` crate.
//!
//! Provides [`BytesMut`]/[`Bytes`] plus the [`Buf`]/[`BufMut`] traits with
//! big-endian accessors, enough for `roads-records::wire`'s encoder and
//! decoder. All integer accessors use network byte order, matching the real
//! crate's `get_*`/`put_*` defaults.

use std::ops::{Deref, Range};

/// Read-side cursor over a byte sequence.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write-side growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// A growable, readable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freeze into an immutable [`Bytes`] holding the unread remainder.
    pub fn freeze(self) -> Bytes {
        Bytes(self.buf[self.pos..].to_vec())
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A sub-slice as an owned [`Bytes`].
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes(self.0[range].to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.0
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.0.len(), "advance past end of buffer");
        self.0.drain(..cnt);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0x0304_0506);
        b.put_u64(0x0708_090A_0B0C_0D0E);
        b.put_i64(-5);
        b.put_f64(1.5);
        b.put_slice(b"hi");
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8 + 8 + 2);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x0304_0506);
        assert_eq!(b.get_u64(), 0x0708_090A_0B0C_0D0E);
        assert_eq!(b.get_i64(), -5);
        assert_eq!(b.get_f64(), 1.5);
        let mut rest = [0u8; 2];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"hi");
        assert!(b.is_empty());
    }

    #[test]
    fn freeze_and_slice() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3, 4]);
        let _ = b.get_u8();
        let frozen = b.freeze();
        assert_eq!(&*frozen, &[2, 3, 4]);
        assert_eq!(&*frozen.slice(1..3), &[3, 4]);
        let mut f = frozen;
        assert_eq!(f.get_u16(), 0x0203);
        assert_eq!(f.remaining(), 1);
    }

    #[test]
    fn big_endian_wire_order() {
        let mut b = BytesMut::new();
        b.put_u16(0xABCD);
        assert_eq!(b.chunk(), &[0xAB, 0xCD]);
    }
}
