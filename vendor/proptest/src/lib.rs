//! Minimal vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro with an optional `#![proptest_config(..)]` header, `param in
//! strategy` argument lists, `prop_assert*` macros, numeric-range and
//! charclass-string strategies, tuples, `prop::collection::vec`,
//! `any::<T>()`, `prop_oneof!`, and the `prop_map`/`prop_filter`/`boxed`
//! combinators. Generation is purely random (no shrinking) and fully
//! deterministic: each test case derives its RNG seed from the test's module
//! path, name, and case index.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discard values failing `f`, regenerating until one passes.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics when empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Charclass pattern strategy: `"[a-z0-9_-]{lo,hi}"` yields a `String`
    /// of `lo..=hi` characters drawn uniformly from the class. Only this
    /// single-class-with-counted-repetition form is supported.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_charclass_pattern(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `[class]{lo,hi}` into (alphabet, lo, hi).
    fn parse_charclass_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let inner = pat
            .strip_prefix('[')
            .and_then(|r| r.split_once(']'))
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {pat:?}"));
        let (class, rep) = inner;
        let rep = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in pattern: {pat:?}"));
        let (lo, hi) = rep
            .split_once(',')
            .map(|(a, b)| (a.trim(), b.trim()))
            .unwrap_or((rep.trim(), rep.trim()));
        let lo: usize = lo
            .parse()
            .unwrap_or_else(|_| panic!("bad bound in {pat:?}"));
        let hi: usize = hi
            .parse()
            .unwrap_or_else(|_| panic!("bad bound in {pat:?}"));
        assert!(lo <= hi, "bad repetition bounds in {pat:?}");

        let chars: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            // `a-z` range unless the dash is first/last (then it's literal).
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (start, end) = (chars[i], chars[i + 2]);
                assert!(start <= end, "bad char range in {pat:?}");
                for c in start..=end {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty char class in {pat:?}");
        (alphabet, lo, hi)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Raw bit patterns: exercises subnormals, infinities and NaN,
            // matching real proptest's willingness to produce specials.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG and error types for the [`proptest!`] runner.

    use std::hash::{Hash, Hasher};

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed or rejected test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case was rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic splitmix64 generator seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `test_id`.
        pub fn for_case(test_id: &str, case: u64) -> Self {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_id.hash(&mut h);
            TestRng {
                state: h.finish() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prop::` re-exports.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(args) {}`
/// items where each arg is `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case}/{} failed: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Assert inside a [`proptest!`] body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (va, vb) => {
                $crate::prop_assert!(
                    *va == *vb,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    va, vb
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (va, vb) => {
                $crate::prop_assert!(
                    *va == *vb,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    va, vb, format!($($fmt)+)
                );
            }
        }
    };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (va, vb) => {
                $crate::prop_assert!(
                    *va != *vb,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    va
                );
            }
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn charclass_parsing_and_membership() {
        let mut rng = TestRng::for_case("charclass", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9_-]{2,6}", &mut rng);
            assert!((2..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = TestRng::for_case("vec", 1);
        let strat = crate::collection::vec(0.0f64..1.0, 3..=3);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng).len(), 3);
        }
        let open = crate::collection::vec(0usize..5, 1..8);
        for _ in 0..200 {
            let v = open.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples_and_ranges(
            n in 1usize..50,
            (lo, w) in (0.0f64..1.0, 0.0f64..0.5),
            tag in "[ab]{1,3}",
            xs in crate::collection::vec(any::<u32>(), 0..4),
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((0.0..1.0).contains(&lo));
            prop_assert!(w < 0.5, "w was {}", w);
            prop_assert!(!tag.is_empty() && tag.len() <= 3);
            prop_assert!(xs.len() < 4);
        }

        #[test]
        fn oneof_and_map_filter(v in prop_oneof![
            any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(|f| f.abs()),
            (0.0f64..1.0).prop_map(|f| f + 10.0),
        ]) {
            prop_assert!(v >= 0.0 || v.is_nan());
            prop_assert_ne!(v, -1.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut rng = TestRng::for_case("det", 7);
            (0..10).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
