//! Minimal vendored stand-in for the `rand` crate (0.8 API surface).
//!
//! Deterministic, seedable, dependency-free. [`rngs::StdRng`] is a
//! splitmix64 generator — statistically solid for simulation workloads,
//! not cryptographic. Only the APIs this workspace uses are provided:
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// On an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A sample of `T` from its full "standard" distribution: the whole
    /// domain for integers and `bool`, the unit interval `[0, 1)` for
    /// floats.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// When `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `u64` bits → `f64` in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable from the standard distribution via [`Rng::gen`].
pub trait Standard {
    /// Draw one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform range sampling. A single generic [`SampleRange`] impl
/// per range shape hangs off this trait so that untyped literals (e.g.
/// `0..100_000`) still infer their type from the call site, exactly like
/// the real crate.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let v = lo + (hi - lo) * unit_f64(rng.next_u64()) as $t;
                // Guard the open upper bound against rounding.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64. Deterministic for a
    /// given seed, `Clone` preserves the stream position.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_support() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_mut_ref() {
        fn takes_rng<R: super::RngCore + ?Sized>(rng: &mut R) -> u64 {
            use super::Rng;
            rng.gen_range(0..10u64)
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = takes_rng(&mut r);
        let mut borrow = &mut r;
        let _ = takes_rng(&mut borrow);
    }
}
