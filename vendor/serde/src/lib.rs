//! Minimal vendored stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data model so the
//! types are serialization-ready once a real serde is available, but no code
//! path serializes through serde at runtime (wire encoding is hand-rolled in
//! `roads-records::wire`, JSON export is hand-rolled in `roads-telemetry`).
//! The traits here are satisfied by every type and the derive macros are
//! inert, which keeps the annotations compiling without the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
