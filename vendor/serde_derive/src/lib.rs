//! Inert derive macros matching `serde_derive`'s names.
//!
//! The vendored `serde` traits are blanket-implemented, so the derives have
//! nothing to generate; they only need to exist (and swallow serde's helper
//! attributes) for `#[derive(Serialize, Deserialize)]` to compile.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
