//! Minimal vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc` with
//! crossbeam's API shape (cloneable senders, `RecvError`/`SendError`).

pub mod channel {
    //! Multi-producer channels with crossbeam's API surface.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone; holds
    /// the unsent message.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`, so
    // `.expect()` works on channels of non-Debug messages.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, failing only when the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterate messages until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn try_recv_empty() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
        }
    }
}
