//! # ROADS federation — a replication-overlay assisted resource discovery service
//!
//! Reproduction of *"A Replication Overlay Assisted Resource Discovery
//! Service for Federated Systems"* (Yang, Ye, Liu — ICPP 2008) as a Rust
//! workspace. This facade crate re-exports the public API of every
//! sub-crate; see `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record.
//!
//! ## The 90-second tour
//!
//! ```
//! use roads_federation::prelude::*;
//!
//! // A federation schema all participants share.
//! let schema = Schema::new(vec![
//!     AttrDef::categorical("type"),
//!     AttrDef::categorical("encoding"),
//!     AttrDef::numeric("rate", 0.0, 1000.0),
//! ]).unwrap();
//!
//! // Each organization describes its resources as records…
//! let records: Vec<Vec<Record>> = (0..8).map(|org| vec![
//!     RecordBuilder::new(&schema, RecordId(org), OwnerId(org as u32))
//!         .set("type", "camera")
//!         .set("encoding", if org % 2 == 0 { "MPEG2" } else { "H264" })
//!         .set("rate", 100.0 + org as f64 * 50.0)
//!         .build()
//!         .unwrap(),
//! ]).collect();
//!
//! // …and the federation forms a hierarchy, aggregates summaries
//! // bottom-up, and replicates them sideways.
//! let net = RoadsNetwork::build(schema.clone(), RoadsConfig::paper_default(), records);
//!
//! // Multi-dimensional range query from ANY server, not just the root.
//! let query = QueryBuilder::new(&schema, QueryId(1))
//!     .eq("type", "camera")
//!     .eq("encoding", "MPEG2")
//!     .gt("rate", 150.0)
//!     .build();
//! let delays = DelaySpace::paper(net.len(), 7);
//! let outcome = execute_query(&net, &delays, &query, ServerId(5), SearchScope::full());
//! assert!(outcome.matching_records > 0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`records`] | attributes, schemas, records, range queries, wire sizes |
//! | [`summary`] | histograms, value sets, Bloom filters, TTL soft state |
//! | [`netsim`] | discrete-event simulator + synthesized Internet delay space |
//! | [`core`] | the ROADS hierarchy, replication overlay, query engine |
//! | [`sword`] | the SWORD multi-ring DHT baseline |
//! | [`central`] | the central-repository baseline |
//! | [`workload`] | the paper's record/query generators |
//! | [`analysis`] | closed-form model of §IV |
//! | [`runtime`] | threaded prototype with an indexed record store |

/// Closed-form analytic model.
pub use roads_analysis as analysis;
/// The central-repository baseline.
pub use roads_central as central;
/// The ROADS system itself.
pub use roads_core as core;
/// Discrete-event network simulation.
pub use roads_netsim as netsim;
/// Resource records, schemas and queries.
pub use roads_records as records;
/// Threaded prototype runtime.
pub use roads_runtime as runtime;
/// Summary structures and TTL soft state.
pub use roads_summary as summary;
/// The SWORD DHT baseline.
pub use roads_sword as sword;
/// Workload generation.
pub use roads_workload as workload;

/// Everything a typical application needs, in one import.
pub mod prelude {
    pub use roads_core::{
        execute_query, execute_query_mode, replication_set, update_round, ForwardingMode,
        HierarchyTree, LatencyStats, QueryOutcome, RoadsConfig, RoadsNetwork, SearchScope,
        ServerId,
    };
    pub use roads_netsim::{DelaySpace, DelaySpaceConfig, SimTime};
    pub use roads_records::{
        AttrDef, AttrId, AttrType, OwnerId, Predicate, Query, QueryBuilder, QueryId, Record,
        RecordBuilder, RecordId, Schema, Value, WireSize,
    };
    pub use roads_summary::{CategoricalMode, Summary, SummaryConfig};
}
