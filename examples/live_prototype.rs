//! The threaded prototype end to end (§V "Prototype Benchmarking").
//!
//! Starts a real ROADS cluster — one OS thread per server, channels as the
//! network — and a central-repository cluster over the same data, then
//! issues the same queries against both and prints total response times
//! (query out → all matching records back), the metric of Fig. 11.
//!
//! Run with: `cargo run --release --example live_prototype`

use roads_federation::prelude::*;
use roads_federation::runtime::{CentralCluster, RoadsCluster, RuntimeConfig};
use roads_federation::workload::{
    default_schema, generate_node_records, selectivity_query_groups, RecordWorkloadConfig,
};

fn main() {
    let nodes = 12;
    let records_per_node = 400;
    let schema = default_schema(16);
    let records = generate_node_records(&RecordWorkloadConfig {
        nodes,
        records_per_node,
        attrs: 16,
        seed: 7,
    });

    let runtime_cfg = RuntimeConfig {
        per_record_retrieval_us: 800,
        base_query_cost_us: 4_000,
        bandwidth_mbps: 100.0,
        delay_scale: 0.2,
        ..RuntimeConfig::paper_like()
    };
    let delays = DelaySpace::paper(nodes, 3);
    let net = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            max_children: 3,
            summary: SummaryConfig::with_buckets(256),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    println!(
        "live cluster: {} server threads, {} records total, {} levels",
        nodes,
        nodes * records_per_node,
        net.tree().levels()
    );
    let roads = RoadsCluster::start(net, delays.clone(), runtime_cfg);
    let central = CentralCluster::start(schema.clone(), records.clone(), delays, 0, runtime_cfg);

    let groups = selectivity_query_groups(&schema, &records, &[0.1, 1.0, 5.0], 5, 6, 77);
    println!(
        "\n{:>8} {:>6} {:>14} {:>14}",
        "sel(%)", "recs", "ROADS (ms)", "central (ms)"
    );
    for (target, queries) in &groups {
        for (i, q) in queries.iter().enumerate() {
            let r = roads.query(q, ServerId((i % nodes) as u32));
            let c = central.query(q, i % nodes);
            assert_eq!(r.records.len(), c.records.len(), "identical result sets");
            println!(
                "{:>8.1} {:>6} {:>14.1} {:>14.1}",
                target,
                r.records.len(),
                r.response_ms,
                c.response_ms
            );
        }
    }
    println!("\nnote the crossover: the central repository answers small result");
    println!("sets in one round trip, but ROADS retrieves large result sets in");
    println!("parallel across servers (Fig. 11).");
    roads.shutdown();
    central.shutdown();
}
