//! Hierarchy maintenance under churn (§III-A).
//!
//! Runs the live, message-driven maintenance protocol on the discrete-event
//! simulator: 30 servers join through the root, heartbeats flow, then we
//! kill an internal server and finally the root itself — and watch the
//! federation heal: orphans rejoin from their grandparents, the root's
//! children elect a successor ("the one with the smallest IP address").
//!
//! Run with: `cargo run --example churn_resilience`

use roads_federation::core::maintenance::{build_simulation, extract_tree, MaintConfig};
use roads_federation::netsim::{DelaySpace, NodeId, SimTime, TrafficClass};

fn main() {
    let n = 30;
    let cfg = MaintConfig {
        heartbeat_ms: 1_000,
        loss_threshold: 3,
        max_children: 4,
    };
    let mut sim = build_simulation(n, cfg, DelaySpace::paper(n, 99));

    // Phase 1: let everyone join.
    sim.run_until(SimTime::from_millis(30_000));
    let tree = extract_tree(&sim).expect("converged after joins");
    println!(
        "t=30s   {} servers joined, {} levels, root {}",
        tree.len(),
        tree.levels(),
        tree.root()
    );

    // Phase 2: crash an internal (non-root) server with children.
    let victim = tree
        .servers()
        .into_iter()
        .find(|&s| s != tree.root() && !tree.children(s).is_empty())
        .expect("internal node exists");
    let orphans = tree.children(victim).len();
    println!("t=30s   crashing internal server {victim} ({orphans} children orphaned)");
    sim.node_mut(NodeId(victim.0)).crash();
    sim.run_until(SimTime::from_millis(90_000));
    let tree = extract_tree(&sim).expect("healed after internal failure");
    println!(
        "t=90s   healed: {} servers, {} levels (orphans rejoined via grandparents)",
        tree.len(),
        tree.levels()
    );

    // Phase 3: crash the root.
    let old_root = tree.root();
    let heir = *tree
        .children(old_root)
        .iter()
        .min()
        .expect("root has children");
    println!("t=90s   crashing ROOT {old_root} (expected heir by smallest-id rule: {heir})");
    sim.node_mut(NodeId(old_root.0)).crash();
    sim.run_until(SimTime::from_millis(180_000));
    let tree = extract_tree(&sim).expect("healed after root failure");
    println!(
        "t=180s  new root {} ({}), {} servers, {} levels",
        tree.root(),
        if tree.root() == heir {
            "as elected"
        } else {
            "fallback"
        },
        tree.len(),
        tree.levels()
    );
    tree.validate().expect("structurally valid hierarchy");

    println!(
        "\nmaintenance traffic over 180s: {} bytes in {} messages",
        sim.stats().bytes(TrafficClass::Maintenance),
        sim.stats().messages(TrafficClass::Maintenance)
    );
    println!(
        "per server per second: {:.1} bytes",
        sim.stats().bytes(TrafficClass::Maintenance) as f64 / n as f64 / 180.0
    );
}
