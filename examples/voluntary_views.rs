//! Voluntary sharing: different views for different parties (§II).
//!
//! "A company may provide more resources to a business partner than
//! arbitrary third parties." Three organizations share GPU capacity; each
//! tags records with a sensitivity tier and attaches a tiered sharing
//! policy. The same query returns three different result sets depending on
//! who asks — and the owners' audit logs show every decision.
//!
//! Run with: `cargo run --example voluntary_views`

use roads_federation::core::policy::{DecisionKind, DisclosureAudit, RequesterId, TieredPolicy};
use roads_federation::prelude::*;

fn main() {
    let schema = Schema::new(vec![
        AttrDef::categorical("tier"),
        AttrDef::categorical("gpu_model"),
        AttrDef::numeric("gpus_free", 0.0, 64.0),
        AttrDef::numeric("vram_gb", 0.0, 192.0),
    ])
    .expect("valid schema");

    // Org 0's fleet: a public teaching cluster, a member-tier batch pool,
    // and a partner-only flagship pod.
    let fleet = [
        ("public", "consumer-a", 8.0, 12.0),
        ("public", "consumer-a", 4.0, 12.0),
        ("member", "datacenter-b", 16.0, 48.0),
        ("member", "datacenter-b", 24.0, 48.0),
        ("partner", "flagship-x", 64.0, 192.0),
    ];
    let records: Vec<Record> = fleet
        .iter()
        .enumerate()
        .map(|(i, (tier, model, free, vram))| {
            RecordBuilder::new(&schema, RecordId(i as u64), OwnerId(0))
                .set("tier", *tier)
                .set("gpu_model", *model)
                .set("gpus_free", *free)
                .set("vram_gb", *vram)
                .build()
                .expect("record fits schema")
        })
        .collect();

    // Org 0's policy: requester 42 is a partner, 7 is a member; VRAM
    // numbers are business-sensitive and get redacted for non-partners.
    let policy = TieredPolicy::new([RequesterId(42)], [RequesterId(7)])
        .with_tier_attr(schema.id("tier").unwrap())
        .with_sensitive_attrs(vec![schema.id("vram_gb").unwrap()]);

    // A query that matches the whole fleet.
    let query = QueryBuilder::new(&schema, QueryId(1))
        .range("gpus_free", 1.0, 64.0)
        .build();
    let matches: Vec<&Record> = records.iter().filter(|r| query.matches(r)).collect();
    println!("query matches {} records at org 0\n", matches.len());

    let mut audit = DisclosureAudit::new();
    for (label, requester) in [
        ("partner  (id 42)", RequesterId(42)),
        ("member   (id 7) ", RequesterId(7)),
        ("stranger (id 99)", RequesterId(99)),
    ] {
        let view = audit.apply_audited(&policy, requester, matches.iter().copied());
        println!("view for {label}: {} records", view.len());
        for r in &view {
            let vram = r.get_f64(schema.id("vram_gb").unwrap()).unwrap();
            println!(
                "   {:<12} {:>4.0} gpus  vram: {}",
                r.get(schema.id("gpu_model").unwrap()).to_string(),
                r.get_f64(schema.id("gpus_free").unwrap()).unwrap(),
                if vram.is_nan() {
                    "<redacted>".into()
                } else {
                    format!("{vram:.0} GB")
                },
            );
        }
        println!();
    }

    println!("owner audit log: {} decisions", audit.entries().len());
    println!("  full      : {}", audit.count(DecisionKind::Full));
    println!("  redacted  : {}", audit.count(DecisionKind::Redacted));
    println!("  withheld  : {}", audit.count(DecisionKind::Withheld));
    println!("\nNote what made this possible: the federation only ever saw org 0's");
    println!("summaries; the records themselves — and the decision of who gets");
    println!("them — never left org 0's own server.");
}
