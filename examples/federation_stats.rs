//! Federation-wide statistics from summaries alone.
//!
//! Aggregated summaries are more than routing state: because histograms
//! merge losslessly at the bucket level, the root's branch summary answers
//! federation-wide statistical questions — medians, quantiles, modes —
//! without a single raw record leaving any owner. This example builds a
//! 40-org federation and reads capacity statistics straight off the
//! aggregated summary, then compares them with the (privately computed)
//! exact values.
//!
//! Run with: `cargo run --release --example federation_stats`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roads_federation::prelude::*;
use roads_federation::summary::AttributeSummary;

fn main() {
    let schema = Schema::new(vec![
        AttrDef::numeric("cpu_load", 0.0, 1.0),
        AttrDef::numeric("free_storage_tb", 0.0, 100.0),
    ])
    .expect("valid schema");

    // 40 organizations, each with its own load profile.
    let mut rng = StdRng::seed_from_u64(20_08);
    let mut next_id = 0u64;
    let records: Vec<Vec<Record>> = (0..40)
        .map(|org| {
            let busy: f64 = rng.gen_range(0.2..0.9);
            (0..100)
                .map(|_| {
                    let id = RecordId(next_id);
                    next_id += 1;
                    RecordBuilder::new(&schema, id, OwnerId(org))
                        .set(
                            "cpu_load",
                            (busy + rng.gen_range(-0.2..0.2)).clamp(0.0, 1.0),
                        )
                        .set("free_storage_tb", rng.gen_range(0.0..100.0))
                        .build()
                        .expect("record fits schema")
                })
                .collect()
        })
        .collect();

    let net = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            max_children: 4,
            summary: SummaryConfig::with_buckets(200),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    let root_summary = net.branch_summary(net.tree().root());
    println!(
        "root view: {} records summarized across {} organizations\n",
        root_summary.record_count(),
        net.len()
    );

    // Exact values, computed the way only the owners could.
    let mut exact: Vec<f64> = records
        .iter()
        .flatten()
        .map(|r| r.get_f64(schema.id("cpu_load").unwrap()).unwrap())
        .collect();
    exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let exact_q = |q: f64| exact[((exact.len() - 1) as f64 * q) as usize];

    let AttributeSummary::Hist(h) = root_summary.attr(0) else {
        panic!("cpu_load is summarized as a histogram");
    };
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "quantile", "summary", "exact", "error"
    );
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let est = h.quantile(q).expect("non-empty");
        let act = exact_q(q);
        println!(
            "{:>10} {:>12.4} {:>12.4} {:>9.2}%",
            format!("p{:.0}", q * 100.0),
            est,
            act,
            (est - act).abs() / act.max(1e-9) * 100.0
        );
    }
    let mean_est = h.mean().expect("non-empty");
    let mean_act = exact.iter().sum::<f64>() / exact.len() as f64;
    println!(
        "{:>10} {:>12.4} {:>12.4} {:>9.2}%",
        "mean",
        mean_est,
        mean_act,
        (mean_est - mean_act).abs() / mean_act * 100.0
    );

    println!("\nbusiest load regions (top histogram buckets):");
    for ((lo, hi), count) in h.top_buckets(3) {
        println!("   [{lo:.3}, {hi:.3})  {count} records");
    }
    println!(
        "\nall of the above was read from {} bytes of aggregated summary —",
        root_summary.wire_size()
    );
    println!("none of the {} raw records was disclosed.", exact.len());
}
