//! Quickstart: a small camera federation.
//!
//! Eight organizations each own a handful of camera data sources. They
//! export only *summaries* of their records (voluntary sharing), the
//! federation aggregates those bottom-up into a hierarchy, and a
//! multi-dimensional range query entered at ANY server finds every
//! matching owner.
//!
//! Run with: `cargo run --example quickstart`

use roads_federation::prelude::*;

fn main() {
    // 1. The shared federation schema (the paper's §III-B example record).
    let schema = Schema::new(vec![
        AttrDef::categorical("type"),
        AttrDef::categorical("encoding"),
        AttrDef::numeric("rate", 0.0, 1000.0), // Kbps
        AttrDef::numeric("resolution", 0.0, 4000.0),
    ])
    .expect("valid schema");

    // 2. Each organization's resource records. Owner i runs its own server
    //    (server i) and attaches its records there.
    let encodings = ["MPEG2", "H264", "MPEG2", "VP8"];
    let records: Vec<Vec<Record>> = (0..8u64)
        .map(|org| {
            (0..4u64)
                .map(|cam| {
                    RecordBuilder::new(&schema, RecordId(org * 10 + cam), OwnerId(org as u32))
                        .set("type", "camera")
                        .set("encoding", encodings[(org as usize + cam as usize) % 4])
                        .set("rate", 50.0 + 30.0 * (org * 4 + cam) as f64)
                        .set("resolution", 640.0 + 320.0 * (cam % 3) as f64)
                        .build()
                        .expect("record fits schema")
                })
                .collect()
        })
        .collect();

    // 3. Form the federation: hierarchy + bottom-up aggregation + overlay.
    let config = RoadsConfig {
        max_children: 3,
        ..RoadsConfig::paper_default()
    };
    let net = RoadsNetwork::build(schema.clone(), config, records);
    println!(
        "federation: {} servers, {} levels, root {}",
        net.len(),
        net.tree().levels(),
        net.tree().root()
    );

    // 4. The paper's example query: type=camera AND rate>150Kbps AND
    //    encoding=MPEG2 — issued from server 5, not the root.
    let query = QueryBuilder::new(&schema, QueryId(1))
        .eq("type", "camera")
        .gt("rate", 150.0)
        .eq("encoding", "MPEG2")
        .build();
    let delays = DelaySpace::paper(net.len(), 2008);
    let outcome = execute_query(&net, &delays, &query, ServerId(5), SearchScope::full());

    println!("\nquery: type=camera AND rate>150 AND encoding=MPEG2 (entry: server 5)");
    println!("  matching records : {}", outcome.matching_records);
    println!("  matching owners  : {:?}", outcome.matching_servers);
    println!("  servers contacted: {}", outcome.servers_contacted);
    println!("  latency          : {:.1} ms", outcome.latency_ms);
    println!("  forwarding bytes : {}", outcome.query_bytes);

    // 5. Voluntary sharing in action: what left each owner's premises is a
    //    constant-size summary, not the records.
    let owner3 = ServerId(3);
    println!(
        "\nowner 3 exported {} bytes of summary for {} records ({} bytes raw)",
        net.local_summary(owner3).wire_size(),
        net.records(owner3).len(),
        net.records(owner3)
            .iter()
            .map(WireSize::wire_size)
            .sum::<usize>(),
    );
}
