//! Federated stream-processing sites (the paper's motivating scenario).
//!
//! Distributed System S [1]: "multiple stream processing sites, each owned
//! and managed by a different organization, collaborate in performing
//! complex processing tasks that are beyond the capabilities of any single
//! site." A site looking to place a processing job issues multi-dimensional
//! range queries over the federation's compute/memory/bandwidth resources.
//!
//! This example builds a 60-site federation, runs a placement workload
//! through ROADS and through a central repository, and prints the latency
//! and update-overhead comparison the paper's analysis predicts.
//!
//! Run with: `cargo run --release --example federated_streams`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roads_federation::central::CentralRepository;
use roads_federation::core::update_round;
use roads_federation::prelude::*;

const SITES: usize = 60;
const RESOURCES_PER_SITE: usize = 500;

fn schema() -> Schema {
    Schema::new(vec![
        AttrDef::numeric("cpu_cores_free", 0.0, 128.0),
        AttrDef::numeric("memory_gb_free", 0.0, 512.0),
        AttrDef::numeric("uplink_mbps", 0.0, 10_000.0),
        AttrDef::numeric("stream_rate_kbps", 0.0, 5_000.0),
        AttrDef::categorical("source_kind"),
        AttrDef::categorical("region"),
    ])
    .expect("valid schema")
}

fn site_records(schema: &Schema, rng: &mut StdRng) -> Vec<Vec<Record>> {
    let kinds = ["video", "audio", "sensor", "finance"];
    let regions = ["us-east", "us-west", "eu", "apac"];
    let mut next_id = 0u64;
    (0..SITES)
        .map(|site| {
            // Each organization's fleet is homogeneous-ish: one region,
            // a couple of source kinds, machines from the same order.
            let region = regions[site % regions.len()];
            let base_cpu: f64 = rng.gen_range(4.0..96.0);
            let base_mem: f64 = rng.gen_range(16.0..384.0);
            (0..RESOURCES_PER_SITE)
                .map(|_| {
                    let id = RecordId(next_id);
                    next_id += 1;
                    RecordBuilder::new(schema, id, OwnerId(site as u32))
                        .set(
                            "cpu_cores_free",
                            (base_cpu + rng.gen_range(-4.0..4.0)).clamp(0.0, 128.0),
                        )
                        .set(
                            "memory_gb_free",
                            (base_mem + rng.gen_range(-16.0..16.0)).clamp(0.0, 512.0),
                        )
                        .set("uplink_mbps", rng.gen_range(100.0..10_000.0))
                        .set("stream_rate_kbps", rng.gen_range(10.0..5_000.0))
                        .set(
                            "source_kind",
                            kinds[(site + rng.gen_range(0..2)) % kinds.len()],
                        )
                        .set("region", region)
                        .build()
                        .expect("record fits schema")
                })
                .collect()
        })
        .collect()
}

fn main() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(1);
    let records = site_records(&schema, &mut rng);

    let net = RoadsNetwork::build(
        schema.clone(),
        RoadsConfig {
            max_children: 4,
            summary: SummaryConfig::with_buckets(128),
            ..RoadsConfig::paper_default()
        },
        records.clone(),
    );
    let central = CentralRepository::build(0, records);
    let delays = DelaySpace::paper(SITES, 11);

    println!(
        "federation: {SITES} stream-processing sites, {} resources, {} levels\n",
        SITES * RESOURCES_PER_SITE,
        net.tree().levels()
    );

    // Placement queries: "find a site with ≥32 free cores, ≥64 GB, a video
    // source faster than 1 Mbps, in us-east".
    let mut latencies = Vec::new();
    let mut placements_found = 0usize;
    for i in 0..100u64 {
        let min_cpu = rng.gen_range(8.0..64.0);
        let min_mem = rng.gen_range(32.0..256.0);
        let query = QueryBuilder::new(&schema, QueryId(i))
            .range("cpu_cores_free", min_cpu, 128.0)
            .range("memory_gb_free", min_mem, 512.0)
            .gt("stream_rate_kbps", 1_000.0)
            .eq("source_kind", "video")
            .build();
        let entry = ServerId(rng.gen_range(0..SITES) as u32);
        let out = execute_query(&net, &delays, &query, entry, SearchScope::full());
        latencies.push(out.latency_ms);
        if out.matching_records > 0 {
            placements_found += 1;
        }
    }
    let stats = LatencyStats::from_samples(&latencies).expect("samples");
    println!("ROADS placement queries (100):");
    println!("  placements found   : {placements_found}/100");
    println!(
        "  latency mean/p90   : {:.1} / {:.1} ms",
        stats.mean, stats.p90
    );

    // The §IV trade: what it costs to keep the directory fresh.
    let roads_update = update_round(&net);
    let central_update = central.update_round();
    println!("\ndirectory freshness (one update round):");
    println!(
        "  ROADS summaries    : {:>12} bytes ({} msgs)",
        roads_update.total_bytes(),
        roads_update.total_messages()
    );
    println!(
        "  central re-export  : {:>12} bytes ({} msgs)",
        central_update.bytes, central_update.messages
    );
    println!(
        "  ratio              : {:.1}x — and in ROADS no raw record ever leaves its owner",
        central_update.bytes as f64 / roads_update.total_bytes() as f64
    );
}
